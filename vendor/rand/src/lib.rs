//! Offline API-subset shim for the [`rand`](https://docs.rs/rand/0.8)
//! crate: just enough surface for the workspace's constrained-random
//! stimulus generators (`StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`], [`Rng::gen_range`]).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic per seed. The stream differs
//! from the real `StdRng` (ChaCha12); callers here rely only on
//! determinism, not on the exact stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift rejection-free mapping is fine here:
                // spans are tiny (< 2^32) relative to the 64-bit draw,
                // so bias is < 2^-32 and irrelevant for stimulus.
                let draw = rng.next_u64() as u128;
                let off = (draw * span) >> 64;
                (low as u128).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        // 53 uniform mantissa bits, the same resolution rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(43);
        let eq = (0..64).filter(|_| a.gen_bool(0.5) == c.gen_bool(0.5)).count();
        assert!(eq < 64, "different seeds should diverge");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
