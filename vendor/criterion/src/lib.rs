//! Offline API-subset shim for the
//! [`criterion`](https://docs.rs/criterion/0.5) benchmark harness:
//! `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_batched}`,
//! [`BatchSize`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement is deliberately simple — a short warm-up, then
//! `sample_size` timed samples whose min/median/mean are printed as a
//! compact table. With `CRITERION_ONE_SHOT=1` in the environment (or
//! `--test` on the command line) every benchmark body runs exactly
//! once, turning `cargo bench` into a cheap smoke test of the bench
//! code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; the shim runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input: setup is cheap relative to the routine.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    one_shot: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, excluding nothing: the classic tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let rounds = if self.one_shot { 1 } else { self.sample_size };
        if !self.one_shot {
            std::hint::black_box(routine()); // warm-up
        }
        for _ in 0..rounds {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let rounds = if self.one_shot { 1 } else { self.sample_size };
        for _ in 0..rounds {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(id: &str, one_shot: bool, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { one_shot, sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        b.samples.len()
    );
}

/// The benchmark manager: entry point of every harness.
pub struct Criterion {
    one_shot: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // One-shot mode runs every benchmark body exactly once — a cheap
        // smoke test. Cargo does not pass any flag to `harness = false`
        // bench targets it runs, so the switch is an environment
        // variable; `--test` is honored too for parity with real
        // criterion invocations.
        let one_shot = std::env::var_os("CRITERION_ONE_SHOT").is_some_and(|v| v != "0")
            || std::env::args().any(|a| a == "--test");
        Criterion { one_shot, sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.one_shot, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark inside this group (id is prefixed by the group name).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&full, self.parent.one_shot, n, &mut f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut hits = 0u32;
        run_one("t", false, 5, &mut |b| {
            b.iter(|| hits += 1);
        });
        // 5 timed + 1 warm-up.
        assert_eq!(hits, 6);
    }

    #[test]
    fn one_shot_runs_once() {
        let mut hits = 0u32;
        run_one("t", true, 50, &mut |b| {
            b.iter(|| hits += 1);
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut setups = 0u32;
        let mut runs = 0u32;
        run_one("t", false, 4, &mut |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |_| runs += 1,
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }
}
