//! Offline API-subset shim for the
//! [`proptest`](https://docs.rs/proptest/1) property-testing framework.
//!
//! Provides deterministic random case generation with the `proptest`
//! surface this workspace uses: the [`Strategy`] trait with `prop_map`
//! and `prop_recursive`, range and tuple strategies, [`prop_oneof!`],
//! the [`proptest!`] test macro, `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig`]. Failing cases are **not shrunk**; the failure
//! message reports the case index and the generated inputs (via the
//! assertion text) so a run can be reproduced — generation is a pure
//! function of the case index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic source of randomness handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for case number `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps streams of different tests
        // decorrelated while staying fully deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    fn gen_index(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// A generator of random values: the core abstraction.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic function of a [`TestRng`].
pub trait Strategy: Clone + 'static {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| f(inner.new_value(rng))))
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `branch` wraps an inner strategy into one more level.
    ///
    /// `depth` bounds recursion depth; `desired_size` and
    /// `expected_branch_size` are accepted for API parity but the shim
    /// only uses `depth`. At every level below the cap the generator
    /// may still choose a leaf, so sizes vary.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone();
            let deeper = branch(strat);
            // 1-in-4 chance of cutting to a leaf early, like proptest's
            // size-driven taper.
            strat = BoxedStrategy(Arc::new(move |rng| {
                if rng.gen_index(4) == 0 {
                    leaf.new_value(rng)
                } else {
                    deeper.new_value(rng)
                }
            }));
        }
        strat
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| inner.new_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Support types for [`prop_oneof!`].
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
    use super::TestRng;

    /// Uniform choice between type-erased alternatives.
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_index(self.0.len());
            self.0[i].new_value(rng)
        }
    }
}

/// The error a failing property raises: message plus location info.
pub type TestCaseError = String;

/// Runs `cfg.cases` generated cases of a property; used by [`proptest!`].
///
/// `gen` produces the inputs for one case, `run` executes the body.
/// Panics (like a failing `#[test]`) on the first failing case.
pub fn run_property<I, G, R>(name: &str, cfg: &ProptestConfig, gen_inputs: G, mut run: R)
where
    G: Fn(&mut TestRng) -> I,
    R: FnMut(I) -> Result<(), TestCaseError>,
    I: std::fmt::Debug,
{
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, case);
        let inputs = gen_inputs(&mut rng);
        if let Err(msg) = run(inputs) {
            // Generation is a pure function of (name, case), so the
            // failing inputs can be regenerated for the report instead
            // of cloning them on every (usually passing) case.
            let inputs = gen_inputs(&mut TestRng::for_case(name, case));
            panic!(
                "proptest property `{name}` failed at case {case}/{}:\n  inputs: {inputs:?}\n  {msg}",
                cfg.cases
            );
        }
    }
}

/// Uniform choice among several strategies with the same value type.
///
/// The shim ignores proptest's optional `weight =>` prefixes (unused in
/// this workspace) and picks uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: fails the current case without panicking the
/// generator loop machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` arrives via the captured attributes, exactly as the
        // caller wrote it inside `proptest! { ... }`.
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $config;
            let strategies = ($($crate::Strategy::boxed($strategy),)+);
            $crate::run_property(
                stringify!($name),
                &cfg,
                |rng| $crate::Strategy::new_value(&strategies, rng),
                |($($pat,)+)| { $body ::std::result::Result::Ok(()) },
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// The glob import every proptest consumer starts with.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let s = (0u32..5, 10u64..20);
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..100 {
            let (a, b) = s.new_value(&mut rng);
            assert!(a < 5 && (10..20).contains(&b));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = (0u32..1000).prop_map(|x| x * 2);
        let mut r1 = TestRng::for_case("det", 7);
        let mut r2 = TestRng::for_case("det", 7);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u32..8).prop_map(T::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut max_seen = 0;
        for case in 0..64 {
            let mut rng = TestRng::for_case("rec", case);
            let t = s.new_value(&mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth {d} exceeds cap");
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 1, "some non-leaf trees should appear");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, asserts, and early Err returns.
        #[test]
        fn macro_smoke(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![0u32..1, 5u32..6, 9u32..10]) {
            prop_assert!(x == 0 || x == 5 || x == 9);
        }
    }
}
