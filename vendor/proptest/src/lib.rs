//! Offline API-subset shim for the
//! [`proptest`](https://docs.rs/proptest/1) property-testing framework.
//!
//! Provides deterministic random case generation with the `proptest`
//! surface this workspace uses: the [`Strategy`] trait with `prop_map`
//! and `prop_recursive`, range, tuple and [`collection::vec`]
//! strategies, [`prop_oneof!`], the [`proptest!`] test macro,
//! `prop_assert!`/`prop_assert_eq!`, and [`ProptestConfig`].
//!
//! Failing cases are **minimally shrunk**: on the first failure the
//! runner greedily walks [`Strategy::shrink`] candidates — accepting
//! the first candidate that still fails, up to a bounded number of
//! attempts — and reports the shrunk inputs alongside the case index.
//! Unlike real proptest there is no value tree: shrinking is a plain
//! value-to-candidates function, so mapped strategies (`prop_map`,
//! `prop_recursive`, [`prop_oneof!`]) do not shrink and simply report
//! the original failing value. Generation stays a pure function of the
//! case index, so any report is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic source of randomness handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for case number `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps streams of different tests
        // decorrelated while staying fully deterministic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    fn gen_index(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// A generator of random values: the core abstraction.
///
/// Unlike real proptest there is no value tree — a strategy is a
/// deterministic function of a [`TestRng`], plus an optional
/// [`Strategy::shrink`] that proposes simpler variants of a failing
/// value.
pub trait Strategy: Clone + 'static {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler variants of `value`, most aggressive first.
    ///
    /// The runner accepts the first candidate that still fails and
    /// shrinks again from there, so candidates should be ordered
    /// smallest-first and each must itself be a value this strategy
    /// could have generated. The default — no candidates — makes
    /// shrinking opt-in per strategy; mapped/erased strategies keep it
    /// because an arbitrary `prop_map` has no inverse to shrink
    /// through.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| f(inner.new_value(rng))),
            shrink: Arc::new(|_| Vec::new()),
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `branch` wraps an inner strategy into one more level.
    ///
    /// `depth` bounds recursion depth; `desired_size` and
    /// `expected_branch_size` are accepted for API parity but the shim
    /// only uses `depth`. At every level below the cap the generator
    /// may still choose a leaf, so sizes vary.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone();
            let deeper = branch(strat);
            // 1-in-4 chance of cutting to a leaf early, like proptest's
            // size-driven taper.
            strat = BoxedStrategy {
                gen: Arc::new(move |rng| {
                    if rng.gen_index(4) == 0 {
                        leaf.new_value(rng)
                    } else {
                        deeper.new_value(rng)
                    }
                }),
                shrink: Arc::new(|_| Vec::new()),
            };
        }
        strat
    }

    /// Type-erases this strategy, preserving its shrinker.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let genner = self.clone();
        let shrinker = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| genner.new_value(rng)),
            shrink: Arc::new(move |v| shrinker.shrink(v)),
        }
    }
}

/// The erased shrink half of a [`BoxedStrategy`]: candidates for one value.
type ShrinkFn<T> = Arc<dyn Fn(&T) -> Vec<T>>;

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Arc::clone(&self.gen), shrink: Arc::clone(&self.shrink) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }

            /// The classic integer ladder: the lower bound first, then
            /// successive halvings of the distance back toward the
            /// value, ending at `value - 1` — so the greedy runner
            /// binary-searches to the smallest failing value.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Widen to i128 so the distance can't overflow signed
                // types (e.g. i8: MIN..MAX spans more than i8 holds).
                let lo = self.start as i128;
                let v = *value as i128;
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                let mut delta = (v - lo) / 2;
                while delta > 0 {
                    let c = v - delta;
                    if c > lo {
                        out.push(c as $t);
                    }
                    delta /= 2;
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }

            /// Substitutes each component's shrink candidates in turn,
            /// holding the other components at the failing value.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = c;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Support types for [`prop_oneof!`].
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
    use super::TestRng;

    /// Uniform choice between type-erased alternatives.
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_index(self.0.len());
            self.0[i].new_value(rng)
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from a range; see
    /// [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with a length drawn uniformly from
    /// `len` and each element drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.end > self.len.start {
                self.len.start + rng.gen_index(self.len.end - self.len.start)
            } else {
                self.len.start
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }

        /// Structural shrinks first — truncate halfway toward the
        /// minimum length, then drop the last element — followed by
        /// per-element substitution of the element strategy's shrink
        /// candidates. Never goes below the minimum length.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.len.start;
            if value.len() > min {
                let half = min + (value.len() - min) / 2;
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 != half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            for (i, v) in value.iter().enumerate() {
                for c in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = c;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The error a failing property raises: message plus location info.
pub type TestCaseError = String;

/// Caps total candidate evaluations per shrink, so a slow property
/// body can't turn one failure into an unbounded re-run storm.
const MAX_SHRINK_ATTEMPTS: u32 = 500;

/// Runs `cfg.cases` generated cases of a property; used by [`proptest!`].
///
/// `strategy` produces the inputs for one case, `run` executes the
/// body. On the first failing case the inputs are greedily shrunk —
/// walk [`Strategy::shrink`] candidates, accept the first that still
/// fails, repeat from it — then the test panics (like a failing
/// `#[test]`) reporting the shrunk inputs. A property body that panics
/// instead of returning `Err` still fails the test, but at the
/// unshrunk inputs.
pub fn run_property<S, R>(name: &str, cfg: &ProptestConfig, strategy: &S, mut run: R)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    R: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, case);
        let inputs = strategy.new_value(&mut rng);
        let Err(msg) = run(inputs.clone()) else { continue };
        let (inputs, msg, attempts) = shrink_failure(strategy, inputs, msg, &mut run);
        panic!(
            "proptest property `{name}` failed at case {case}/{} \
             (after {attempts} shrink attempts):\n  inputs: {inputs:?}\n  {msg}",
            cfg.cases
        );
    }
}

/// The greedy shrink loop: repeatedly replace the failing value with
/// its first still-failing shrink candidate, until no candidate fails
/// or the attempt budget runs out.
fn shrink_failure<S, R>(
    strategy: &S,
    mut failing: S::Value,
    mut msg: TestCaseError,
    run: &mut R,
) -> (S::Value, TestCaseError, u32)
where
    S: Strategy,
    S::Value: Clone,
    R: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut attempts = 0;
    'shrunk: while attempts < MAX_SHRINK_ATTEMPTS {
        for candidate in strategy.shrink(&failing) {
            attempts += 1;
            if let Err(m) = run(candidate.clone()) {
                failing = candidate;
                msg = m;
                continue 'shrunk;
            }
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break;
            }
        }
        break;
    }
    (failing, msg, attempts)
}

/// Uniform choice among several strategies with the same value type.
///
/// The shim ignores proptest's optional `weight =>` prefixes (unused in
/// this workspace) and picks uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: fails the current case without panicking the
/// generator loop machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` arrives via the captured attributes, exactly as the
        // caller wrote it inside `proptest! { ... }`.
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $config;
            let strategies = ($($crate::Strategy::boxed($strategy),)+);
            $crate::run_property(
                stringify!($name),
                &cfg,
                &strategies,
                |($($pat,)+)| { $body ::std::result::Result::Ok(()) },
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// The glob import every proptest consumer starts with.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let s = (0u32..5, 10u64..20);
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..100 {
            let (a, b) = s.new_value(&mut rng);
            assert!(a < 5 && (10..20).contains(&b));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = (0u32..1000).prop_map(|x| x * 2);
        let mut r1 = TestRng::for_case("det", 7);
        let mut r2 = TestRng::for_case("det", 7);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u32..8).prop_map(T::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut max_seen = 0;
        for case in 0..64 {
            let mut rng = TestRng::for_case("rec", case);
            let t = s.new_value(&mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth {d} exceeds cap");
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 1, "some non-leaf trees should appear");
    }

    #[test]
    fn integer_shrink_halves_toward_the_lower_bound() {
        assert_eq!((0u32..100).shrink(&10), vec![0, 5, 8, 9]);
        assert!((0u32..100).shrink(&0).is_empty());
        assert_eq!((5u32..100).shrink(&6), vec![5]);
        assert!((-8i32..8).shrink(&-8).is_empty());
        assert_eq!((-8i32..8).shrink(&0), vec![-8, -4, -2, -1]);
        // The full i8 span: the i128 widening keeps `v - lo` from
        // overflowing the value type.
        assert_eq!((i8::MIN..i8::MAX).shrink(&i8::MAX)[0], i8::MIN);
    }

    #[test]
    fn tuple_shrink_substitutes_one_component_at_a_time() {
        let s = (0u32..10, 0u64..10);
        let candidates = s.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
        assert!(
            candidates.iter().all(|&(a, b)| a == 4 || b == 6),
            "shrink must vary exactly one component per candidate"
        );
    }

    #[test]
    fn vec_strategy_generates_in_bounds_and_shrinks() {
        let s = collection::vec(0u32..10, 1..5);
        let mut rng = TestRng::for_case("vec", 0);
        let mut lens_seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let v = s.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            lens_seen.insert(v.len());
        }
        assert!(lens_seen.len() > 1, "lengths should vary across cases");

        let candidates = s.shrink(&vec![3, 9]);
        assert!(candidates.contains(&vec![3]), "structural: truncate toward min length");
        assert!(candidates.contains(&vec![0, 9]), "element-wise: shrink position 0");
        assert!(candidates.contains(&vec![3, 0]), "element-wise: shrink position 1");
        assert!(
            candidates.iter().all(|c| !c.is_empty()),
            "never shrinks below the minimum length"
        );
        assert!(s.shrink(&vec![0]).is_empty(), "minimal vec has no candidates");
    }

    /// End-to-end: a property failing for `x >= 17` must shrink to the
    /// exact boundary value, whatever case first trips it.
    #[test]
    fn failing_properties_shrink_to_the_minimal_counterexample() {
        let strategy = (0u32..1000,);
        let result = std::panic::catch_unwind(|| {
            super::run_property(
                "shrink_e2e",
                &ProptestConfig::with_cases(64),
                &strategy,
                |(x,)| if x >= 17 { Err(format!("too big: {x}")) } else { Ok(()) },
            )
        });
        let payload = result.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("panic carries a String");
        assert!(
            msg.contains("inputs: (17,)"),
            "greedy binary-search shrink must land on the boundary, got: {msg}"
        );
        assert!(msg.contains("too big: 17"), "message must come from the shrunk run: {msg}");
    }

    /// Shrinking is bounded: a property that fails for every input
    /// stops after the attempt budget instead of looping forever.
    #[test]
    fn shrink_attempts_are_bounded() {
        let strategy = (0u64..u64::MAX,);
        let mut runs = 0u32;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            super::run_property(
                "shrink_bounded",
                &ProptestConfig::with_cases(1),
                &strategy,
                |(_x,)| {
                    runs += 1;
                    Err("always fails".to_string())
                },
            )
        }));
        assert!(result.is_err());
        // One original run plus at most the shrink budget; shrinking an
        // always-failing huge range would otherwise never terminate.
        assert!(runs <= 1 + super::MAX_SHRINK_ATTEMPTS, "ran {runs} times");
        // And the all-failing ladder collapses to the lower bound.
        let msg_owned = match std::panic::catch_unwind(|| {
            super::run_property(
                "shrink_bounded2",
                &ProptestConfig::with_cases(1),
                &strategy,
                |(_x,)| Err("always fails".to_string()),
            )
        }) {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("property must fail"),
        };
        assert!(msg_owned.contains("inputs: (0,)"), "got: {msg_owned}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, asserts, and early Err returns.
        #[test]
        fn macro_smoke(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
        }

        #[test]
        fn oneof_covers_all_arms(x in prop_oneof![0u32..1, 5u32..6, 9u32..10]) {
            prop_assert!(x == 0 || x == 5 || x == 9);
        }

        /// Vec strategies work through the macro surface.
        #[test]
        fn macro_accepts_vec_strategies(v in collection::vec(0u32..100, 0..8)) {
            prop_assert!(v.len() < 8);
            let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
        }
    }
}
