//! Bug hunt: formal verification vs. logic simulation on the seven
//! seeded Table-3 bugs.
//!
//! For each bug, runs (a) the formal campaign on the hosting module and
//! (b) a spec-compliant constrained-random testbench, and reports who
//! finds it and how fast — reproducing the paper's observation that four
//! of the seven bugs are hard or impossible for simulation.
//!
//! Run with: `cargo run --release --example bug_hunt`

use std::time::Instant;
use veridic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    let portfolio = Portfolio::default();
    println!("{:<5} {:<28} {:<10} {:>14} {:>16}", "Bug", "Property type", "Formal", "Formal time", "Sim latency");
    for (module_name, bug) in chip.bugs() {
        let module = chip.design().module(&module_name).expect("module exists");

        // --- Formal: transform, generate, check. ---
        let t0 = Instant::now();
        let vm = make_verifiable(module)?;
        let vunits = generate_all(&vm)?;
        let mut formal: Option<(String, usize)> = None;
        'outer: for (genu, compiled) in &vunits {
            if genu.ptype != bug.property_type() {
                continue;
            }
            let lowered = compiled.module.to_aig()?;
            let mut aig = lowered.aig.clone();
            for (label, net) in &compiled.asserts {
                aig.add_bad(label.clone(), lowered.bit(*net, 0));
            }
            for (label, net) in &compiled.assumes {
                aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
            }
            for (idx, (label, _)) in compiled.asserts.iter().enumerate() {
                let mut stats = CheckStats::default();
                if let Verdict::Falsified(trace) =
                    portfolio.check_bad(&aig, idx, &CheckOptions::default(), &mut stats)
                {
                    formal = Some((label.clone(), trace.len()));
                    break 'outer;
                }
            }
        }
        let formal_time = t0.elapsed();

        // --- Simulation: spec-compliant random scenarios. ---
        let mut sim = Simulator::new(module)?;
        let mut stim = SpecCompliant::new(0xB0B + bug as u64);
        let sim_hit = sim.run_with(&mut stim, 100_000, observe_symptom)?;

        let formal_str = match &formal {
            Some((label, len)) => format!("cex@{len} ({label})"),
            None => "missed".to_string(),
        };
        let sim_str = match sim_hit {
            Some((cycle, sym)) => format!("{cycle} cycles ({sym})"),
            None => "NOT FOUND in 100k".to_string(),
        };
        println!(
            "{:<5} {:<28} {:<10} {:>12?} {:>20}",
            bug.to_string(),
            bug.property_type().to_string(),
            if formal.is_some() { "FOUND" } else { "missed" },
            formal_time,
            sim_str
        );
        let _ = formal_str;
    }
    println!("\nTable 3 shape: B0/B2/B4 fall to simulation quickly; B1/B3 never");
    println!("appear under spec-compliant stimulus; B5/B6 need thousands of");
    println!("cycles. Formal verification finds all seven.");
    Ok(())
}
