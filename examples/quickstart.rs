//! Quickstart: the whole methodology on one leaf module.
//!
//! Builds a Figure-1-style leaf module, applies the Verifiable-RTL
//! transform (Fig. 6), generates the three stereotype PSL vunits
//! (Figs. 2–4), and model checks every property.
//!
//! Run with: `cargo run --example quickstart`

use veridic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A leaf module from the generator: FSMs, counters and datapath
    // registers, all parity-protected, plus checkers and an HE report.
    let plan = &build_plans(Scale::Small)[0];
    let module = build_leaf(plan, None);
    println!("=== leaf module: {} ===", module.name);
    println!(
        "  {} entities, {} input groups, {} output groups, HE[{}]",
        plan.entities,
        plan.in_groups,
        plan.out_groups,
        plan.he_bits
    );

    // The Verifiable-RTL transform: one injection selector per entity.
    let vm = make_verifiable(&module)?;
    println!(
        "\n=== Verifiable RTL ===\n  added {}[{}] and {}[{}]",
        EC_PORT, vm.entity_count, ED_PORT, vm.ed_width
    );

    // The three stereotype vunits, as PSL source.
    println!("\n=== generated PSL (Figure 2 style) ===");
    print!("{}", edetect_vunit(&vm));

    // Compile and check everything.
    let vunits = generate_all(&vm)?;
    // The builder form: identical to `CheckOptions::default()` here,
    // but new knobs can be added without breaking this call site.
    let opts = CheckOptions::builder().build();
    let portfolio = Portfolio::default();
    let mut proved = 0usize;
    let mut total = 0usize;
    for (genu, compiled) in &vunits {
        let lowered = compiled.module.to_aig()?;
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        for (idx, (label, _)) in compiled.asserts.iter().enumerate() {
            let mut stats = CheckStats::default();
            let verdict = portfolio.check_bad(&aig, idx, &opts, &mut stats);
            total += 1;
            let tag = match &verdict {
                Verdict::Proved { engine } => {
                    proved += 1;
                    format!("proved ({engine})")
                }
                Verdict::Falsified(t) => format!("FALSIFIED in {} cycles", t.len()),
                Verdict::ResourceOut { reason } => format!("resource-out: {reason}"),
            };
            println!("  [{}] {label}: {tag}", genu.unit.name);
        }
    }
    println!("\n{proved}/{total} properties proved.");
    Ok(())
}
