//! Figure 6: the Verifiable-RTL transform, shown as Verilog.
//!
//! Parses a hand-written leaf module (the paper's Figure-6 shape),
//! elaborates it, applies the injection transform, and emits the
//! resulting Verilog — wrapper tie-offs included.
//!
//! Run with: `cargo run --example verifiable_rtl`

use veridic::prelude::*;

const LEAF: &str = r#"
module B (
  input CK,
  input RESET,
  input [3:0] I,
  output HE,
  output [3:0] O
);
  reg [3:0] cs;
  reg in_chk_q;
  always @(posedge CK or posedge RESET)
    if (RESET) cs <= 4'b1_000;
    else cs <= {~(^(cs[2:0] + 3'b001)), cs[2:0] + 3'b001};
  always @(posedge CK or posedge RESET)
    if (RESET) in_chk_q <= 1'b0;
    else in_chk_q <= ~(^I);
  assign HE = ~(^cs) | in_chk_q;
  assign O = cs ^ I ^ 4'b0001;
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== designer-released RTL ===");
    println!("{LEAF}");
    let ast = parse(LEAF)?;
    let design = elaborate(&ast, "B")?;
    let mut module = design.module("B").expect("module B").clone();

    // Attach the integrity specification (normally carried as attributes
    // by the generator; here added by hand, playing the designer's role
    // of "releasing the specification of data integrity").
    let cs = module.find_net("cs").expect("cs");
    module.net_mut(cs).attrs.insert("checkpoint.kind".into(), "entity".into());
    module.net_mut(cs).attrs.insert("checkpoint.entity_kind".into(), "fsm".into());
    module.net_mut(cs).attrs.insert("checkpoint.he_bit".into(), "0".into());
    let i = module.find_net("I").expect("I");
    module.net_mut(i).attrs.insert("checkpoint.kind".into(), "input_group".into());
    module.net_mut(i).attrs.insert("checkpoint.he_bit".into(), "0".into());
    let o = module.find_net("O").expect("O");
    module.net_mut(o).attrs.insert("checkpoint.kind".into(), "output_group".into());
    let he = module.find_net("HE").expect("HE");
    module.net_mut(he).attrs.insert("checkpoint.kind".into(), "he".into());

    let vm = make_verifiable(&module)?;
    println!("=== Verifiable RTL (transform output) ===");
    println!("{}", emit_module(&vm.module, None));

    println!("=== generated stereotype vunits ===");
    print!("{}", edetect_vunit(&vm));
    print!("{}", soundness_vunit(&vm));
    print!("{}", integrity_vunit(&vm));

    // And verify them on the spot.
    let vunits = generate_all(&vm)?;
    let portfolio = Portfolio::default();
    let mut proved = 0;
    let mut total = 0;
    for (_g, compiled) in &vunits {
        let lowered = compiled.module.to_aig()?;
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        for idx in 0..compiled.asserts.len() {
            let mut stats = CheckStats::default();
            total += 1;
            if portfolio.check_bad(&aig, idx, &CheckOptions::default(), &mut stats).is_proved() {
                proved += 1;
            }
        }
    }
    println!("\n{proved}/{total} properties proved on the hand-written module.");
    Ok(())
}
