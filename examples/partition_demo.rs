//! Figure 7: Divide-and-Conquer property partitioning.
//!
//! A deep parity-propagating datapath chain makes the monolithic
//! output-integrity property exhaust the model checker's (deterministic)
//! resource budget — the reproduction of the paper's "time-out happens
//! during execution". Partitioning the property at intermediate parity
//! check points turns it into small "corns" that each prove instantly
//! under the *same* budget.
//!
//! Run with: `cargo run --release --example partition_demo`

use veridic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stages = 16;
    let module = demo_chain_module(stages);
    let vm = make_verifiable(&module)?;
    println!("chain module: {stages} parity-propagating stages, {} latches", vm.module.state_bits());

    let tight = CheckOptions::builder()
        .bdd_nodes(9_000)
        .sat_conflicts(600)
        .bmc_depth(3)
        .induction_depth(3)
        .simple_path(false)
        .max_iterations(200)
        .pobdd_window_vars(0)
        .build();

    // Monolithic attempt.
    println!("\n--- monolithic check (tight budget) ---");
    let vunits = generate_all(&vm)?;
    let (_, compiled) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
        .expect("integrity vunit");
    let lowered = compiled.module.to_aig()?;
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    let mono = check(&aig, &tight);
    match &mono.verdict {
        Verdict::ResourceOut { reason } => println!("  resource-out as expected: {reason}"),
        other => println!("  unexpected verdict: {other:?}"),
    }
    for line in mono.stats.engines_tried() {
        println!("    engine: {line}");
    }

    // Partitioned attempt under the SAME budget.
    println!("\n--- partitioned check (same budget) ---");
    let steps = partition_output_integrity(&vm, 0).map_err(std::io::Error::other)?;
    decomposition_is_acyclic(&steps, &vm.module).map_err(std::io::Error::other)?;
    println!("  {} corns, assume-guarantee chain verified acyclic", steps.len());
    let run = run_partition(&steps, &tight);
    for (name, result) in &run.steps {
        let tag = match &result.verdict {
            Verdict::Proved { engine } => format!("proved ({engine})"),
            Verdict::Falsified(t) => format!("FALSIFIED@{}", t.len()),
            Verdict::ResourceOut { reason } => format!("resource-out: {reason}"),
        };
        println!("    {name}: {tag}");
    }
    println!(
        "\nresult: monolithic={}, partitioned all proved={}",
        matches!(mono.verdict, Verdict::ResourceOut { .. }),
        run.all_proved
    );
    Ok(())
}
