//! The full RAS verification campaign (paper §6): generate the chip,
//! transform every leaf to Verifiable RTL, derive all stereotype
//! properties, model check everything, and print the Table-2
//! reproduction.
//!
//! By default runs the small chip; pass `--full` for the paper-scale
//! 95-module / 2047-property census (several minutes).
//!
//! Run with: `cargo run --release --example ras_campaign [-- --full] [-- --bugs]`

use veridic::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Small };
    let with_bugs = args.iter().any(|a| a == "--bugs");

    println!("generating chip (scale={scale:?}, bugs={with_bugs}) ...");
    let chip = Chip::generate(&ChipConfig { scale, with_bugs });
    println!("  {} leaf modules", chip.modules().len());

    println!("running formal campaign ...");
    let report = run_campaign(&chip, &CampaignConfig::default());
    println!("  {} properties checked in {:?}", report.records.len(), report.total_time);
    for (module, err) in &report.errors {
        println!("  ERROR {module}: {err}");
    }

    println!();
    print!("{}", report.render_table2(&chip));

    let failures = report.failures();
    if failures.is_empty() {
        println!("\nall properties verified successfully.");
    } else {
        println!("\nlogic bugs found by formal verification:");
        for f in failures {
            if let Verdict::Falsified(trace) = &f.verdict {
                println!(
                    "  {} / {} ({}): counterexample of {} cycles",
                    f.module,
                    f.label,
                    f.ptype,
                    trace.len()
                );
            }
        }
    }
    let ro = report.resource_outs();
    if !ro.is_empty() {
        println!("\nproperties needing Divide-and-Conquer (resource-out):");
        for r in ro {
            println!("  {} / {}", r.module, r.label);
        }
    }
    println!("\nproved ratio: {:.1}%", report.proved_ratio() * 100.0);
}
