//! The BDD node table and basic constructors.

use crate::hash::{FxHashMap, FxHashSet};
use std::error::Error;
use std::fmt;

/// Identifier of a BDD node within a [`BddManager`].
///
/// `NodeId::FALSE` and `NodeId::TRUE` are the two terminals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The false terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The true terminal.
    pub const TRUE: NodeId = NodeId(1);

    /// True if this node is a terminal.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeId::FALSE => write!(f, "F"),
            NodeId::TRUE => write!(f, "T"),
            NodeId(n) => write!(f, "#{n}"),
        }
    }
}

/// The node budget was exhausted.
///
/// This is the deterministic stand-in for a model-checker time-out: the
/// same input always overflows at the same point, making the paper's
/// "property too big, partition it" flow (Fig. 7) reproducible in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfNodes {
    /// The configured quota that was hit.
    pub quota: usize,
}

impl fmt::Display for OutOfNodes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD node quota exhausted ({} nodes)", self.quota)
    }
}

impl Error for OutOfNodes {}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: NodeId,
    pub hi: NodeId,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// A Reduced Ordered BDD manager: owns the node table, unique table and
/// computed caches. Variables are identified by `u32` levels; smaller
/// levels are nearer the root (tested first).
///
/// All operations that may allocate return `Result<NodeId, OutOfNodes>`.
#[derive(Clone, Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<(u32, NodeId, NodeId), NodeId>,
    pub(crate) ite_cache: FxHashMap<(NodeId, NodeId, NodeId), NodeId>,
    pub(crate) exists_cache: FxHashMap<(NodeId, NodeId), NodeId>,
    pub(crate) and_exists_cache: FxHashMap<(NodeId, NodeId, NodeId), NodeId>,
    pub(crate) rename_cache: FxHashMap<(NodeId, u64), NodeId>,
    pub(crate) diff_cache: FxHashMap<(NodeId, NodeId), NodeId>,
    pub(crate) and_cache: FxHashMap<(NodeId, NodeId), NodeId>,
    pub(crate) or_cache: FxHashMap<(NodeId, NodeId), NodeId>,
    pub(crate) not_cache: FxHashMap<NodeId, NodeId>,
    /// Reusable work stack of the iterative ITE (empty between calls).
    pub(crate) ite_tasks: Vec<crate::ops::IteFrame>,
    /// Reusable result stack of the iterative ITE (empty between calls).
    pub(crate) ite_results: Vec<NodeId>,
    max_nodes: usize,
}

impl BddManager {
    /// Creates a manager with the given node quota.
    pub fn new(max_nodes: usize) -> Self {
        BddManager {
            nodes: vec![
                Node { var: TERMINAL_VAR, lo: NodeId::FALSE, hi: NodeId::FALSE },
                Node { var: TERMINAL_VAR, lo: NodeId::TRUE, hi: NodeId::TRUE },
            ],
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            exists_cache: FxHashMap::default(),
            and_exists_cache: FxHashMap::default(),
            rename_cache: FxHashMap::default(),
            diff_cache: FxHashMap::default(),
            and_cache: FxHashMap::default(),
            or_cache: FxHashMap::default(),
            not_cache: FxHashMap::default(),
            ite_tasks: Vec::new(),
            ite_results: Vec::new(),
            max_nodes,
        }
    }

    /// Number of live nodes (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The configured node quota.
    pub fn quota(&self) -> usize {
        self.max_nodes
    }

    /// The variable level of a node (`u32::MAX` for terminals).
    pub fn node_var(&self, n: NodeId) -> u32 {
        self.nodes[n.0 as usize].var
    }

    pub(crate) fn lo(&self, n: NodeId) -> NodeId {
        self.nodes[n.0 as usize].lo
    }

    pub(crate) fn hi(&self, n: NodeId) -> NodeId {
        self.nodes[n.0 as usize].hi
    }

    pub(crate) fn var_of(&self, n: NodeId) -> u32 {
        self.nodes[n.0 as usize].var
    }

    /// The reduced node `(var, lo, hi)`; applies the redundancy rule and
    /// the unique table.
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> Result<NodeId, OutOfNodes> {
        if lo == hi {
            return Ok(lo);
        }
        debug_assert!(
            var < self.nodes[lo.0 as usize].var && var < self.nodes[hi.0 as usize].var,
            "order violation in mk"
        );
        // One hash probe for both the hit and the miss path.
        match self.unique.entry((var, lo, hi)) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(*e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                if self.nodes.len() >= self.max_nodes {
                    return Err(OutOfNodes { quota: self.max_nodes });
                }
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(Node { var, lo, hi });
                e.insert(id);
                Ok(id)
            }
        }
    }

    /// The BDD for a single positive variable.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the quota is exhausted.
    pub fn var(&mut self, v: u32) -> Result<NodeId, OutOfNodes> {
        self.mk(v, NodeId::FALSE, NodeId::TRUE)
    }

    /// The BDD for a negated variable.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the quota is exhausted.
    pub fn nvar(&mut self, v: u32) -> Result<NodeId, OutOfNodes> {
        self.mk(v, NodeId::TRUE, NodeId::FALSE)
    }

    /// Constant BDD from a boolean.
    pub fn constant(&self, b: bool) -> NodeId {
        if b {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// Counts the nodes reachable from `f` (its size).
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = FxHashSet::default();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            stack.push(self.lo(n));
            stack.push(self.hi(n));
        }
        seen.len() + 2
    }

    /// Evaluates `f` under a full assignment (`assign(var)` = value).
    pub fn eval(&self, f: NodeId, assign: &dyn Fn(u32) -> bool) -> bool {
        let mut n = f;
        while !n.is_terminal() {
            let v = self.var_of(n);
            n = if assign(v) { self.hi(n) } else { self.lo(n) };
        }
        n == NodeId::TRUE
    }

    /// Clears the computed caches (keeps the node table). Useful between
    /// phases with different operand distributions.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.exists_cache.clear();
        self.and_exists_cache.clear();
        self.rename_cache.clear();
        self.diff_cache.clear();
        self.and_cache.clear();
        self.or_cache.clear();
        self.not_cache.clear();
    }

    /// Number of satisfying assignments of `f` over `nvars` variables
    /// (variables `0..nvars`), as `f64` (exact for small counts).
    pub fn count_sat(&self, f: NodeId, nvars: u32) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        // count(n) = number of solutions below n, over vars var(n)..nvars
        fn go(
            m: &BddManager,
            n: NodeId,
            nvars: u32,
            memo: &mut FxHashMap<NodeId, f64>,
        ) -> f64 {
            if n == NodeId::FALSE {
                return 0.0;
            }
            if n == NodeId::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let v = m.var_of(n);
            let lo = m.lo(n);
            let hi = m.hi(n);
            let lo_v = if lo.is_terminal() { nvars } else { m.var_of(lo) };
            let hi_v = if hi.is_terminal() { nvars } else { m.var_of(hi) };
            let c = go(m, lo, nvars, memo) * 2f64.powi((lo_v - v - 1) as i32)
                + go(m, hi, nvars, memo) * 2f64.powi((hi_v - v - 1) as i32);
            memo.insert(n, c);
            c
        }
        let top = if f.is_terminal() { nvars } else { self.var_of(f) };
        go(self, f, nvars, &mut memo) * 2f64.powi(top as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_exist() {
        let m = BddManager::new(100);
        assert!(NodeId::FALSE.is_terminal());
        assert!(NodeId::TRUE.is_terminal());
        assert_eq!(m.num_nodes(), 2);
        assert_eq!(m.constant(true), NodeId::TRUE);
    }

    #[test]
    fn mk_is_reduced_and_unique() {
        let mut m = BddManager::new(100);
        let a1 = m.var(0).unwrap();
        let a2 = m.var(0).unwrap();
        assert_eq!(a1, a2);
        // Redundancy: mk(v, x, x) == x
        let r = m.mk(3, a1, a1).unwrap();
        assert_eq!(r, a1);
    }

    #[test]
    fn quota_enforced() {
        let mut m = BddManager::new(3); // terminals + 1 node
        assert!(m.var(0).is_ok());
        assert!(matches!(m.var(1), Err(OutOfNodes { quota: 3 })));
    }

    #[test]
    fn eval_walks_paths() {
        let mut m = BddManager::new(100);
        let a = m.var(0).unwrap();
        assert!(m.eval(a, &|_| true));
        assert!(!m.eval(a, &|_| false));
        let na = m.nvar(0).unwrap();
        assert!(!m.eval(na, &|_| true));
    }

    #[test]
    fn count_sat_single_var() {
        let mut m = BddManager::new(100);
        let a = m.var(0).unwrap();
        assert_eq!(m.count_sat(a, 1), 1.0);
        assert_eq!(m.count_sat(a, 2), 2.0);
        assert_eq!(m.count_sat(NodeId::TRUE, 3), 8.0);
        assert_eq!(m.count_sat(NodeId::FALSE, 3), 0.0);
    }

    #[test]
    fn count_sat_deeper_var() {
        let mut m = BddManager::new(100);
        let b = m.var(1).unwrap(); // var 1 out of vars {0,1}
        assert_eq!(m.count_sat(b, 2), 2.0);
    }
}
