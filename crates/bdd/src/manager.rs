//! The BDD node table and basic constructors: complement-edge node
//! representation, the external root set, and mark-and-sweep garbage
//! collection with node recycling.

use crate::hash::{FxHashMap, FxHashSet};
use std::error::Error;
use std::fmt;

/// Identifier of a BDD node within a [`BddManager`] — a *complement
/// edge*: bit 0 is the complement tag, the remaining bits index the node
/// table. `!id` (see the [`std::ops::Not`] impl) is therefore the O(1)
/// negation of the function `id` denotes, with no manager access and no
/// allocation.
///
/// There is a single terminal node (index 0); [`NodeId::TRUE`] is its
/// regular edge and [`NodeId::FALSE`] its complemented edge. Canonical
/// form: stored nodes always have a *regular* (non-complemented) hi
/// edge, so `f` and `¬f` share every node and equality of `NodeId`s is
/// equality of functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The true terminal (the regular edge to the terminal node).
    pub const TRUE: NodeId = NodeId(0);
    /// The false terminal (the complemented edge to the terminal node).
    pub const FALSE: NodeId = NodeId(1);

    /// True if this edge points at the terminal node.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// True if the edge carries the complement tag.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Index of the referenced node in the manager's table.
    pub(crate) fn index(self) -> u32 {
        self.0 >> 1
    }

    pub(crate) fn from_index(index: u32) -> NodeId {
        NodeId(index << 1)
    }
}

impl std::ops::Not for NodeId {
    type Output = NodeId;

    /// Complement edge: negation is a tag-bit flip, independent of the
    /// manager. `!NodeId::TRUE == NodeId::FALSE`.
    fn not(self) -> NodeId {
        NodeId(self.0 ^ 1)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeId::FALSE => write!(f, "F"),
            NodeId::TRUE => write!(f, "T"),
            n if n.is_complemented() => write!(f, "~#{}", n.index()),
            n => write!(f, "#{}", n.index()),
        }
    }
}

/// The node budget was exhausted.
///
/// This is the deterministic stand-in for a model-checker time-out: the
/// same input always overflows at the same point, making the paper's
/// "property too big, partition it" flow (Fig. 7) reproducible in tests.
///
/// The quota counts **live** nodes: when a root set is declared (see
/// [`BddManager::protect`]), the manager garbage-collects dead nodes
/// under quota pressure before raising this error, so overflow means the
/// *live* working set genuinely does not fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfNodes {
    /// The configured quota that was hit.
    pub quota: usize,
}

impl fmt::Display for OutOfNodes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD node quota exhausted ({} live nodes)", self.quota)
    }
}

impl Error for OutOfNodes {}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub var: u32,
    /// Else-edge; may be complemented.
    pub lo: NodeId,
    /// Then-edge; always regular (canonical form).
    pub hi: NodeId,
}

pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// A Reduced Ordered BDD manager with complement edges: owns the node
/// table, unique table, computed caches, the external root set, and the
/// free list of recycled slots. Variables are identified by `u32` ids;
/// a var↔level indirection ([`BddManager::level_of`]) maps each id to
/// its current position in the order — smaller levels are nearer the
/// root (tested first). The order starts as the identity and changes
/// only through dynamic reordering ([`BddManager::sift`] /
/// [`BddManager::swap_adjacent_levels`]), which rewires the table in
/// place: every external `NodeId` keeps denoting the same function
/// across a reorder.
///
/// All operations that may allocate return `Result<NodeId, OutOfNodes>`.
///
/// # Roots and garbage collection
///
/// Operation results are initially *unrooted*: they stay valid until the
/// next garbage collection, which only runs under quota pressure (or via
/// an explicit [`BddManager::gc`] call). Any `NodeId` held across later
/// allocating calls must be registered with [`BddManager::protect`] and
/// released with [`BddManager::unprotect`]; operands of the currently
/// executing operation are protected automatically. As a safety valve
/// for clients that never declare roots, automatic collection stays
/// disabled until the first `protect` — such clients keep the historical
/// fail-fast quota behavior instead of risking dangling ids.
#[derive(Clone, Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<(u32, NodeId, NodeId), NodeId>,
    pub(crate) ite_cache: FxHashMap<(NodeId, NodeId, NodeId), (NodeId, u32)>,
    pub(crate) exists_cache: FxHashMap<(NodeId, NodeId), (NodeId, u32)>,
    pub(crate) and_exists_cache: FxHashMap<(NodeId, NodeId, NodeId), (NodeId, u32)>,
    pub(crate) rename_cache: FxHashMap<(NodeId, u64), (NodeId, u32)>,
    pub(crate) and_cache: FxHashMap<(NodeId, NodeId), (NodeId, u32)>,
    /// Reusable work stack of the iterative ITE (empty between calls).
    pub(crate) ite_tasks: Vec<crate::ops::IteFrame>,
    /// Reusable result stack of the iterative ITE (empty between calls).
    pub(crate) ite_results: Vec<NodeId>,
    /// Collection counter; op-cache entries are stamped with it on
    /// insert (and re-stamped on hit), so the cache-aging sweep can
    /// tell entries untouched for N collections from hot ones.
    pub(crate) cache_epoch: u32,
    /// Recycled node-table slots available for reuse by `mk`.
    pub(crate) free_list: Vec<u32>,
    /// External references: node index → reference count.
    pub(crate) roots: FxHashMap<u32, u32>,
    pub(crate) max_nodes: usize,
    pub(crate) peak_live: usize,
    pub(crate) total_allocated: u64,
    pub(crate) total_freed: u64,
    /// Variable id → current level (position in the order). Extended
    /// lazily by `mk`; the identity until a reorder changes it.
    pub(crate) var2level: Vec<u32>,
    /// Current level → variable id (inverse of `var2level`).
    pub(crate) level2var: Vec<u32>,
    /// If set, sifting fires automatically at operation entry whenever
    /// the live count has grown by this many nodes since the last
    /// reorder (see [`BddManager::set_auto_reorder`]).
    pub(crate) auto_reorder_threshold: Option<usize>,
    /// Live-node count right after the last reorder; baseline for the
    /// auto-reorder trigger.
    pub(crate) last_reorder_live: usize,
    /// Variable pairs that must stay adjacent (in this relative order)
    /// through reordering — sifted as 2-blocks. The interleaved
    /// current/next encoding of the mc engines depends on this.
    pub(crate) reorder_pairs: Vec<(u32, u32)>,
    /// Number of sifting passes run (explicit or auto-triggered).
    pub(crate) reorders_run: u64,
    /// Sum of live-node counts entering each sift.
    pub(crate) reorder_nodes_before: u64,
    /// Sum of live-node counts leaving each sift.
    pub(crate) reorder_nodes_after: u64,
    /// Live-node count at the end of the last collection; baseline for
    /// the growth-threshold heuristic.
    pub(crate) last_gc_live: usize,
    /// If set, collect whenever the live count has grown by this many
    /// nodes since the last collection (checked at operation entry, a
    /// safe point). `None` (the default) keeps the historical
    /// quota-pressure-only policy.
    gc_growth_threshold: Option<usize>,
    /// If set, the sweep after each collection also evicts op-cache
    /// entries not touched for more than this many collections.
    /// `None` (the default) keeps entries until a referenced node dies.
    cache_max_age: Option<u32>,
}

impl BddManager {
    /// Creates a manager with the given quota on **live** nodes.
    pub fn new(max_nodes: usize) -> Self {
        BddManager {
            nodes: vec![Node { var: TERMINAL_VAR, lo: NodeId::TRUE, hi: NodeId::TRUE }],
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            exists_cache: FxHashMap::default(),
            and_exists_cache: FxHashMap::default(),
            rename_cache: FxHashMap::default(),
            and_cache: FxHashMap::default(),
            ite_tasks: Vec::new(),
            ite_results: Vec::new(),
            cache_epoch: 0,
            free_list: Vec::new(),
            roots: FxHashMap::default(),
            max_nodes,
            peak_live: 1,
            total_allocated: 0,
            total_freed: 0,
            var2level: Vec::new(),
            level2var: Vec::new(),
            auto_reorder_threshold: None,
            last_reorder_live: 1,
            reorder_pairs: Vec::new(),
            reorders_run: 0,
            reorder_nodes_before: 0,
            reorder_nodes_after: 0,
            last_gc_live: 1,
            gc_growth_threshold: None,
            cache_max_age: None,
        }
    }

    /// Current level of variable `var` — its position in the order,
    /// smaller = nearer the root. Variables the manager has not seen
    /// yet (and the terminal, `TERMINAL_VAR`) sit at their own id,
    /// which keeps them below every reordered level.
    #[inline]
    pub fn level_of(&self, var: u32) -> u32 {
        match self.var2level.get(var as usize) {
            Some(&l) => l,
            None => var,
        }
    }

    /// The variable currently at `level` (identity for levels beyond
    /// the tracked order).
    pub fn var_at_level(&self, level: u32) -> u32 {
        match self.level2var.get(level as usize) {
            Some(&v) => v,
            None => level,
        }
    }

    /// The current variable order, root-first: `order[level] = var`.
    /// Covers every variable the manager has tracked so far.
    pub fn current_order(&self) -> Vec<u32> {
        self.level2var.clone()
    }

    /// Installs a variable order wholesale — typically another
    /// manager's [`current_order`](Self::current_order) carried by an
    /// [`ExportedBdd`](crate::transfer::ExportedBdd), so a fresh
    /// receiver rebuilds an imported cone at exactly its exported size
    /// instead of paying ITE re-normalization. `order[level] = var`,
    /// and `order` must be a permutation of `0..order.len()`; variables
    /// the manager later meets beyond that range get identity levels as
    /// usual.
    ///
    /// Only legal while the manager holds no decision nodes (fresh, or
    /// everything collected): with live nodes an order change must go
    /// through [`swap_adjacent_levels`](Self::swap_adjacent_levels) /
    /// [`sift`](Self::sift), which rewrite the nodes to match.
    ///
    /// # Panics
    ///
    /// Panics if the manager holds decision nodes or `order` is not a
    /// permutation of `0..order.len()`.
    pub fn adopt_order(&mut self, order: &[u32]) {
        assert_eq!(
            self.nodes.len() - self.free_list.len(),
            1,
            "adopt_order requires a manager without decision nodes"
        );
        let n = order.len();
        let mut var2level = vec![u32::MAX; n];
        for (level, &var) in order.iter().enumerate() {
            assert!(
                (var as usize) < n && var2level[var as usize] == u32::MAX,
                "order must be a permutation of 0..{n}"
            );
            var2level[var as usize] = level as u32;
        }
        // Keep coverage of vars already tracked (e.g. via
        // `set_reorder_pairs` on a fresh manager) with the identity
        // tail `ensure_var` would have given them.
        for v in n as u32..self.var2level.len() as u32 {
            var2level.push(v);
        }
        let mut level2var: Vec<u32> = order.to_vec();
        level2var.extend(n as u32..self.level2var.len() as u32);
        self.var2level = var2level;
        self.level2var = level2var;
    }

    /// Extends the var↔level maps (identity at the tail) so that `var`
    /// is tracked. Called by `mk` for every decision variable, so any
    /// variable with a node always has a level.
    #[inline]
    pub(crate) fn ensure_var(&mut self, var: u32) {
        if (var as usize) < self.var2level.len() || var == TERMINAL_VAR {
            return;
        }
        let old = self.var2level.len() as u32;
        self.var2level.extend(old..=var);
        self.level2var.extend(old..=var);
    }

    /// Enables (or disables, with `None`) automatic dynamic reordering:
    /// once armed, a sifting pass fires at operation entry whenever the
    /// live count has grown by `threshold` nodes — *and* to at least
    /// twice its size — since the last reorder (same safe point as the
    /// growth-threshold GC, and likewise only once a root set exists).
    /// The doubling term is the classic geometric backoff: reorders
    /// happen at exponentially spaced table sizes, so their total cost
    /// stays proportional to the work that grew the table. Tables past
    /// a sixteenth of the node quota are never auto-sifted: a table
    /// that big mid-computation is either headed for a memout — where
    /// a better order only *delays* the inevitable quota death (it
    /// compresses the intermediates, so strictly more image work fits
    /// under the quota before the engine gives up; measured 4× slower
    /// on the Fig. 7 blowup) — or already holds a workable order from
    /// the passes that fired while it was small. Arming re-baselines
    /// the trigger at the current live count.
    pub fn set_auto_reorder(&mut self, threshold: Option<usize>) {
        self.auto_reorder_threshold = threshold;
        self.last_reorder_live = self.nodes.len() - self.free_list.len();
    }

    /// Declares variable pairs that must stay adjacent (in the given
    /// relative order) through every reorder; sifting moves each pair
    /// as one 2-block. Pairs must be adjacent in the current order when
    /// declared. The mc engines pair each current-state variable with
    /// its next-state twin so `rename`'s order-preservation contract
    /// survives reordering.
    pub fn set_reorder_pairs(&mut self, pairs: Vec<(u32, u32)>) {
        for &(a, b) in &pairs {
            self.ensure_var(a);
            self.ensure_var(b);
            debug_assert_eq!(
                self.level_of(a) + 1,
                self.level_of(b),
                "reorder pair ({a},{b}) must be adjacent when declared"
            );
        }
        self.reorder_pairs = pairs;
    }

    /// `(reorders run, Σ live nodes before, Σ live nodes after)` over
    /// the manager's lifetime — the raw material for `CheckStats`.
    pub fn reorder_stats(&self) -> (u64, u64, u64) {
        (self.reorders_run, self.reorder_nodes_before, self.reorder_nodes_after)
    }

    /// Enables (or disables, with `None`) table-growth-threshold
    /// collection: once armed, the manager collects whenever the live
    /// count has grown by `threshold` nodes since the last collection,
    /// checked at operation entry — a safe point, since operands are
    /// rooted for the operation and anything else the caller holds must
    /// already be protected. Like quota-pressure collection this only
    /// fires once a root set exists.
    ///
    /// The point is steady-state hygiene for long-lived workers: with
    /// quota-pressure-only collection a worker first fills its entire
    /// quota with garbage, then pays one huge collect-and-retry per
    /// operation at the ceiling. A growth threshold keeps the dead
    /// fraction bounded instead.
    pub fn set_gc_growth_threshold(&mut self, threshold: Option<usize>) {
        self.gc_growth_threshold = threshold;
    }

    /// Enables (or disables, with `None`) cache-aged sweeping: each
    /// collection evicts op-cache entries not inserted or hit for more
    /// than `age` collections (in addition to the usual eviction of
    /// entries mentioning dead nodes). `Some(0)` clears the op caches
    /// wholesale at every collection.
    ///
    /// Aged entries pin no nodes (the sweep already drops dead-node
    /// entries) but do cost memory and hash-table pressure; workers
    /// that run many images through one manager use this to keep the
    /// caches sized to the current wavefront.
    pub fn set_cache_max_age(&mut self, age: Option<u32>) {
        self.cache_max_age = age;
    }

    /// Number of **live** nodes (including the terminal): allocated slots
    /// minus recycled ones. This is what the quota is measured against.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - self.free_list.len()
    }

    /// High-water mark of [`BddManager::num_nodes`] over the manager's
    /// lifetime — the honest "peak memory" figure now that collection can
    /// shrink the table.
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
    }

    /// Total nodes ever allocated (monotonic; unaffected by collection).
    /// `total_allocated - peak live` bounds how much garbage collection
    /// reclaimed; a run with `total_allocated > quota` that completed
    /// *needed* collection to fit.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Total nodes reclaimed by garbage collection (monotonic).
    pub fn total_freed(&self) -> u64 {
        self.total_freed
    }

    /// The configured quota on live nodes.
    pub fn quota(&self) -> usize {
        self.max_nodes
    }

    /// The variable id of a node (`u32::MAX` for the terminal). For the
    /// node's position in the current order see [`BddManager::level_of`].
    pub fn node_var(&self, n: NodeId) -> u32 {
        self.nodes[n.index() as usize].var
    }

    /// Else-cofactor edge of `n` with `n`'s complement tag pushed through
    /// (the cofactor of `¬f` is the complement of the cofactor of `f`).
    pub(crate) fn lo(&self, n: NodeId) -> NodeId {
        NodeId(self.nodes[n.index() as usize].lo.0 ^ (n.0 & 1))
    }

    /// Then-cofactor edge of `n`, complement tag pushed through.
    pub(crate) fn hi(&self, n: NodeId) -> NodeId {
        NodeId(self.nodes[n.index() as usize].hi.0 ^ (n.0 & 1))
    }

    pub(crate) fn var_of(&self, n: NodeId) -> u32 {
        self.nodes[n.index() as usize].var
    }

    /// Raw node-table entry by index (for the transfer serializer, which
    /// needs the stored edges rather than the tag-adjusted cofactors).
    pub(crate) fn node(&self, index: u32) -> Node {
        self.nodes[index as usize]
    }

    /// Pure-read unique-table probe: the regular edge of the node
    /// `(var, lo, hi)` if the manager currently holds it, else `None`.
    /// `hi` must be regular (the canonical stored form). The delta
    /// exporter uses this to recognize baseline nodes in the source
    /// manager without allocating.
    pub(crate) fn lookup(&self, var: u32, lo: NodeId, hi: NodeId) -> Option<NodeId> {
        self.unique.get(&(var, lo, hi)).copied()
    }

    /// The reduced node `(var, lo, hi)`; applies the redundancy rule, the
    /// regular-hi-edge canonicalization, and the unique table.
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> Result<NodeId, OutOfNodes> {
        if lo == hi {
            return Ok(lo);
        }
        self.ensure_var(var);
        // Canonical form: the stored hi edge is regular. A complemented
        // hi is factored out of both children and onto the result edge.
        let neg = hi.is_complemented() as u32;
        let (lo, hi) = (NodeId(lo.0 ^ neg), NodeId(hi.0 ^ neg));
        debug_assert!(
            self.level_of(var) < self.level_of(self.nodes[lo.index() as usize].var)
                && self.level_of(var) < self.level_of(self.nodes[hi.index() as usize].var),
            "order violation in mk"
        );
        // One hash probe for both the hit and the miss path.
        match self.unique.entry((var, lo, hi)) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(NodeId(e.get().0 ^ neg)),
            std::collections::hash_map::Entry::Vacant(e) => {
                if self.nodes.len() - self.free_list.len() >= self.max_nodes {
                    return Err(OutOfNodes { quota: self.max_nodes });
                }
                let index = match self.free_list.pop() {
                    Some(i) => {
                        self.nodes[i as usize] = Node { var, lo, hi };
                        i
                    }
                    None => {
                        self.nodes.push(Node { var, lo, hi });
                        (self.nodes.len() - 1) as u32
                    }
                };
                let id = NodeId::from_index(index);
                e.insert(id);
                self.total_allocated += 1;
                let live = self.nodes.len() - self.free_list.len();
                if live > self.peak_live {
                    self.peak_live = live;
                }
                Ok(NodeId(id.0 ^ neg))
            }
        }
    }

    /// Registers `n`'s node as an external root (reference-counted): it
    /// and everything reachable from it survive garbage collection.
    /// Protecting `f` also protects `¬f` (they share every node).
    /// Terminals need no protection. The first `protect` call also arms
    /// automatic collection under quota pressure.
    pub fn protect(&mut self, n: NodeId) {
        if !n.is_terminal() {
            *self.roots.entry(n.index()).or_insert(0) += 1;
        }
    }

    /// Releases one [`BddManager::protect`] registration of `n`.
    pub fn unprotect(&mut self, n: NodeId) {
        if n.is_terminal() {
            return;
        }
        match self.roots.get_mut(&n.index()) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.roots.remove(&n.index());
            }
            None => debug_assert!(false, "unprotect of a non-root {n:?}"),
        }
    }

    /// Atomically re-points one protection from `old` to `new` — the
    /// idiom for updating a held accumulator (`reached`, `frontier`, …).
    pub fn reroot(&mut self, old: NodeId, new: NodeId) {
        self.protect(new);
        self.unprotect(old);
    }

    /// Number of distinct protected node indices (diagnostic).
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Mark-and-sweep garbage collection: frees every node not reachable
    /// from the root set, recycles the slots, and drops computed-cache
    /// and unique-table entries that mention a dead node. Returns the
    /// number of nodes freed.
    ///
    /// Any unprotected `NodeId` obtained before this call dangles after
    /// it (unless reachable from a root); see the struct-level contract.
    pub fn gc(&mut self) -> usize {
        self.gc_with_temps(&[])
    }

    /// GC with additional temporary roots (the operands of an in-flight
    /// operation that is retrying under quota pressure).
    pub(crate) fn gc_with_temps(&mut self, temps: &[NodeId]) -> usize {
        let n = self.nodes.len();
        let mut marked = vec![false; n];
        marked[0] = true; // the terminal is immortal
        let mut stack: Vec<u32> = self.roots.keys().copied().collect();
        stack.extend(temps.iter().filter(|t| !t.is_terminal()).map(|t| t.index()));
        while let Some(i) = stack.pop() {
            let i = i as usize;
            if marked[i] {
                continue;
            }
            marked[i] = true;
            let node = self.nodes[i];
            stack.push(node.lo.index());
            stack.push(node.hi.index());
        }
        // Already-recycled slots must not be freed twice.
        for &i in &self.free_list {
            marked[i as usize] = true;
        }
        let mut freed = 0usize;
        for (i, m) in marked.iter().enumerate().skip(1) {
            if !m {
                let node = self.nodes[i];
                self.unique.remove(&(node.var, node.lo, node.hi));
                self.nodes[i] = Node { var: TERMINAL_VAR, lo: NodeId::TRUE, hi: NodeId::TRUE };
                self.free_list.push(i as u32);
                freed += 1;
            }
        }
        self.total_freed += freed as u64;
        self.cache_epoch = self.cache_epoch.wrapping_add(1);
        let epoch = self.cache_epoch;
        let max_age = self.cache_max_age;
        if freed > 0 || max_age.is_some() {
            let live = |id: NodeId| marked[id.index() as usize];
            self.retain_op_caches(&mut |key, r, stamp| {
                key.iter().all(|&k| live(k))
                    && live(r)
                    && max_age.map_or(true, |a| epoch.wrapping_sub(stamp) <= a)
            });
        }
        self.last_gc_live = self.nodes.len() - self.free_list.len();
        freed
    }

    /// The one enumeration of the five op caches: retains entries for
    /// which `keep(key-nodes, result, age-stamp)` holds. The GC sweep
    /// (liveness + age) and [`BddManager::clear_op_caches`] both go
    /// through here, so a cache added later cannot be missed by one of
    /// them. The `rename` cache passes only its function operand (its
    /// second key component is a map hash, not a node).
    pub(crate) fn retain_op_caches(
        &mut self,
        keep: &mut dyn FnMut(&[NodeId], NodeId, u32) -> bool,
    ) {
        self.ite_cache.retain(|&(f, g, h), &mut (r, s)| keep(&[f, g, h], r, s));
        self.and_cache.retain(|&(f, g), &mut (r, s)| keep(&[f, g], r, s));
        self.exists_cache.retain(|&(f, c), &mut (r, s)| keep(&[f, c], r, s));
        self.and_exists_cache.retain(|&(f, g, c), &mut (r, s)| keep(&[f, g, c], r, s));
        self.rename_cache.retain(|&(f, _), &mut (r, s)| keep(&[f], r, s));
    }

    /// Drops every computed-cache entry (keeps the node table). This is
    /// the deduplicated "clear them all" the sweep and
    /// [`BddManager::clear_caches`] share.
    pub fn clear_op_caches(&mut self) {
        self.retain_op_caches(&mut |_, _, _| false);
    }

    /// Runs `op`; on quota exhaustion, garbage-collects (with `temps` as
    /// extra roots) and retries once. Collection under pressure is only
    /// armed once a root set exists — a client that declared no roots
    /// gets the plain fail-fast behavior, because without roots the
    /// manager cannot tell its held ids from garbage.
    ///
    /// Hopeless retries are cut off: the failed attempt's own partial
    /// results are garbage (nothing roots them), so the retry must
    /// re-allocate roughly everything the attempt did *and then keep
    /// going*. The retry runs only when the post-GC live set plus the
    /// attempt's allocation count fits within 7/8 of the quota — the
    /// reserved eighth is continuation headroom, so a retry that merely
    /// re-reaches the attempt's death point is not paid for twice, while
    /// failures caused by since-collected inter-op garbage (superseded
    /// frontiers, abandoned accumulators) still get their second chance.
    pub(crate) fn run_with_gc<T>(
        &mut self,
        temps: &[NodeId],
        mut op: impl FnMut(&mut Self) -> Result<T, OutOfNodes>,
    ) -> Result<T, OutOfNodes> {
        // Auto-reorder trigger: operation entry is the same safe point
        // the growth-threshold GC uses (operands are in `temps`,
        // everything else the caller holds is protected by contract).
        // Sifting starts with its own collection, so it runs before —
        // and updates `last_gc_live` for — the GC heuristic below.
        if let Some(t) = self.auto_reorder_threshold {
            let live = self.nodes.len() - self.free_list.len();
            if !self.roots.is_empty()
                && live >= self.last_reorder_live.saturating_add(t)
                && live >= self.last_reorder_live.saturating_mul(2)
                && live <= self.max_nodes / 16
            {
                self.sift_with_temps(temps);
            }
        }
        // Growth-threshold heuristic: operation entry is a safe point
        // (operands are in `temps`, everything else the caller holds is
        // protected by contract), so collect proactively when the table
        // has grown past the configured threshold since the last sweep.
        if let Some(t) = self.gc_growth_threshold {
            if !self.roots.is_empty()
                && self.nodes.len() - self.free_list.len() >= self.last_gc_live.saturating_add(t)
            {
                self.gc_with_temps(temps);
            }
        }
        let allocated_before = self.total_allocated;
        match op(self) {
            Err(e) => {
                if self.roots.is_empty() || self.gc_with_temps(temps) == 0 {
                    return Err(e);
                }
                let attempt = (self.total_allocated - allocated_before) as usize;
                let live = self.nodes.len() - self.free_list.len();
                let headroom = self.max_nodes - self.max_nodes / 8;
                if live.saturating_add(attempt) > headroom {
                    return Err(e);
                }
                op(self)
            }
            ok => ok,
        }
    }

    /// The BDD for a single positive variable.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the quota is exhausted even after
    /// garbage collection.
    pub fn var(&mut self, v: u32) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[], |m| m.mk(v, NodeId::FALSE, NodeId::TRUE))
    }

    /// The BDD for a negated variable (the complement edge of
    /// [`BddManager::var`]).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the quota is exhausted even after
    /// garbage collection.
    pub fn nvar(&mut self, v: u32) -> Result<NodeId, OutOfNodes> {
        Ok(!self.var(v)?)
    }

    /// Constant BDD from a boolean.
    pub fn constant(&self, b: bool) -> NodeId {
        if b {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// Counts the nodes reachable from `f` (its size), terminal included.
    /// With complement edges there is exactly one terminal node, and
    /// every function — constants included — reaches it, so
    /// `size(TRUE) == 1` and `size(var) == 2`.
    ///
    /// Exactly [`BddManager::size_restricted`] with nothing fixed.
    pub fn size(&self, f: NodeId) -> usize {
        self.size_restricted(f, &|_| None)
    }

    /// Counts the nodes of `f` still reachable when some variables are
    /// fixed (`fixed(var)` = `Some(value)`): at a fixed variable's node
    /// only the chosen branch is followed, everywhere else both. Pure
    /// traversal — nothing is allocated, so unlike building the actual
    /// cofactor this can neither fail nor eat the quota.
    ///
    /// The count is an upper bound on [`BddManager::size`] of the
    /// generalized cofactor (restriction can merge nodes this walk still
    /// counts separately), which makes it a cheap, deterministic proxy
    /// for "how much of `f` survives inside this window" — the threaded
    /// POBDD engine uses it to estimate per-window load for its
    /// longest-processing-time worker assignment.
    pub fn size_restricted(&self, f: NodeId, fixed: &dyn Fn(u32) -> Option<bool>) -> usize {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n.index()) {
                continue;
            }
            match fixed(self.var_of(n)) {
                Some(true) => stack.push(self.hi(n)),
                Some(false) => stack.push(self.lo(n)),
                None => {
                    stack.push(self.lo(n));
                    stack.push(self.hi(n));
                }
            }
        }
        seen.len() + 1
    }

    /// Evaluates `f` under a full assignment (`assign(var)` = value).
    pub fn eval(&self, f: NodeId, assign: &dyn Fn(u32) -> bool) -> bool {
        let mut n = f;
        while !n.is_terminal() {
            let v = self.var_of(n);
            n = if assign(v) { self.hi(n) } else { self.lo(n) };
        }
        n == NodeId::TRUE
    }

    /// Clears the computed caches (keeps the node table). Useful between
    /// phases with different operand distributions.
    pub fn clear_caches(&mut self) {
        self.clear_op_caches();
    }

    /// Number of satisfying assignments of `f` over `nvars` variables
    /// (variables `0..nvars`), as `f64` (exact for small counts).
    pub fn count_sat(&self, f: NodeId, nvars: u32) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        // count(n) = number of solutions below n, over the levels from
        // level(var(n)) to nvars — with dynamic reordering the "skipped
        // variables" exponent is a level gap, not a var-id gap. The memo
        // is keyed on the full edge (complement tag included), so f and
        // ¬f each get their own entry.
        fn go(
            m: &BddManager,
            n: NodeId,
            nvars: u32,
            memo: &mut FxHashMap<NodeId, f64>,
        ) -> f64 {
            if n == NodeId::FALSE {
                return 0.0;
            }
            if n == NodeId::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let v = m.level_of(m.var_of(n));
            let lo = m.lo(n);
            let hi = m.hi(n);
            let lo_l = if lo.is_terminal() { nvars } else { m.level_of(m.var_of(lo)) };
            let hi_l = if hi.is_terminal() { nvars } else { m.level_of(m.var_of(hi)) };
            let c = go(m, lo, nvars, memo) * 2f64.powi((lo_l - v - 1) as i32)
                + go(m, hi, nvars, memo) * 2f64.powi((hi_l - v - 1) as i32);
            memo.insert(n, c);
            c
        }
        let top = if f.is_terminal() { nvars } else { self.level_of(self.var_of(f)) };
        go(self, f, nvars, &mut memo) * 2f64.powi(top as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_exist() {
        let m = BddManager::new(100);
        assert!(NodeId::FALSE.is_terminal());
        assert!(NodeId::TRUE.is_terminal());
        // One shared terminal node; FALSE is its complement edge.
        assert_eq!(m.num_nodes(), 1);
        assert_eq!(!NodeId::TRUE, NodeId::FALSE);
        assert_eq!(m.constant(true), NodeId::TRUE);
    }

    #[test]
    fn mk_is_reduced_and_unique() {
        let mut m = BddManager::new(100);
        let a1 = m.var(0).unwrap();
        let a2 = m.var(0).unwrap();
        assert_eq!(a1, a2);
        // Redundancy: mk(v, x, x) == x
        let r = m.mk(3, a1, a1).unwrap();
        assert_eq!(r, a1);
        // Complement canonicalization: nvar shares var's node.
        let na = m.nvar(0).unwrap();
        assert_eq!(na, !a1);
        assert_eq!(m.num_nodes(), 2, "x and ¬x share one node");
    }

    #[test]
    fn quota_enforced() {
        let mut m = BddManager::new(2); // terminal + 1 node
        assert!(m.var(0).is_ok());
        assert!(matches!(m.var(1), Err(OutOfNodes { quota: 2 })));
    }

    #[test]
    fn eval_walks_paths() {
        let mut m = BddManager::new(100);
        let a = m.var(0).unwrap();
        assert!(m.eval(a, &|_| true));
        assert!(!m.eval(a, &|_| false));
        let na = m.nvar(0).unwrap();
        assert!(!m.eval(na, &|_| true));
    }

    #[test]
    fn size_counts_reachable_nodes_exactly() {
        // Regression: size used to report `seen + 2` unconditionally,
        // over-counting constants and every function by one terminal.
        let mut m = BddManager::new(100);
        assert_eq!(m.size(NodeId::TRUE), 1);
        assert_eq!(m.size(NodeId::FALSE), 1);
        let a = m.var(0).unwrap();
        assert_eq!(m.size(a), 2, "one decision node + the terminal");
        assert_eq!(m.size(!a), 2, "complement shares the node");
        let b = m.var(1).unwrap();
        let x = m.ite(a, !b, b).unwrap(); // a XOR b
        assert_eq!(m.size(x), 3, "xor is linear with complement edges");
    }

    #[test]
    fn count_sat_single_var() {
        let mut m = BddManager::new(100);
        let a = m.var(0).unwrap();
        assert_eq!(m.count_sat(a, 1), 1.0);
        assert_eq!(m.count_sat(a, 2), 2.0);
        assert_eq!(m.count_sat(NodeId::TRUE, 3), 8.0);
        assert_eq!(m.count_sat(NodeId::FALSE, 3), 0.0);
    }

    #[test]
    fn count_sat_deeper_var() {
        let mut m = BddManager::new(100);
        let b = m.var(1).unwrap(); // var 1 out of vars {0,1}
        assert_eq!(m.count_sat(b, 2), 2.0);
    }

    #[test]
    fn gc_frees_unrooted_keeps_rooted() {
        let mut m = BddManager::new(1 << 16);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let keep = m.and(a, b).unwrap();
        let dead = m.xor(a, b).unwrap();
        m.protect(keep);
        m.protect(a);
        m.protect(b);
        let live_before = m.num_nodes();
        let freed = m.gc();
        assert!(freed > 0, "the xor node must be collected");
        assert_eq!(m.num_nodes(), live_before - freed);
        // Rooted functions still evaluate correctly.
        assert!(m.eval(keep, &|_| true));
        assert!(!m.eval(keep, &|_| false));
        let _ = dead; // dangling by contract — must not be used again
        // Slots are recycled: rebuilding allocates into freed space.
        let len_before = m.nodes.len();
        let x2 = m.xor(a, b).unwrap();
        assert_eq!(m.nodes.len(), len_before, "mk must reuse freed slots");
        assert!(m.eval(x2, &|v| v == 0));
    }

    #[test]
    fn gc_under_quota_pressure_recovers() {
        // Quota sized so building junk then the target only fits if the
        // junk is collected: roots armed => automatic GC inside ops.
        let mut m = BddManager::new(24);
        let vars: Vec<NodeId> = (0..6).map(|v| m.var(v).unwrap()).collect();
        for &v in &vars {
            m.protect(v);
        }
        // Junk: a chain of xors, immediately dropped.
        let mut junk = m.xor(vars[0], vars[1]).unwrap();
        m.protect(junk);
        for &v in &vars[2..] {
            let j2 = m.xor(junk, v).unwrap();
            m.reroot(junk, j2);
            junk = j2;
        }
        m.unprotect(junk);
        let allocated_before = m.total_allocated();
        // A conjunction chain that needs the junk's slots back.
        let mut acc = vars[0];
        m.protect(acc);
        for &v in &vars[1..] {
            let a2 = m.and(acc, v).unwrap();
            m.reroot(acc, a2);
            acc = a2;
        }
        assert!(m.total_freed() > 0, "quota pressure must have triggered GC");
        assert!(m.total_allocated() > allocated_before);
        assert!(m.eval(acc, &|_| true));
        assert!(!m.eval(acc, &|v| v != 3));
    }

    #[test]
    fn unrooted_manager_keeps_fail_fast_quota() {
        // Without any protect() call the manager must not GC on pressure
        // (it cannot know which ids the caller still holds).
        let mut m = BddManager::new(8);
        let mut f = m.var(0).unwrap();
        let mut overflowed = false;
        for v in 1..20 {
            match m.var(v).and_then(|x| m.xor(f, x)) {
                Ok(g) => f = g,
                Err(_) => {
                    overflowed = true;
                    break;
                }
            }
        }
        assert!(overflowed, "tiny quota must overflow without roots");
        assert_eq!(m.total_freed(), 0, "no GC without a root set");
    }

    /// Builds a chain of immediately-dropped xors over `vars`, leaving
    /// `count` dead cones behind (roots only on the vars themselves).
    fn churn(m: &mut BddManager, vars: &[NodeId], count: usize) {
        for i in 0..count {
            let junk = m.xor(vars[i % vars.len()], vars[(i + 1) % vars.len()]).unwrap();
            let j2 = m.xor(junk, vars[(i + 2) % vars.len()]).unwrap();
            let _ = j2; // dropped: garbage once the op returns
        }
    }

    #[test]
    fn growth_threshold_collects_without_quota_pressure() {
        // Generous quota: the historical policy would never collect.
        let mut m = BddManager::new(1 << 16);
        let vars: Vec<NodeId> = (0..8).map(|v| m.var(v).unwrap()).collect();
        for &v in &vars {
            m.protect(v);
        }
        m.set_gc_growth_threshold(Some(16));
        churn(&mut m, &vars, 64);
        assert!(m.total_freed() > 0, "growth threshold must trigger collection");
        // The live set stays near the rooted cone, far from the garbage total.
        assert!(m.num_nodes() < m.total_allocated() as usize);
        for &v in &vars {
            assert!(m.eval(v, &|x| x == m.var_of(v)), "roots survive threshold GC");
        }
    }

    #[test]
    fn growth_threshold_does_not_fire_below_threshold() {
        let mut m = BddManager::new(1 << 16);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        m.protect(a);
        m.protect(b);
        m.set_gc_growth_threshold(Some(1 << 10));
        let x = m.xor(a, b).unwrap();
        let _ = m.and(a, b).unwrap();
        let _ = x;
        assert_eq!(m.total_freed(), 0, "small growth must not collect");
    }

    #[test]
    fn growth_threshold_stays_disarmed_without_roots() {
        // Same safety valve as quota-pressure GC: no root set, no sweeps
        // (the manager cannot tell held ids from garbage).
        let mut m = BddManager::new(1 << 16);
        let vars: Vec<NodeId> = (0..8).map(|v| m.var(v).unwrap()).collect();
        m.set_gc_growth_threshold(Some(4));
        churn(&mut m, &vars, 32);
        assert_eq!(m.total_freed(), 0, "no GC without a root set");
    }

    #[test]
    fn cache_aged_sweep_evicts_stale_entries_only() {
        let mut m = BddManager::new(1 << 16);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        for &v in [a, b, c].iter() {
            m.protect(v);
        }
        m.set_cache_max_age(Some(1));
        let ab = m.and(a, b).unwrap();
        m.protect(ab);
        assert!(!m.and_cache.is_empty());
        // One collection: age 1, within max_age — the entry survives.
        m.gc();
        assert!(
            m.and_cache.contains_key(&(a.min(b), a.max(b))),
            "entry within max_age survives the sweep"
        );
        // Touching the entry re-stamps it; an untouched second collection
        // then ages it past the limit.
        m.gc();
        assert!(
            !m.and_cache.contains_key(&(a.min(b), a.max(b))),
            "entry two collections stale is evicted"
        );
        // Eviction is about the cache only: the function itself is rooted
        // and still correct, and recomputing repopulates the cache.
        assert!(m.eval(ab, &|_| true));
        let ab2 = m.and(a, b).unwrap();
        assert_eq!(ab2, ab, "hash-consing rebuilds the same node");
        assert!(m.and_cache.contains_key(&(a.min(b), a.max(b))));
    }

    #[test]
    fn cache_hits_refresh_the_age_stamp() {
        let mut m = BddManager::new(1 << 16);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        m.protect(a);
        m.protect(b);
        m.set_cache_max_age(Some(1));
        let ab = m.and(a, b).unwrap();
        m.protect(ab); // keep the result live so only aging could evict
        m.gc(); // entry now one collection old
        let _ = m.and(a, b).unwrap(); // hit: re-stamps to the current epoch
        m.gc();
        assert!(
            m.and_cache.contains_key(&(a.min(b), a.max(b))),
            "a hot entry must not age out"
        );
    }

    #[test]
    fn heuristics_keep_live_quota_semantics() {
        // The quota still measures live nodes and peak_live still tracks
        // the high-water mark when both heuristics are on.
        let mut m = BddManager::new(64);
        let vars: Vec<NodeId> = (0..6).map(|v| m.var(v).unwrap()).collect();
        for &v in &vars {
            m.protect(v);
        }
        m.set_gc_growth_threshold(Some(8));
        m.set_cache_max_age(Some(0));
        churn(&mut m, &vars, 48);
        let mut acc = vars[0];
        m.protect(acc);
        for &v in &vars[1..] {
            let a2 = m.and(acc, v).unwrap();
            m.reroot(acc, a2);
            acc = a2;
        }
        assert!(m.num_nodes() <= 64, "quota bounds live nodes");
        assert!(m.peak_live_nodes() >= m.num_nodes());
        assert!(m.peak_live_nodes() <= 64, "peak live cannot exceed the quota");
        assert!(m.total_allocated() > m.peak_live_nodes() as u64, "churn exceeded the peak");
        assert!(m.eval(acc, &|_| true));
        assert!(!m.eval(acc, &|v| v != 3));
    }

    #[test]
    fn protect_is_refcounted() {
        let mut m = BddManager::new(100);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.and(a, b).unwrap();
        m.protect(a);
        m.protect(b);
        m.protect(f);
        m.protect(f);
        m.unprotect(f);
        assert_eq!(m.num_roots(), 3, "f's registration must remain");
        let live = m.num_nodes();
        m.gc();
        assert_eq!(m.num_nodes(), live, "all roots and cones stay live");
        m.unprotect(f);
        m.gc();
        assert_eq!(m.num_nodes(), live - 1, "f's node is now collectable");
    }
}
