//! # veridic-bdd
//!
//! A from-scratch Reduced Ordered Binary Decision Diagram package, the
//! foundation of veridic's unbounded model checking engines — including the
//! partitioned-OBDD (POBDD) reachability that reproduces the paper's
//! in-house engine \[Jain, IWLS 2004\].
//!
//! Design points:
//!
//! * **Complement edges**: a [`NodeId`] is a node index plus a complement
//!   tag bit, with the canonical regular-hi-edge form, so negation is an
//!   O(1) tag flip (`!id`), `f` and `¬f` share every node, and
//!   equivalent ITE phrasings fold onto one computed-cache entry
//!   (Brace–Rudell–Bryant normalization).
//! * **Mark-and-sweep garbage collection with node recycling**: external
//!   references are declared through a lightweight root set
//!   ([`BddManager::protect`]/[`BddManager::unprotect`]); under quota
//!   pressure the manager collects dead intermediates, recycles their
//!   slots, sweeps stale cache entries, and retries before raising
//!   [`OutOfNodes`] — the quota therefore counts **live** nodes, not
//!   nodes ever allocated.
//! * **Hash-consed node table** with a unique table and per-operation
//!   computed caches (ITE, AND apply — OR and difference are free
//!   complement rewrites of it — quantification, renaming), all keyed
//!   with [`hash::FxHasher`] (shared with the other engines via
//!   `veridic-aig`) — dense manager ids don't need SipHash's DoS
//!   resistance, and the multiply-xor scheme is several times faster on
//!   tuple keys.
//! * **Iterative, normalized ITE**: the generic ternary op runs on an
//!   explicit work stack, so its depth is independent of both operand
//!   structure and variable count, and canonicalizes operand order *and*
//!   complement polarity before cache lookup. The specialized binary
//!   apply recurses one frame per variable level (depth bounded by the
//!   order length).
//! * **Deterministic resource quota**: every operation returns
//!   `Result<_, OutOfNodes>` and fails once the live-node budget is
//!   exhausted (post-GC). The model checkers convert this into a
//!   reproducible "time-out", which is what drives the paper's Figure 7
//!   divide-and-conquer flow.
//! * **Relational product** (`and_exists`) as a first-class fused
//!   operation, plus order-preserving variable renaming for the
//!   current/next-state interleaving used by image computation.
//! * **Cross-manager transfer** ([`transfer`]): one function's cone
//!   serialized as a compact level-ordered node list (`Send`, no
//!   manager references) and rebuilt — sharing, complement edges and
//!   all — inside any manager with the same variable numbering, the
//!   result arriving rooted. This is the frontier-exchange primitive of
//!   the threaded POBDD engine and a checkpoint format in one.
//!
//! ```
//! use veridic_bdd::BddManager;
//!
//! let mut m = BddManager::new(1 << 20);
//! let a = m.var(0)?;
//! let b = m.var(1)?;
//! let f = m.and(a, b)?;
//! let g = m.or(a, b)?;
//! assert!(m.implies_check(f, g)?);
//! # Ok::<(), veridic_bdd::OutOfNodes>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod ops;
mod reorder;
pub mod transfer;

pub use veridic_aig::hash;
pub use veridic_aig::hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use manager::{BddManager, NodeId, OutOfNodes};
pub use reorder::{best_window_order, rebuild_with_order};
pub use transfer::{DeltaBdd, ExportedBdd, TransferFormatError};
