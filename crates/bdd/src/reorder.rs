//! Variable reordering, two ways:
//!
//! 1. **In-place dynamic reordering** — the adjacent-level swap
//!    primitive ([`BddManager::swap_adjacent_levels`]) and Rudell's
//!    sifting on top of it ([`BddManager::sift`]). A swap rewires the
//!    nodes of level *i* in terms of level *i+1* directly in the node
//!    table: every node index keeps denoting the same function, so
//!    external `NodeId`s (rooted or held as operands) survive a reorder
//!    unchanged. The var↔level indirection in the manager
//!    (`var2level`/`level2var`) is what the swap permutes; unique-table
//!    identity stays keyed on variable ids. An auto-trigger
//!    ([`BddManager::set_auto_reorder`]) fires sifting at operation
//!    entry when the live count outgrows a threshold — the same safe
//!    point as the PR 6 growth-threshold GC.
//!
//! 2. **Static window-permutation search** ([`best_window_order`]) —
//!    the offline relative: evaluates candidate orders by *rebuilding*
//!    the function under each permutation of a sliding window into a
//!    fresh manager ([`rebuild_with_order`]). Still useful for
//!    order-transfer between managers (the transfer layer's
//!    diverged-order import path uses the same ITE-rebuild technique).
//!
//! # Swap invariants (the heart of the in-place path)
//!
//! For a node `n = (x, f0, f1)` at level *i* that depends on the level
//! *i+1* variable `y`, the swap computes the four grandchildren
//! cofactors and rewrites `n` in place as `(y, F0, F1)` with
//! `F0 = mk(x, f00, f10)`, `F1 = mk(x, f01, f11)`. Complement-edge
//! canonical form is preserved for free: the stored hi edge `f1` is
//! regular, hence both its cofactors are regular, hence `F1` is regular.
//! `F0 == F1` is impossible (it would make `n` independent of `y`), so
//! `n` never collapses and its index — and every external `NodeId`
//! pointing at it — stays valid. Nodes at level *i+1* that lose their
//! last reference are reclaimed eagerly via reference counts. Computed
//! caches survive a reorder almost intact: a cached result is a slot
//! that kept its function and the table stayed canonical, so the entry
//! is exactly what recomputation would return — only entries touching
//! a slot freed during the run (a freed-then-reused slot would alias a
//! stale entry) are evicted afterwards.

use crate::hash::{FxHashMap, FxHashSet};
use crate::manager::{BddManager, Node, NodeId, OutOfNodes, TERMINAL_VAR};

/// Rebuilds `f` (expressed over variables in `order_from` positions) so
/// that variable `order_to[i]` sits at level `i` of a fresh manager.
///
/// `order_to` must be a permutation of `0..n` where `n` covers the
/// support of `f`.
///
/// On success the returned node is **rooted in `dst`**: it carries one
/// [`BddManager::protect`] registration that the caller owns and must
/// eventually release with [`BddManager::unprotect`] (or re-point with
/// [`BddManager::reroot`]). Without that handoff the result would be
/// unrooted the moment the rebuild's memo registrations are released,
/// and any allocating call on `dst` under quota pressure could
/// garbage-collect it before the caller roots it.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if the destination manager's quota is
/// exhausted; no root registrations leak on this path.
pub fn rebuild_with_order(
    src: &BddManager,
    f: NodeId,
    order_to: &[u32],
    dst: &mut BddManager,
) -> Result<NodeId, OutOfNodes> {
    // position_of[v] = level of variable v in the new order.
    let mut position_of = vec![0u32; order_to.len()];
    for (lvl, v) in order_to.iter().enumerate() {
        position_of[*v as usize] = lvl as u32;
    }
    let mut memo = crate::hash::FxHashMap::default();
    // Memoized intermediates are held across later allocating calls, so
    // they are protected for the duration of the rebuild (this also arms
    // `dst`'s automatic garbage collection under quota pressure).
    let out = rebuild(src, f, &position_of, dst, &mut memo);
    // Root the result *before* the memo registrations are released: the
    // result is one of the memoized nodes, so unprotecting the memo
    // first would leave it collectable in the gap before the caller
    // could protect it (the caller-owns-one-root handoff above).
    if let Ok(r) = out {
        dst.protect(r);
    }
    for r in memo.values() {
        dst.unprotect(*r);
    }
    out
}

fn rebuild(
    src: &BddManager,
    f: NodeId,
    position_of: &[u32],
    dst: &mut BddManager,
    memo: &mut crate::hash::FxHashMap<NodeId, NodeId>,
) -> Result<NodeId, OutOfNodes> {
    if f.is_terminal() {
        return Ok(f);
    }
    // Rebuilding commutes with complement: memoize regular edges only.
    if f.is_complemented() {
        return Ok(!rebuild(src, !f, position_of, dst, memo)?);
    }
    if let Some(&r) = memo.get(&f) {
        return Ok(r);
    }
    let v = src.node_var(f);
    let lo = rebuild(src, src_lo(src, f), position_of, dst, memo)?;
    let hi = rebuild(src, src_hi(src, f), position_of, dst, memo)?;
    // In the destination, the decision on v happens at its new position;
    // build ITE(var_at_new_pos, hi, lo). ITE keeps the result ordered even
    // when children contain variables now placed above v.
    let nv = dst.var(position_of[v as usize])?;
    let r = dst.ite(nv, hi, lo)?;
    dst.protect(r);
    memo.insert(f, r);
    Ok(r)
}

fn src_lo(src: &BddManager, f: NodeId) -> NodeId {
    src.lo(f)
}

fn src_hi(src: &BddManager, f: NodeId) -> NodeId {
    src.hi(f)
}

/// Searches for a small-size variable order by sliding a window of
/// `window` variables over the order and trying every permutation inside
/// the window (window permutation search). Returns `(order, size)` of
/// the best order found; `order[i]` is the original variable placed at
/// level `i`.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if a rebuild exceeds `quota`.
pub fn best_window_order(
    src: &BddManager,
    f: NodeId,
    nvars: u32,
    window: usize,
    quota: usize,
) -> Result<(Vec<u32>, usize), OutOfNodes> {
    let mut order: Vec<u32> = (0..nvars).collect();
    let mut best_size = {
        let mut m = BddManager::new(quota);
        let g = rebuild_with_order(src, f, &order, &mut m)?;
        m.size(g)
    };
    let window = window.max(2).min(nvars as usize);
    let mut improved = true;
    while improved {
        improved = false;
        // Snapshot the base order for this pass: every candidate is a
        // window permutation of the SAME base. (Adopting an improvement
        // mid-enumeration used to draw later permutations from a mixed
        // base, duplicating some candidates and never trying others.)
        let base = order.clone();
        let mut pass_best: Option<(Vec<u32>, usize)> = None;
        for start in 0..=(nvars as usize - window) {
            let mut perm_indices: Vec<usize> = (0..window).collect();
            // Heap's algorithm over the window slots.
            let mut c = vec![0usize; window];
            let mut i = 0;
            while i < window {
                if c[i] < i {
                    if i % 2 == 0 {
                        perm_indices.swap(0, i);
                    } else {
                        perm_indices.swap(c[i], i);
                    }
                    // Apply this window permutation to a candidate order.
                    let mut cand = base.clone();
                    let slice: Vec<u32> =
                        perm_indices.iter().map(|k| base[start + k]).collect();
                    cand[start..start + window].copy_from_slice(&slice);
                    let mut m = BddManager::new(quota);
                    let g = rebuild_with_order(src, f, &cand, &mut m)?;
                    let size = m.size(g);
                    if size < pass_best.as_ref().map_or(best_size, |(_, s)| *s) {
                        pass_best = Some((cand, size));
                    }
                    c[i] += 1;
                    i = 0;
                } else {
                    c[i] = 0;
                    i += 1;
                }
            }
        }
        // Adopt the pass's best candidate only between passes.
        if let Some((cand, size)) = pass_best {
            order = cand;
            best_size = size;
            improved = true;
        }
    }
    Ok((order, best_size))
}

/// Working state of one sifting run (or one explicit swap): exact
/// per-node reference counts, the pin set, per-level node lists, and
/// reusable scratch buffers. Reference counts let the swap primitive
/// free dead level-*i+1* nodes eagerly and keep the live count exact —
/// Rudell's size comparisons are only meaningful against exact sizes.
struct SiftScratch {
    /// Node index → number of stored parent edges among live nodes.
    refs: Vec<u32>,
    /// Indices that must never be freed: external roots plus the
    /// operands of the in-flight operation that triggered the sift.
    pinned: FxHashSet<u32>,
    /// Level → candidate node indices. Entries are validated lazily
    /// (an index belongs to the list iff its slot still holds the
    /// level's variable), and the two lists touched by a swap are
    /// repartitioned afterwards.
    level_nodes: Vec<Vec<u32>>,
    /// Exact live-node count (terminal included), maintained by the
    /// swap's allocations and reclamations.
    live: usize,
    /// Whether dead nodes may be reclaimed. False when the manager has
    /// no root set — then, as with GC, held ids are indistinguishable
    /// from garbage and nothing is freed.
    reclaim: bool,
    /// Slot index → was freed at some point during this run (the slot
    /// may since have been reused for a different function). Computed-
    /// cache entries touching a stale slot are evicted afterwards; all
    /// other entries stay valid, because surviving slots keep their
    /// functions and the table stays canonical for the current order.
    stale: Vec<bool>,
    any_stale: bool,
    /// Node rewrites performed so far (the unit of sifting cost: each
    /// mover costs two `mk_sift` calls and a unique-table re-insert).
    work: usize,
    /// Rewrite budget for the whole run; exploration is abandoned once
    /// it is exhausted (blocks still park at their best position, so
    /// the walk stays deterministic and the order maps stay exact).
    work_budget: usize,
    movers: Vec<u32>,
    created: Vec<u32>,
    cand: Vec<u32>,
    dec_stack: Vec<u32>,
}

/// Index of the block covering `level` in a level-ordered block list.
fn block_index_of(blocks: &[Vec<u32>], level: usize) -> usize {
    let mut start = 0;
    for (k, b) in blocks.iter().enumerate() {
        if level < start + b.len() {
            return k;
        }
        start += b.len();
    }
    unreachable!("level {level} beyond the tracked order")
}

impl BddManager {
    /// Swaps the variables at `level` and `level + 1` of the current
    /// order, in place. Every `NodeId` — rooted or merely held — keeps
    /// denoting the same function afterwards; only node counts change.
    /// Computed-cache entries touching a slot the swap freed are
    /// evicted (slot reuse would alias them); the rest stay valid.
    /// Nodes left unreferenced by the rewiring are reclaimed if the
    /// manager has a root set; unprotected ids then dangle exactly as
    /// they would across a collection.
    ///
    /// This is the one-off public form of the primitive; sifting batches
    /// many swaps over one `SiftScratch` (private).
    pub fn swap_adjacent_levels(&mut self, level: u32) {
        let l = level as usize;
        if l + 1 >= self.level2var.len() {
            return;
        }
        let mut s = self.build_sift_scratch(&[]);
        self.swap_levels_scratch(l, &mut s);
        self.evict_stale_cache_entries(&s);
    }

    /// One full pass of Rudell's sifting over the current order: each
    /// block of variables (declared pairs move as one 2-block, every
    /// other variable alone), in decreasing order of node population, is
    /// moved through all positions and parked where the live-node count
    /// was smallest. A move direction is abandoned when the table grows
    /// past 1.2× the best size seen for this block, or past 7/8 of the
    /// node quota. Returns `(live nodes before, live nodes after)`.
    ///
    /// External `NodeId`s survive and keep their functions; unprotected
    /// ids dangle as across a collection. Runs a collection first (when
    /// a root set exists) so sizes are exact.
    pub fn sift(&mut self) -> (usize, usize) {
        self.sift_impl(&[], usize::MAX)
    }

    /// [`BddManager::sift`] with the in-flight operation's operands
    /// pinned — the form the auto-reorder trigger calls from
    /// `run_with_gc` entry. Unlike the explicit form, the auto path is
    /// work-bounded: a full Rudell pass costs O(blocks × levels ×
    /// level population) rewrites, which mid-computation would dwarf
    /// the win, so exploration stops once the rewrite budget (a small
    /// multiple of the live count) is spent. The most-populated blocks
    /// sift first, so the budget goes to the best candidates.
    pub(crate) fn sift_with_temps(&mut self, temps: &[NodeId]) -> (usize, usize) {
        const AUTO_WORK_FACTOR: usize = 64;
        self.sift_impl(temps, AUTO_WORK_FACTOR)
    }

    fn sift_impl(&mut self, temps: &[NodeId], work_factor: usize) -> (usize, usize) {
        let nlevels = self.level2var.len();
        let live0 = self.nodes.len() - self.free_list.len();
        if nlevels < 2 {
            return (live0, live0);
        }
        if !self.roots.is_empty() {
            self.gc_with_temps(temps);
        }
        let mut s = self.build_sift_scratch(temps);
        let before = s.live;
        s.work_budget = before.saturating_mul(work_factor);
        // Blocks in level order: a declared pair whose members sit
        // adjacent becomes one 2-block (rename's order-preservation
        // contract needs current/next twins to travel together);
        // everything else is a singleton.
        let pair_next: FxHashMap<u32, u32> = self.reorder_pairs.iter().copied().collect();
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut l = 0usize;
        while l < nlevels {
            let v = self.level2var[l];
            if let Some(&w) = pair_next.get(&v) {
                if l + 1 < nlevels && self.level2var[l + 1] == w {
                    blocks.push(vec![v, w]);
                    l += 2;
                    continue;
                }
                debug_assert!(false, "reorder pair ({v},{w}) not adjacent at sift start");
            }
            blocks.push(vec![v]);
            l += 1;
        }
        // Rudell's agenda: most-populated block first (ties broken by
        // variable id for determinism). Population is a snapshot from
        // before any moves; empty blocks are skipped outright.
        let mut agenda: Vec<(usize, u32)> = Vec::new();
        let mut start = 0usize;
        for b in &blocks {
            let mut pop = 0usize;
            for lv in start..start + b.len() {
                let expected = self.level2var[lv];
                pop += s.level_nodes[lv]
                    .iter()
                    .filter(|&&i| self.nodes[i as usize].var == expected)
                    .count();
            }
            agenda.push((pop, b[0]));
            start += b.len();
        }
        agenda.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(pop, rep) in &agenda {
            if pop == 0 {
                continue;
            }
            if s.work >= s.work_budget {
                break;
            }
            let lvl = self.var2level[rep as usize] as usize;
            let k0 = block_index_of(&blocks, lvl);
            self.sift_block(&mut blocks, k0, &mut s);
        }
        self.evict_stale_cache_entries(&s);
        self.reorders_run += 1;
        self.reorder_nodes_before += before as u64;
        self.reorder_nodes_after += s.live as u64;
        self.last_reorder_live = s.live;
        self.last_gc_live = s.live;
        (before, s.live)
    }

    /// Computed-cache upkeep after in-place swaps: every surviving slot
    /// kept its function and the table stayed canonical for the current
    /// order, so a cached result is exactly what recomputation would
    /// return. Only entries touching a slot freed during the run (whose
    /// index may since have been reused for a different function) are
    /// stale — evicting just those preserves the image computation's
    /// memo across a reorder instead of forcing a full rebuild.
    fn evict_stale_cache_entries(&mut self, s: &SiftScratch) {
        if !s.any_stale {
            return;
        }
        let stale = &s.stale;
        let fresh = |id: NodeId| {
            let i = id.index() as usize;
            i >= stale.len() || !stale[i]
        };
        self.retain_op_caches(&mut |key, r, _| key.iter().all(|&k| fresh(k)) && fresh(r));
    }

    fn build_sift_scratch(&self, temps: &[NodeId]) -> SiftScratch {
        let mut refs = vec![0u32; self.nodes.len()];
        let mut level_nodes: Vec<Vec<u32>> = vec![Vec::new(); self.level2var.len()];
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == TERMINAL_VAR {
                continue; // free slot
            }
            if n.lo.index() != 0 {
                refs[n.lo.index() as usize] += 1;
            }
            if n.hi.index() != 0 {
                refs[n.hi.index() as usize] += 1;
            }
            level_nodes[self.var2level[n.var as usize] as usize].push(i as u32);
        }
        let mut pinned: FxHashSet<u32> = self.roots.keys().copied().collect();
        pinned.extend(temps.iter().filter(|t| t.index() != 0).map(|t| t.index()));
        SiftScratch {
            refs,
            pinned,
            level_nodes,
            live: self.nodes.len() - self.free_list.len(),
            reclaim: !self.roots.is_empty(),
            stale: vec![false; self.nodes.len()],
            any_stale: false,
            work: 0,
            work_budget: usize::MAX,
            movers: Vec::new(),
            created: Vec::new(),
            cand: Vec::new(),
            dec_stack: Vec::new(),
        }
    }

    /// Sifts the block at index `k0`: closer end of the order first,
    /// then the other end, then back to the best position seen. The
    /// live count at a given order is canonical (reclamation is exact),
    /// so re-visiting a position re-measures the same size and the walk
    /// is deterministic.
    fn sift_block(&mut self, blocks: &mut [Vec<u32>], k0: usize, s: &mut SiftScratch) {
        let n = blocks.len();
        if n < 2 {
            return;
        }
        let budget = (self.max_nodes - self.max_nodes / 8).max(2);
        let mut k = k0;
        let mut best = s.live;
        let mut best_k = k0;
        let down_first = n - 1 - k0 <= k0;
        for pass in 0..2 {
            let dir_down = if pass == 0 { down_first } else { !down_first };
            loop {
                if dir_down {
                    if k + 1 >= n {
                        break;
                    }
                    self.move_block_down(blocks, k, s);
                    k += 1;
                } else {
                    if k == 0 {
                        break;
                    }
                    self.move_block_down(blocks, k - 1, s);
                    k -= 1;
                }
                if s.live < best {
                    best = s.live;
                    best_k = k;
                }
                // Max-growth factor 1.2 plus the hard node budget plus
                // the rewrite budget: a direction that blows the table
                // up — or has cost more moves than the whole run is
                // worth — is abandoned (the park-back below still runs,
                // so the block always ends at its best seen position).
                if s.live > best + best / 5 || s.live > budget || s.work >= s.work_budget {
                    break;
                }
            }
        }
        while k < best_k {
            self.move_block_down(blocks, k, s);
            k += 1;
        }
        while k > best_k {
            self.move_block_down(blocks, k - 1, s);
            k -= 1;
        }
    }

    /// Exchanges blocks `k` and `k+1`: each member of the lower block
    /// rises over the upper block one at a time (bottom-most first), so
    /// both blocks keep their internal order and end up intact.
    fn move_block_down(&mut self, blocks: &mut [Vec<u32>], k: usize, s: &mut SiftScratch) {
        let l: usize = blocks[..k].iter().map(|b| b.len()).sum();
        let w = blocks[k].len();
        let u = blocks[k + 1].len();
        for j in 0..u {
            for t in ((l + j)..(l + w + j)).rev() {
                self.swap_levels_scratch(t, s);
            }
        }
        blocks.swap(k, k + 1);
    }

    /// The swap primitive over a prepared scratch: rewires level `l` in
    /// terms of level `l+1` in place (see the module docs for the
    /// invariant argument).
    fn swap_levels_scratch(&mut self, l: usize, s: &mut SiftScratch) {
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        s.movers.clear();
        s.created.clear();
        // Phase 1: find the x-nodes that depend on y and remove their
        // unique entries up front — mk_sift must only ever hit
        // y-independent x-nodes (which legitimately are the cofactor
        // nodes being built), never a pending-rewrite key.
        let xs = std::mem::take(&mut s.level_nodes[l]);
        for &i in &xs {
            let n = self.nodes[i as usize];
            if n.var != x {
                continue; // stale list entry (freed or reused slot)
            }
            if self.nodes[n.lo.index() as usize].var == y
                || self.nodes[n.hi.index() as usize].var == y
            {
                self.unique.remove(&(x, n.lo, n.hi));
                s.movers.push(i);
            }
        }
        s.level_nodes[l] = xs;
        // Phase 2: rewrite each mover in place as a y-node over fresh
        // (or shared) x-children built from the grandchild cofactors.
        s.work += s.movers.len();
        for mi in 0..s.movers.len() {
            let i = s.movers[mi];
            let n = self.nodes[i as usize];
            let (f0, f1) = (n.lo, n.hi);
            let (f00, f01) = if self.var_of(f0) == y {
                (self.lo(f0), self.hi(f0))
            } else {
                (f0, f0)
            };
            let (f10, f11) = if self.var_of(f1) == y {
                (self.lo(f1), self.hi(f1))
            } else {
                (f1, f1)
            };
            let nf0 = self.mk_sift(x, f00, f10, s);
            let nf1 = self.mk_sift(x, f01, f11, s);
            debug_assert!(!nf1.is_complemented(), "swap must keep the stored hi edge regular");
            debug_assert_ne!(nf0, nf1, "a y-dependent node cannot collapse in a swap");
            // New references first, old references last: a shared child
            // must not dip to zero in between and be reclaimed.
            if nf0.index() != 0 {
                s.refs[nf0.index() as usize] += 1;
            }
            if nf1.index() != 0 {
                s.refs[nf1.index() as usize] += 1;
            }
            self.nodes[i as usize] = Node { var: y, lo: nf0, hi: nf1 };
            let prev = self.unique.insert((y, nf0, nf1), NodeId::from_index(i));
            debug_assert!(prev.is_none(), "swap rewrite collided in the unique table");
            self.dec_ref_sift(f0, s);
            self.dec_ref_sift(f1, s);
        }
        // Swap the order maps, then repartition the two level lists
        // (plus anything the rewrites created) by current variable.
        // Sort + dedup: a slot freed by one rewrite and reused by a
        // later one can appear both as a stale list entry and in
        // `created`.
        self.level2var.swap(l, l + 1);
        self.var2level[x as usize] = (l + 1) as u32;
        self.var2level[y as usize] = l as u32;
        s.cand.clear();
        let mut ys_new = std::mem::take(&mut s.level_nodes[l]);
        let mut xs_new = std::mem::take(&mut s.level_nodes[l + 1]);
        s.cand.extend(ys_new.iter().copied());
        s.cand.extend(xs_new.iter().copied());
        s.cand.extend(s.created.iter().copied());
        s.cand.sort_unstable();
        s.cand.dedup();
        ys_new.clear();
        xs_new.clear();
        for &i in &s.cand {
            let v = self.nodes[i as usize].var;
            if v == y {
                ys_new.push(i);
            } else if v == x {
                xs_new.push(i);
            }
        }
        s.level_nodes[l] = ys_new;
        s.level_nodes[l + 1] = xs_new;
    }

    /// `mk` for the swap primitive: no quota check (a swap must be
    /// infallible — failing halfway would tear a block apart and leave
    /// the order maps lying about the table; the sifting policy enforces
    /// the node budget *between* moves instead), and it maintains the
    /// scratch reference counts, live count, and created-node list. The
    /// new node's own reference starts at zero; the caller adds it.
    fn mk_sift(&mut self, var: u32, lo: NodeId, hi: NodeId, s: &mut SiftScratch) -> NodeId {
        if lo == hi {
            return lo;
        }
        let neg = hi.0 & 1;
        let (lo, hi) = (NodeId(lo.0 ^ neg), NodeId(hi.0 ^ neg));
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return NodeId(id.0 ^ neg);
        }
        let index = match self.free_list.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node { var, lo, hi };
                i
            }
            None => {
                self.nodes.push(Node { var, lo, hi });
                (self.nodes.len() - 1) as u32
            }
        };
        if s.refs.len() < self.nodes.len() {
            s.refs.resize(self.nodes.len(), 0);
            s.stale.resize(self.nodes.len(), false);
        }
        s.refs[index as usize] = 0;
        if lo.index() != 0 {
            s.refs[lo.index() as usize] += 1;
        }
        if hi.index() != 0 {
            s.refs[hi.index() as usize] += 1;
        }
        self.unique.insert((var, lo, hi), NodeId::from_index(index));
        self.total_allocated += 1;
        s.live += 1;
        if s.live > self.peak_live {
            self.peak_live = s.live;
        }
        s.created.push(index);
        NodeId(NodeId::from_index(index).0 ^ neg)
    }

    /// Drops one reference to `edge`'s node, reclaiming it (and
    /// cascading into its children) when the count reaches zero and the
    /// node is neither pinned nor in a reclaim-disabled run.
    fn dec_ref_sift(&mut self, edge: NodeId, s: &mut SiftScratch) {
        if edge.index() == 0 {
            return;
        }
        debug_assert!(s.dec_stack.is_empty());
        s.dec_stack.push(edge.index());
        while let Some(i) = s.dec_stack.pop() {
            debug_assert!(s.refs[i as usize] > 0, "refcount underflow in swap");
            s.refs[i as usize] -= 1;
            if s.refs[i as usize] == 0 && s.reclaim && !s.pinned.contains(&i) {
                let n = self.nodes[i as usize];
                self.unique.remove(&(n.var, n.lo, n.hi));
                self.nodes[i as usize] =
                    Node { var: TERMINAL_VAR, lo: NodeId::TRUE, hi: NodeId::TRUE };
                self.free_list.push(i);
                self.total_freed += 1;
                s.stale[i as usize] = true;
                s.any_stale = true;
                s.live -= 1;
                if n.lo.index() != 0 {
                    s.dec_stack.push(n.lo.index());
                }
                if n.hi.index() != 0 {
                    s.dec_stack.push(n.hi.index());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical order-sensitive function:
    /// f = x0·x1 ∨ x2·x3 ∨ x4·x5 is linear in the good (paired) order and
    /// exponential in the interleaved order (x0 x2 x4 x1 x3 x5).
    fn chained_pairs(m: &mut BddManager, pairs: &[(u32, u32)]) -> NodeId {
        let mut f = NodeId::FALSE;
        for (a, b) in pairs {
            let va = m.var(*a).unwrap();
            let vb = m.var(*b).unwrap();
            let t = m.and(va, vb).unwrap();
            f = m.or(f, t).unwrap();
        }
        f
    }

    #[test]
    fn rebuild_preserves_semantics() {
        let mut src = BddManager::new(1 << 16);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let order = vec![0u32, 3, 1, 4, 2, 5];
        let mut dst = BddManager::new(1 << 16);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        // Semantics: dst level i holds variable order[i]; evaluate both on
        // all 64 assignments.
        for asg in 0..64u32 {
            let want = src.eval(f, &|v| asg >> v & 1 == 1);
            let got = dst.eval(g, &|lvl| {
                let v = order[lvl as usize];
                asg >> v & 1 == 1
            });
            assert_eq!(want, got, "assignment {asg:06b}");
        }
    }

    #[test]
    fn good_order_is_smaller_than_bad() {
        // Bad (interleaved) order in the source manager.
        let mut src = BddManager::new(1 << 18);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let bad_size = src.size(f);
        // Paired order: (0,3)(1,4)(2,5) adjacent.
        let order = vec![0u32, 3, 1, 4, 2, 5];
        let mut dst = BddManager::new(1 << 18);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        assert!(
            dst.size(g) < bad_size,
            "paired order {} must beat interleaved {}",
            dst.size(g),
            bad_size
        );
    }

    #[test]
    fn window_search_finds_the_pairing() {
        let mut src = BddManager::new(1 << 18);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let start_size = src.size(f);
        let (order, size) = best_window_order(&src, f, 6, 3, 1 << 18).unwrap();
        assert!(size <= start_size, "search must not regress");
        assert!(size <= 10, "pairs function has a linear-size order, got {size} via {order:?}");
    }

    /// Regression for the mixed-base enumeration bug: with a window
    /// spanning all variables, one pass enumerates every permutation of
    /// the snapshot base, so the search must find the global optimum.
    /// (The old code assigned `order = cand` mid-enumeration, drawing
    /// later candidates from a mixed base — some permutations were
    /// duplicated and others never tried.)
    #[test]
    fn full_window_pass_finds_global_optimum() {
        let mut src = BddManager::new(1 << 18);
        let f = chained_pairs(&mut src, &[(0, 2), (1, 3)]);
        // Brute force: try all 24 orders of 4 variables.
        let mut orders = Vec::new();
        let mut perm = vec![0u32, 1, 2, 3];
        permutations(&mut perm, 0, &mut orders);
        let brute_best = orders
            .iter()
            .map(|o| {
                let mut m = BddManager::new(1 << 18);
                let g = rebuild_with_order(&src, f, o, &mut m).unwrap();
                m.size(g)
            })
            .min()
            .unwrap();
        let (_, size) = best_window_order(&src, f, 4, 4, 1 << 18).unwrap();
        assert_eq!(size, brute_best, "full-window search must match brute force");
    }

    fn permutations(v: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
        if k == v.len() {
            out.push(v.clone());
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permutations(v, k + 1, out);
            v.swap(k, i);
        }
    }

    /// Regression: `rebuild_with_order` used to unprotect every memoized
    /// node — including the result — before returning, so a collection
    /// right after the call (explicit here; under quota pressure in the
    /// field) freed the rebuilt cone before the caller could root it.
    /// The fix hands the caller one root registration on the result.
    #[test]
    fn result_survives_gc_immediately_after_rebuild() {
        let mut src = BddManager::new(1 << 16);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let order = vec![0u32, 3, 1, 4, 2, 5];
        let mut dst = BddManager::new(1 << 16);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        let size = dst.size(g);
        assert_eq!(dst.num_roots(), 1, "exactly the handed-off root remains");
        dst.gc();
        assert_eq!(dst.size(g), size, "GC must not reclaim the rooted result");
        for asg in 0..64u32 {
            let want = src.eval(f, &|v| asg >> v & 1 == 1);
            let got = dst.eval(g, &|lvl| asg >> order[lvl as usize] & 1 == 1);
            assert_eq!(want, got, "assignment {asg:06b}");
        }
        // Releasing the handed-off root makes the cone collectable.
        dst.unprotect(g);
        assert!(dst.gc() > 0, "unrooted result is garbage again");
    }

    #[test]
    fn identity_order_roundtrips() {
        let mut src = BddManager::new(1 << 16);
        let f = chained_pairs(&mut src, &[(0, 1), (2, 3)]);
        let order: Vec<u32> = (0..4).collect();
        let mut dst = BddManager::new(1 << 16);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        assert_eq!(src.size(f), dst.size(g));
    }

    // ---- in-place dynamic reordering ----

    /// Evaluates `f` on all `2^n` assignments (bit v of the index is
    /// variable v's value — var-keyed, so order-independent).
    fn truth_table(m: &BddManager, f: NodeId, n: u32) -> Vec<bool> {
        (0..1u32 << n).map(|asg| m.eval(f, &|v| asg >> v & 1 == 1)).collect()
    }

    #[test]
    fn adjacent_swap_preserves_ids_and_functions() {
        let mut m = BddManager::new(1 << 16);
        let f = chained_pairs(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        m.protect(f);
        let tt = truth_table(&m, f, 6);
        let size_before = m.size(f);
        m.swap_adjacent_levels(0);
        assert_eq!(m.level_of(0), 1, "var 0 moved down");
        assert_eq!(m.level_of(1), 0, "var 1 moved up");
        assert_eq!(truth_table(&m, f, 6), tt, "same NodeId, same function");
        // Swapping back restores the identity order and the exact size.
        m.swap_adjacent_levels(0);
        assert_eq!(m.level_of(0), 0);
        assert_eq!(truth_table(&m, f, 6), tt);
        assert_eq!(m.size(f), size_before, "swap is size-involutive");
    }

    #[test]
    fn swap_walks_a_variable_through_the_whole_order() {
        let mut m = BddManager::new(1 << 16);
        let f = chained_pairs(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        m.protect(f);
        let tt = truth_table(&m, f, 6);
        // Bubble var 0 to the bottom, one level at a time.
        for l in 0..5 {
            m.swap_adjacent_levels(l);
            assert_eq!(m.level_of(0), l + 1);
            assert_eq!(truth_table(&m, f, 6), tt, "after swap at level {l}");
        }
        assert_eq!(m.current_order(), vec![1, 2, 3, 4, 5, 0]);
    }

    #[test]
    fn sift_shrinks_the_interleaved_pairs_function() {
        // Under the identity order f = x0·x3 ∨ x1·x4 ∨ x2·x5 is the
        // exponential interleaving; sifting must find a pairing order.
        let mut m = BddManager::new(1 << 16);
        let f = chained_pairs(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        m.protect(f);
        let tt = truth_table(&m, f, 6);
        let size_before = m.size(f);
        let (before, after) = m.sift();
        assert!(after < before, "sift must shrink {before} -> {after}");
        assert!(m.size(f) < size_before);
        assert!(m.size(f) <= 8, "pairing order is linear, got {}", m.size(f));
        assert_eq!(truth_table(&m, f, 6), tt, "external id survives the sift");
        let (r, b, a) = m.reorder_stats();
        assert_eq!(r, 1);
        assert!(a < b);
    }

    #[test]
    fn sift_then_gc_keeps_rooted_functions() {
        let mut m = BddManager::new(1 << 16);
        let f = chained_pairs(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        let g = {
            let a = m.var(1).unwrap();
            let b = m.var(5).unwrap();
            m.xor(a, b).unwrap()
        };
        m.protect(f);
        m.protect(g);
        let tf = truth_table(&m, f, 6);
        let tg = truth_table(&m, g, 6);
        m.sift();
        m.gc();
        assert_eq!(truth_table(&m, f, 6), tf);
        assert_eq!(truth_table(&m, g, 6), tg);
        // Ops still work against the reordered table.
        let fg = m.and(f, g).unwrap();
        for asg in 0..64u32 {
            let want = tf[asg as usize] && tg[asg as usize];
            assert_eq!(m.eval(fg, &|v| asg >> v & 1 == 1), want);
        }
    }

    #[test]
    fn sift_keeps_declared_pairs_adjacent() {
        let mut m = BddManager::new(1 << 16);
        // Pairs (0,1) and (2,3) declared adjacent; the function wants
        // the cross pairing (0,2)(1,3), so sifting will move blocks.
        let f = chained_pairs(&mut m, &[(0, 2), (1, 3)]);
        m.protect(f);
        m.set_reorder_pairs(vec![(0, 1), (2, 3)]);
        let tt = truth_table(&m, f, 4);
        m.sift();
        assert_eq!(m.level_of(0) + 1, m.level_of(1), "pair (0,1) stays adjacent");
        assert_eq!(m.level_of(2) + 1, m.level_of(3), "pair (2,3) stays adjacent");
        assert_eq!(truth_table(&m, f, 4), tt);
    }

    #[test]
    fn auto_reorder_fires_on_growth_and_preserves_functions() {
        let mut m = BddManager::new(1 << 16);
        let f = chained_pairs(&mut m, &[(0, 4), (1, 5), (2, 6), (3, 7)]);
        m.protect(f);
        let tt = truth_table(&m, f, 8);
        m.set_auto_reorder(Some(8));
        // Grow the table past the threshold AND to 2x its armed size
        // (the geometric backoff gates on both): the next op entry
        // fires it. The accumulator is re-rooted each step —
        // unprotected ids dangle across a reorder exactly as across a
        // collection.
        let mut acc = NodeId::FALSE;
        for v in 0..64u32 {
            let x = m.var(v).unwrap();
            let next = m.xor(acc, x).unwrap();
            m.reroot(acc, next);
            acc = next;
        }
        assert!(m.reorder_stats().0 >= 1, "auto trigger must have fired");
        assert_eq!(truth_table(&m, f, 8), tt, "rooted id survives auto-reorder");
        assert!(!acc.is_terminal());
    }

    #[test]
    fn auto_reorder_stays_disarmed_without_roots() {
        let mut m = BddManager::new(1 << 16);
        let _f = chained_pairs(&mut m, &[(0, 2), (1, 3)]);
        m.set_auto_reorder(Some(1));
        let _ = chained_pairs(&mut m, &[(0, 3), (1, 2)]);
        assert_eq!(m.reorder_stats().0, 0, "no reorder without a root set");
    }

    #[test]
    fn count_sat_uses_levels_after_reorder() {
        let mut m = BddManager::new(1 << 16);
        let f = chained_pairs(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        m.protect(f);
        let want = m.count_sat(f, 6);
        m.sift();
        assert_eq!(m.count_sat(f, 6), want, "count_sat is order-invariant");
    }
}
