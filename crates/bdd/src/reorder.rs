//! Static variable-order search by *window permutation*: a lightweight
//! relative of Rudell's sifting suited to this package's
//! no-inplace-mutation node table.
//!
//! The manager's ops assume a fixed global order, so instead of swapping
//! adjacent levels in place (classic sifting), [`best_window_order`]
//! evaluates candidate orders by *rebuilding* the function under each
//! permutation of a sliding window and keeping the best. Rebuilding via
//! [`BddManager::rename`] is only valid for order-preserving maps, so the
//! rebuild here re-evaluates the function bottom-up with Shannon
//! expansion in the new order — exact, if more expensive than in-place
//! sifting; intended for the moderate variable counts of leaf-module
//! cones.

use crate::manager::{BddManager, NodeId, OutOfNodes};

/// Rebuilds `f` (expressed over variables in `order_from` positions) so
/// that variable `order_to[i]` sits at level `i` of a fresh manager.
///
/// `order_to` must be a permutation of `0..n` where `n` covers the
/// support of `f`.
///
/// On success the returned node is **rooted in `dst`**: it carries one
/// [`BddManager::protect`] registration that the caller owns and must
/// eventually release with [`BddManager::unprotect`] (or re-point with
/// [`BddManager::reroot`]). Without that handoff the result would be
/// unrooted the moment the rebuild's memo registrations are released,
/// and any allocating call on `dst` under quota pressure could
/// garbage-collect it before the caller roots it.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if the destination manager's quota is
/// exhausted; no root registrations leak on this path.
pub fn rebuild_with_order(
    src: &BddManager,
    f: NodeId,
    order_to: &[u32],
    dst: &mut BddManager,
) -> Result<NodeId, OutOfNodes> {
    // position_of[v] = level of variable v in the new order.
    let mut position_of = vec![0u32; order_to.len()];
    for (lvl, v) in order_to.iter().enumerate() {
        position_of[*v as usize] = lvl as u32;
    }
    let mut memo = crate::hash::FxHashMap::default();
    // Memoized intermediates are held across later allocating calls, so
    // they are protected for the duration of the rebuild (this also arms
    // `dst`'s automatic garbage collection under quota pressure).
    let out = rebuild(src, f, &position_of, dst, &mut memo);
    // Root the result *before* the memo registrations are released: the
    // result is one of the memoized nodes, so unprotecting the memo
    // first would leave it collectable in the gap before the caller
    // could protect it (the caller-owns-one-root handoff above).
    if let Ok(r) = out {
        dst.protect(r);
    }
    for r in memo.values() {
        dst.unprotect(*r);
    }
    out
}

fn rebuild(
    src: &BddManager,
    f: NodeId,
    position_of: &[u32],
    dst: &mut BddManager,
    memo: &mut crate::hash::FxHashMap<NodeId, NodeId>,
) -> Result<NodeId, OutOfNodes> {
    if f.is_terminal() {
        return Ok(f);
    }
    // Rebuilding commutes with complement: memoize regular edges only.
    if f.is_complemented() {
        return Ok(!rebuild(src, !f, position_of, dst, memo)?);
    }
    if let Some(&r) = memo.get(&f) {
        return Ok(r);
    }
    let v = src.node_var(f);
    let lo = rebuild(src, src_lo(src, f), position_of, dst, memo)?;
    let hi = rebuild(src, src_hi(src, f), position_of, dst, memo)?;
    // In the destination, the decision on v happens at its new position;
    // build ITE(var_at_new_pos, hi, lo). ITE keeps the result ordered even
    // when children contain variables now placed above v.
    let nv = dst.var(position_of[v as usize])?;
    let r = dst.ite(nv, hi, lo)?;
    dst.protect(r);
    memo.insert(f, r);
    Ok(r)
}

fn src_lo(src: &BddManager, f: NodeId) -> NodeId {
    src.lo(f)
}

fn src_hi(src: &BddManager, f: NodeId) -> NodeId {
    src.hi(f)
}

/// Searches for a small-size variable order by sliding a window of
/// `window` variables over the order and trying every permutation inside
/// the window (window permutation search). Returns `(order, size)` of
/// the best order found; `order[i]` is the original variable placed at
/// level `i`.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if a rebuild exceeds `quota`.
pub fn best_window_order(
    src: &BddManager,
    f: NodeId,
    nvars: u32,
    window: usize,
    quota: usize,
) -> Result<(Vec<u32>, usize), OutOfNodes> {
    let mut order: Vec<u32> = (0..nvars).collect();
    let mut best_size = {
        let mut m = BddManager::new(quota);
        let g = rebuild_with_order(src, f, &order, &mut m)?;
        m.size(g)
    };
    let window = window.max(2).min(nvars as usize);
    let mut improved = true;
    while improved {
        improved = false;
        // Snapshot the base order for this pass: every candidate is a
        // window permutation of the SAME base. (Adopting an improvement
        // mid-enumeration used to draw later permutations from a mixed
        // base, duplicating some candidates and never trying others.)
        let base = order.clone();
        let mut pass_best: Option<(Vec<u32>, usize)> = None;
        for start in 0..=(nvars as usize - window) {
            let mut perm_indices: Vec<usize> = (0..window).collect();
            // Heap's algorithm over the window slots.
            let mut c = vec![0usize; window];
            let mut i = 0;
            while i < window {
                if c[i] < i {
                    if i % 2 == 0 {
                        perm_indices.swap(0, i);
                    } else {
                        perm_indices.swap(c[i], i);
                    }
                    // Apply this window permutation to a candidate order.
                    let mut cand = base.clone();
                    let slice: Vec<u32> =
                        perm_indices.iter().map(|k| base[start + k]).collect();
                    cand[start..start + window].copy_from_slice(&slice);
                    let mut m = BddManager::new(quota);
                    let g = rebuild_with_order(src, f, &cand, &mut m)?;
                    let size = m.size(g);
                    if size < pass_best.as_ref().map_or(best_size, |(_, s)| *s) {
                        pass_best = Some((cand, size));
                    }
                    c[i] += 1;
                    i = 0;
                } else {
                    c[i] = 0;
                    i += 1;
                }
            }
        }
        // Adopt the pass's best candidate only between passes.
        if let Some((cand, size)) = pass_best {
            order = cand;
            best_size = size;
            improved = true;
        }
    }
    Ok((order, best_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical order-sensitive function:
    /// f = x0·x1 ∨ x2·x3 ∨ x4·x5 is linear in the good (paired) order and
    /// exponential in the interleaved order (x0 x2 x4 x1 x3 x5).
    fn chained_pairs(m: &mut BddManager, pairs: &[(u32, u32)]) -> NodeId {
        let mut f = NodeId::FALSE;
        for (a, b) in pairs {
            let va = m.var(*a).unwrap();
            let vb = m.var(*b).unwrap();
            let t = m.and(va, vb).unwrap();
            f = m.or(f, t).unwrap();
        }
        f
    }

    #[test]
    fn rebuild_preserves_semantics() {
        let mut src = BddManager::new(1 << 16);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let order = vec![0u32, 3, 1, 4, 2, 5];
        let mut dst = BddManager::new(1 << 16);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        // Semantics: dst level i holds variable order[i]; evaluate both on
        // all 64 assignments.
        for asg in 0..64u32 {
            let want = src.eval(f, &|v| asg >> v & 1 == 1);
            let got = dst.eval(g, &|lvl| {
                let v = order[lvl as usize];
                asg >> v & 1 == 1
            });
            assert_eq!(want, got, "assignment {asg:06b}");
        }
    }

    #[test]
    fn good_order_is_smaller_than_bad() {
        // Bad (interleaved) order in the source manager.
        let mut src = BddManager::new(1 << 18);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let bad_size = src.size(f);
        // Paired order: (0,3)(1,4)(2,5) adjacent.
        let order = vec![0u32, 3, 1, 4, 2, 5];
        let mut dst = BddManager::new(1 << 18);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        assert!(
            dst.size(g) < bad_size,
            "paired order {} must beat interleaved {}",
            dst.size(g),
            bad_size
        );
    }

    #[test]
    fn window_search_finds_the_pairing() {
        let mut src = BddManager::new(1 << 18);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let start_size = src.size(f);
        let (order, size) = best_window_order(&src, f, 6, 3, 1 << 18).unwrap();
        assert!(size <= start_size, "search must not regress");
        assert!(size <= 10, "pairs function has a linear-size order, got {size} via {order:?}");
    }

    /// Regression for the mixed-base enumeration bug: with a window
    /// spanning all variables, one pass enumerates every permutation of
    /// the snapshot base, so the search must find the global optimum.
    /// (The old code assigned `order = cand` mid-enumeration, drawing
    /// later candidates from a mixed base — some permutations were
    /// duplicated and others never tried.)
    #[test]
    fn full_window_pass_finds_global_optimum() {
        let mut src = BddManager::new(1 << 18);
        let f = chained_pairs(&mut src, &[(0, 2), (1, 3)]);
        // Brute force: try all 24 orders of 4 variables.
        let mut orders = Vec::new();
        let mut perm = vec![0u32, 1, 2, 3];
        permutations(&mut perm, 0, &mut orders);
        let brute_best = orders
            .iter()
            .map(|o| {
                let mut m = BddManager::new(1 << 18);
                let g = rebuild_with_order(&src, f, o, &mut m).unwrap();
                m.size(g)
            })
            .min()
            .unwrap();
        let (_, size) = best_window_order(&src, f, 4, 4, 1 << 18).unwrap();
        assert_eq!(size, brute_best, "full-window search must match brute force");
    }

    fn permutations(v: &mut Vec<u32>, k: usize, out: &mut Vec<Vec<u32>>) {
        if k == v.len() {
            out.push(v.clone());
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permutations(v, k + 1, out);
            v.swap(k, i);
        }
    }

    /// Regression: `rebuild_with_order` used to unprotect every memoized
    /// node — including the result — before returning, so a collection
    /// right after the call (explicit here; under quota pressure in the
    /// field) freed the rebuilt cone before the caller could root it.
    /// The fix hands the caller one root registration on the result.
    #[test]
    fn result_survives_gc_immediately_after_rebuild() {
        let mut src = BddManager::new(1 << 16);
        let f = chained_pairs(&mut src, &[(0, 3), (1, 4), (2, 5)]);
        let order = vec![0u32, 3, 1, 4, 2, 5];
        let mut dst = BddManager::new(1 << 16);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        let size = dst.size(g);
        assert_eq!(dst.num_roots(), 1, "exactly the handed-off root remains");
        dst.gc();
        assert_eq!(dst.size(g), size, "GC must not reclaim the rooted result");
        for asg in 0..64u32 {
            let want = src.eval(f, &|v| asg >> v & 1 == 1);
            let got = dst.eval(g, &|lvl| asg >> order[lvl as usize] & 1 == 1);
            assert_eq!(want, got, "assignment {asg:06b}");
        }
        // Releasing the handed-off root makes the cone collectable.
        dst.unprotect(g);
        assert!(dst.gc() > 0, "unrooted result is garbage again");
    }

    #[test]
    fn identity_order_roundtrips() {
        let mut src = BddManager::new(1 << 16);
        let f = chained_pairs(&mut src, &[(0, 1), (2, 3)]);
        let order: Vec<u32> = (0..4).collect();
        let mut dst = BddManager::new(1 << 16);
        let g = rebuild_with_order(&src, f, &order, &mut dst).unwrap();
        assert_eq!(src.size(f), dst.size(g));
    }
}
