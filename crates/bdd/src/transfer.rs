//! Cross-manager BDD transfer: serialize one function out of a
//! [`BddManager`] as a compact, manager-independent node list and
//! rebuild it — complement edges, sharing and all — inside another
//! manager.
//!
//! This is the communication primitive for multi-manager schemes: the
//! threaded POBDD engine exchanges per-window frontier sets between
//! worker managers through it, and the same representation doubles as a
//! checkpoint format (a [`ExportedBdd`] owns no manager references and
//! is `Send`).
//!
//! The format is a *level-ordered* list: nodes sorted by variable level,
//! deepest level first. Since a ROBDD parent's level is strictly above
//! its children's, every node's children precede it in the list, so
//! [`import`] is a single forward pass with no fixups. Edges are stored
//! exactly as the manager holds them (complement tag in bit 0, regular
//! then-edges per the canonical form), so a roundtrip preserves the node
//! count, not just the function.

use crate::hash::FxHashMap;
use crate::manager::{BddManager, NodeId, OutOfNodes};

/// A reference inside an [`ExportedBdd`]: bit 0 is the complement tag,
/// the remaining bits select the target — `0` is the shared terminal
/// node, `k > 0` is entry `k - 1` of the node list.
///
/// The encoding deliberately mirrors [`NodeId`] (complement in bit 0,
/// `TRUE`/`FALSE` as the two terminal edges) so translation in both
/// directions is a shift and a tag transplant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SlotRef(u32);

impl SlotRef {
    fn to_slot(slot: usize, complemented: bool) -> SlotRef {
        SlotRef(((slot as u32 + 1) << 1) | complemented as u32)
    }

    fn is_terminal(self) -> bool {
        self.0 < 2
    }

    fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    fn slot(self) -> usize {
        (self.0 >> 1) as usize - 1
    }
}

/// One exported node: variable level plus its two child references
/// (`hi` is always regular, mirroring the manager's canonical form).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ExportedNode {
    var: u32,
    lo: SlotRef,
    hi: SlotRef,
}

/// A manager-independent serialization of one BDD function, produced by
/// [`export`] and consumed by [`import`].
///
/// Owns plain data only (no manager references), so it can cross thread
/// boundaries — this is what the threaded POBDD engine ships between
/// its per-window worker managers, and what the portfolio scheduler's
/// reachability checkpoints are made of. Equality is structural (same
/// node list, same root), which two exports of the same function from
/// identically-evolved managers satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportedBdd {
    /// Level-ordered (deepest variable first): children precede parents.
    nodes: Vec<ExportedNode>,
    root: SlotRef,
}

impl ExportedBdd {
    /// Number of nodes the function will occupy in any manager,
    /// terminal included — the same figure [`BddManager::size`] reports
    /// for the root on either side of a transfer.
    pub fn node_count(&self) -> usize {
        self.nodes.len() + 1
    }

    /// True if the exported function is a constant.
    pub fn is_constant(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Serializes the function `f` of `src` into a manager-independent
/// [`ExportedBdd`].
///
/// Pure read: allocates nothing in `src` and cannot fail. The export
/// enumerates only `f`'s cone (not the whole table) and keeps all
/// sharing: each reachable node appears exactly once, complement tags
/// ride on the edges.
pub fn export(src: &BddManager, f: NodeId) -> ExportedBdd {
    if f.is_terminal() {
        return ExportedBdd {
            nodes: Vec::new(),
            root: SlotRef(f.0), // terminal encodings coincide
        };
    }
    // Collect the reachable node indices (complement tags ignored: f and
    // ¬f share every node).
    let mut indices: Vec<u32> = Vec::new();
    let mut seen: FxHashMap<u32, usize> = FxHashMap::default();
    let mut stack = vec![f.index()];
    while let Some(i) = stack.pop() {
        if seen.contains_key(&i) {
            continue;
        }
        seen.insert(i, usize::MAX); // slot assigned after sorting
        indices.push(i);
        let node = src.node(i);
        if !node.lo.is_terminal() {
            stack.push(node.lo.index());
        }
        if !node.hi.is_terminal() {
            stack.push(node.hi.index());
        }
    }
    // Level order, deepest first; ties broken by source index so the
    // layout is deterministic for a given manager state.
    indices.sort_unstable_by(|a, b| {
        let (va, vb) = (src.node(*a).var, src.node(*b).var);
        vb.cmp(&va).then(a.cmp(b))
    });
    for (slot, i) in indices.iter().enumerate() {
        seen.insert(*i, slot);
    }
    let translate = |edge: NodeId| -> SlotRef {
        if edge.is_terminal() {
            SlotRef(edge.0)
        } else {
            SlotRef::to_slot(seen[&edge.index()], edge.is_complemented())
        }
    };
    let nodes = indices
        .iter()
        .map(|i| {
            let node = src.node(*i);
            ExportedNode { var: node.var, lo: translate(node.lo), hi: translate(node.hi) }
        })
        .collect();
    ExportedBdd { nodes, root: translate(f) }
}

/// Rebuilds an exported function inside `dst`, which may be a different
/// manager in any state (fresh, mid-computation, another thread's) as
/// long as it uses the same variable numbering.
///
/// The import is memoized per list slot — shared subgraphs are built
/// once — and the returned root arrives **rooted**: it carries one
/// [`BddManager::protect`] registration that the caller owns and must
/// eventually release with [`BddManager::unprotect`] (or hand off with
/// [`BddManager::reroot`]). Intermediate nodes are protected only for
/// the duration of the import, so a quota-pressure collection during or
/// after the call cannot reclaim the result or its cone but leaves no
/// stray registrations behind.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if `dst`'s quota is exhausted even after
/// garbage collection; no root registrations leak on this path.
pub fn import(exported: &ExportedBdd, dst: &mut BddManager) -> Result<NodeId, OutOfNodes> {
    let resolve = |memo: &[NodeId], r: SlotRef| -> NodeId {
        if r.is_terminal() {
            NodeId(r.0)
        } else {
            let base = memo[r.slot()];
            if r.is_complemented() {
                !base
            } else {
                base
            }
        }
    };
    // Every imported node is protected until the end of the import so a
    // collection triggered by a later `mk` cannot reclaim the partially
    // rebuilt cone (and the first protect arms automatic GC in `dst`).
    let mut memo: Vec<NodeId> = Vec::with_capacity(exported.nodes.len());
    let mut failed: Option<OutOfNodes> = None;
    for n in &exported.nodes {
        let lo = resolve(&memo, n.lo);
        let hi = resolve(&memo, n.hi);
        match dst.run_with_gc(&[lo, hi], |m| m.mk(n.var, lo, hi)) {
            Ok(r) => {
                dst.protect(r);
                memo.push(r);
            }
            Err(e) => {
                failed = Some(e);
                break;
            }
        }
    }
    // Root the result before the memo registrations are released — the
    // same protect-across-release handoff `rebuild_with_order` uses.
    let out = match failed {
        None => {
            let root = resolve(&memo, exported.root);
            dst.protect(root);
            Ok(root)
        }
        Some(e) => Err(e),
    };
    for r in &memo {
        dst.unprotect(*r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(nvars: u32) -> impl Iterator<Item = u32> {
        0..(1u32 << nvars)
    }

    /// xor chain over the given vars — linear with complement edges and
    /// heavy on complemented lo-edges, the interesting transfer case.
    fn xor_chain(m: &mut BddManager, vars: &[u32]) -> NodeId {
        let mut f = NodeId::FALSE;
        for &v in vars {
            let x = m.var(v).unwrap();
            f = m.xor(f, x).unwrap();
        }
        f
    }

    #[test]
    fn terminals_roundtrip() {
        let src = BddManager::new(16);
        let mut dst = BddManager::new(16);
        for c in [NodeId::TRUE, NodeId::FALSE] {
            let e = export(&src, c);
            assert!(e.is_constant());
            assert_eq!(e.node_count(), 1);
            assert_eq!(import(&e, &mut dst).unwrap(), c);
        }
        assert_eq!(dst.num_nodes(), 1, "constants allocate nothing");
    }

    #[test]
    fn roundtrip_preserves_structure_and_semantics() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3]);
        let e = export(&src, f);
        assert_eq!(e.node_count(), src.size(f));
        let mut dst = BddManager::new(1 << 16);
        let g = import(&e, &mut dst).unwrap();
        assert_eq!(dst.size(g), src.size(f), "sharing survives the transfer");
        for asg in assignments(4) {
            assert_eq!(
                dst.eval(g, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1),
                "assignment {asg:04b}"
            );
        }
    }

    #[test]
    fn complemented_root_roundtrips() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1]);
        let e = export(&src, !f);
        let mut dst = BddManager::new(1 << 16);
        let g = import(&e, &mut dst).unwrap();
        for asg in assignments(2) {
            assert_eq!(
                dst.eval(g, &|v| asg >> v & 1 == 1),
                src.eval(!f, &|v| asg >> v & 1 == 1)
            );
        }
    }

    #[test]
    fn import_into_populated_manager_reuses_shared_nodes() {
        let mut src = BddManager::new(1 << 16);
        let a = src.var(0).unwrap();
        let b = src.var(1).unwrap();
        let f = src.and(a, b).unwrap();
        // dst already holds the same function (plus unrelated junk).
        let mut dst = BddManager::new(1 << 16);
        let da = dst.var(0).unwrap();
        let db = dst.var(1).unwrap();
        let existing = dst.and(da, db).unwrap();
        let _junk = dst.xor(da, db).unwrap();
        let nodes_before = dst.num_nodes();
        let g = import(&export(&src, f), &mut dst).unwrap();
        assert_eq!(g, existing, "hash-consing unifies the imported cone");
        assert_eq!(dst.num_nodes(), nodes_before, "no duplicate nodes");
        dst.unprotect(g);
    }

    #[test]
    fn import_roots_the_result_on_arrival() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2]);
        let e = export(&src, f);
        let mut dst = BddManager::new(1 << 16);
        let roots_before = dst.num_roots();
        let g = import(&e, &mut dst).unwrap();
        assert_eq!(
            dst.num_roots(),
            roots_before + 1,
            "exactly the result registration remains"
        );
        // An immediate sweep must not touch the imported cone.
        let size = dst.size(g);
        dst.gc();
        assert_eq!(dst.size(g), size);
        for asg in assignments(3) {
            assert_eq!(
                dst.eval(g, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1)
            );
        }
        dst.unprotect(g);
    }

    #[test]
    fn quota_failure_leaks_no_roots() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3, 4, 5]);
        let e = export(&src, f);
        // Too small for the 7-node chain (terminal + 6 levels).
        let mut dst = BddManager::new(4);
        assert!(import(&e, &mut dst).is_err());
        assert_eq!(dst.num_roots(), 0, "failed import must unwind its roots");
    }
}
