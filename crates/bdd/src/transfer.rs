//! Cross-manager BDD transfer: serialize one function out of a
//! [`BddManager`] as a compact, manager-independent node list and
//! rebuild it — complement edges, sharing and all — inside another
//! manager.
//!
//! This is the communication primitive for multi-manager schemes: the
//! threaded POBDD engine exchanges per-window frontier sets between
//! worker managers through it, and the same representation doubles as a
//! checkpoint format (a [`ExportedBdd`] owns no manager references and
//! is `Send`).
//!
//! The format is a *level-ordered* list: nodes sorted by the source
//! manager's **current** variable level (dynamic reordering can move
//! vars, so level ≠ var id), deepest level first. Since a ROBDD parent's
//! level is strictly above its children's, every node's children precede
//! it in the list, so [`import`] is a single forward pass with no
//! fixups. Edges are stored exactly as the manager holds them
//! (complement tag in bit 0, regular then-edges per the canonical form),
//! so a same-order roundtrip preserves the node count, not just the
//! function.
//!
//! Every export also carries the source order
//! ([`ExportedBdd::source_order`]): a fresh importing manager can adopt
//! it up front ([`BddManager::adopt_order`]) to rebuild the cone at its
//! exported size. When the destination's order has diverged (each side
//! sifts independently), [`import`] stays correct anyway: each node is
//! rebuilt with the fast `mk` path only while the destination agrees the
//! parent sits above its children, and falls back to a full ITE rebuild
//! for the nodes where the orders disagree.

use crate::hash::FxHashMap;
use crate::manager::{BddManager, NodeId, OutOfNodes};
use std::fmt;

/// A reference inside an [`ExportedBdd`]: bit 0 is the complement tag,
/// the remaining bits select the target — `0` is the shared terminal
/// node, `k > 0` is entry `k - 1` of the node list.
///
/// The encoding deliberately mirrors [`NodeId`] (complement in bit 0,
/// `TRUE`/`FALSE` as the two terminal edges) so translation in both
/// directions is a shift and a tag transplant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SlotRef(u32);

impl SlotRef {
    fn to_slot(slot: usize, complemented: bool) -> SlotRef {
        SlotRef(((slot as u32 + 1) << 1) | complemented as u32)
    }

    fn is_terminal(self) -> bool {
        self.0 < 2
    }

    fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    fn slot(self) -> usize {
        (self.0 >> 1) as usize - 1
    }
}

/// One exported node: variable level plus its two child references
/// (`hi` is always regular, mirroring the manager's canonical form).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ExportedNode {
    var: u32,
    lo: SlotRef,
    hi: SlotRef,
}

/// A manager-independent serialization of one BDD function, produced by
/// [`export`] and consumed by [`import`].
///
/// Owns plain data only (no manager references), so it can cross thread
/// boundaries — this is what the threaded POBDD engine ships between
/// its per-window worker managers, and what the portfolio scheduler's
/// reachability checkpoints are made of. Equality is structural (same
/// node list, same root), which two exports of the same function from
/// identically-evolved managers satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportedBdd {
    /// Level-ordered (deepest variable first): children precede parents.
    nodes: Vec<ExportedNode>,
    root: SlotRef,
    /// The source manager's variable order at export time
    /// (`level2var`: entry `l` is the variable sitting at level `l`).
    order: Vec<u32>,
}

impl ExportedBdd {
    /// Number of nodes the function will occupy in any manager,
    /// terminal included — the same figure [`BddManager::size`] reports
    /// for the root on either side of a transfer.
    pub fn node_count(&self) -> usize {
        self.nodes.len() + 1
    }

    /// True if the exported function is a constant.
    pub fn is_constant(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The source manager's variable order at export time, root level
    /// first. A fresh receiving manager can
    /// [`BddManager::adopt_order`] this before [`import`] to rebuild
    /// the cone at exactly its exported size; a receiver with live
    /// state can compare it against its own
    /// [`BddManager::current_order`] to predict whether the import is
    /// a pure `mk` replay or has to pay ITE rebuilds.
    pub fn source_order(&self) -> &[u32] {
        &self.order
    }

    /// The node list as raw `(var, lo, hi)` triples, children first.
    /// `lo`/`hi` are the wire encoding of the internal references (bit 0
    /// is the complement tag, `0`/`1` the terminal edges, `k > 0` entry
    /// `k - 1` of this list) — the representation an external serializer
    /// ships and feeds back through [`ExportedBdd::from_raw_parts`].
    pub fn raw_nodes(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.nodes.iter().map(|n| (n.var, n.lo.0, n.hi.0))
    }

    /// The root reference in the same raw encoding as
    /// [`ExportedBdd::raw_nodes`] children.
    pub fn raw_root(&self) -> u32 {
        self.root.0
    }

    /// Rebuilds an export from raw parts (the inverse of
    /// [`ExportedBdd::raw_nodes`] + [`ExportedBdd::raw_root`] +
    /// [`ExportedBdd::source_order`]), validating the structural
    /// invariant [`import`] relies on: every reference is a terminal or
    /// targets an *earlier* list slot, so a single forward pass can
    /// never index out of bounds. Checked here — not trusted — because
    /// the raw parts typically arrive from disk.
    ///
    /// # Errors
    ///
    /// Returns a [`TransferFormatError`] naming the offending reference
    /// when the topology is malformed; a deserializer surfaces it as a
    /// corrupt-file error instead of panicking mid-import.
    pub fn from_raw_parts(
        nodes: Vec<(u32, u32, u32)>,
        root: u32,
        order: Vec<u32>,
    ) -> Result<ExportedBdd, TransferFormatError> {
        for (k, (_, lo, hi)) in nodes.iter().enumerate() {
            check_ref(*lo, k, Some(k))?;
            check_ref(*hi, k, Some(k))?;
        }
        check_ref(root, nodes.len(), None)?;
        let nodes = nodes
            .into_iter()
            .map(|(var, lo, hi)| ExportedNode { var, lo: SlotRef(lo), hi: SlotRef(hi) })
            .collect();
        Ok(ExportedBdd { nodes, root: SlotRef(root), order })
    }
}

/// A structural defect in raw transfer parts fed to
/// [`ExportedBdd::from_raw_parts`] or [`DeltaBdd::from_raw_parts`]:
/// a reference that escapes the slot space it is allowed to address.
/// Deserializers turn this into a typed corrupt-file error rather than
/// letting a malformed node list panic inside [`import`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferFormatError {
    /// The root reference targets a slot outside the node list.
    BadRootRef {
        /// The offending raw reference.
        reference: u32,
        /// Number of addressable slots.
        slots: usize,
    },
    /// A child reference of node `node` targets a slot at or beyond its
    /// own position (references must point strictly backwards) or
    /// outside the combined slot space.
    BadChildRef {
        /// List position of the node holding the bad reference.
        node: usize,
        /// The offending raw reference.
        reference: u32,
        /// Number of slots that reference was allowed to address.
        slots: usize,
    },
}

impl fmt::Display for TransferFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferFormatError::BadRootRef { reference, slots } => {
                write!(f, "root reference {reference:#x} escapes {slots} slot(s)")
            }
            TransferFormatError::BadChildRef { node, reference, slots } => {
                write!(f, "node {node}: child reference {reference:#x} escapes {slots} slot(s)")
            }
        }
    }
}

impl std::error::Error for TransferFormatError {}

/// Validates one raw reference against the number of slots it may
/// address (`limit`); `node` is `Some` for a child edge, `None` for the
/// root.
fn check_ref(r: u32, limit: usize, node: Option<usize>) -> Result<(), TransferFormatError> {
    let ok = r < 2 || ((r >> 1) as usize - 1) < limit;
    if ok {
        return Ok(());
    }
    Err(match node {
        Some(node) => TransferFormatError::BadChildRef { node, reference: r, slots: limit },
        None => TransferFormatError::BadRootRef { reference: r, slots: limit },
    })
}

/// Serializes the function `f` of `src` into a manager-independent
/// [`ExportedBdd`].
///
/// Pure read: allocates nothing in `src` and cannot fail. The export
/// enumerates only `f`'s cone (not the whole table) and keeps all
/// sharing: each reachable node appears exactly once, complement tags
/// ride on the edges.
pub fn export(src: &BddManager, f: NodeId) -> ExportedBdd {
    if f.is_terminal() {
        return ExportedBdd {
            nodes: Vec::new(),
            root: SlotRef(f.0), // terminal encodings coincide
            order: src.current_order(),
        };
    }
    // Collect the reachable node indices (complement tags ignored: f and
    // ¬f share every node).
    let mut indices: Vec<u32> = Vec::new();
    let mut seen: FxHashMap<u32, usize> = FxHashMap::default();
    let mut stack = vec![f.index()];
    while let Some(i) = stack.pop() {
        if seen.contains_key(&i) {
            continue;
        }
        seen.insert(i, usize::MAX); // slot assigned after sorting
        indices.push(i);
        let node = src.node(i);
        if !node.lo.is_terminal() {
            stack.push(node.lo.index());
        }
        if !node.hi.is_terminal() {
            stack.push(node.hi.index());
        }
    }
    // Level order (the source's *current* level, not the var id — they
    // diverge once dynamic reordering has run), deepest first; ties
    // broken by source index so the layout is deterministic for a given
    // manager state.
    indices.sort_unstable_by(|a, b| {
        let (la, lb) = (src.level_of(src.node(*a).var), src.level_of(src.node(*b).var));
        lb.cmp(&la).then(a.cmp(b))
    });
    for (slot, i) in indices.iter().enumerate() {
        seen.insert(*i, slot);
    }
    let translate = |edge: NodeId| -> SlotRef {
        if edge.is_terminal() {
            SlotRef(edge.0)
        } else {
            SlotRef::to_slot(seen[&edge.index()], edge.is_complemented())
        }
    };
    let nodes = indices
        .iter()
        .map(|i| {
            let node = src.node(*i);
            ExportedNode { var: node.var, lo: translate(node.lo), hi: translate(node.hi) }
        })
        .collect();
    ExportedBdd { nodes, root: translate(f), order: src.current_order() }
}

/// Rebuilds one exported node inside `dst` from already-resolved
/// children. Fast path: when `dst`'s current order agrees that the
/// node's variable sits above both children, the stored shape replays
/// with a single `mk`; the level check runs inside the same
/// `run_with_gc` frame as the `mk`, so an auto-reorder firing at the
/// operation entry point cannot stale it. When the orders disagree
/// (the destination has sifted away from the export's order), the node
/// is re-expressed as `ite(var, hi, lo)`, which re-normalizes that
/// piece of the cone to `dst`'s order. The caller keeps `lo`/`hi`
/// protected, so the intermediate variable node needs no registration
/// of its own.
fn build_node(
    dst: &mut BddManager,
    n: ExportedNode,
    lo: NodeId,
    hi: NodeId,
) -> Result<NodeId, OutOfNodes> {
    let fast = dst.run_with_gc(&[lo, hi], |m| {
        let vl = m.level_of(n.var);
        let above = |e: NodeId| e.is_terminal() || vl < m.level_of(m.var_of(e));
        if above(lo) && above(hi) {
            m.mk(n.var, lo, hi).map(Some)
        } else {
            Ok(None)
        }
    })?;
    match fast {
        Some(r) => Ok(r),
        None => {
            let v = dst.var(n.var)?;
            dst.ite(v, hi, lo)
        }
    }
}

/// Rebuilds an exported function inside `dst`, which may be a different
/// manager in any state (fresh, mid-computation, another thread's) as
/// long as it uses the same variable numbering. The two managers'
/// variable *orders* need not agree: nodes whose placement `dst`
/// disputes are rebuilt through ITE (see [`ExportedBdd::source_order`]
/// for how a fresh receiver can avoid even that).
///
/// The import is memoized per list slot — shared subgraphs are built
/// once — and the returned root arrives **rooted**: it carries one
/// [`BddManager::protect`] registration that the caller owns and must
/// eventually release with [`BddManager::unprotect`] (or hand off with
/// [`BddManager::reroot`]). Intermediate nodes are protected only for
/// the duration of the import, so a quota-pressure collection during or
/// after the call cannot reclaim the result or its cone but leaves no
/// stray registrations behind.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if `dst`'s quota is exhausted even after
/// garbage collection; no root registrations leak on this path.
pub fn import(exported: &ExportedBdd, dst: &mut BddManager) -> Result<NodeId, OutOfNodes> {
    let resolve = |memo: &[NodeId], r: SlotRef| -> NodeId {
        if r.is_terminal() {
            NodeId(r.0)
        } else {
            let base = memo[r.slot()];
            if r.is_complemented() {
                !base
            } else {
                base
            }
        }
    };
    // Every imported node is protected until the end of the import so a
    // collection triggered by a later `mk` cannot reclaim the partially
    // rebuilt cone (and the first protect arms automatic GC in `dst`).
    let mut memo: Vec<NodeId> = Vec::with_capacity(exported.nodes.len());
    let mut failed: Option<OutOfNodes> = None;
    for n in &exported.nodes {
        let lo = resolve(&memo, n.lo);
        let hi = resolve(&memo, n.hi);
        match build_node(dst, *n, lo, hi) {
            Ok(r) => {
                dst.protect(r);
                memo.push(r);
            }
            Err(e) => {
                failed = Some(e);
                break;
            }
        }
    }
    // Root the result before the memo registrations are released — the
    // same protect-across-release handoff `rebuild_with_order` uses.
    let out = match failed {
        None => {
            let root = resolve(&memo, exported.root);
            dst.protect(root);
            Ok(root)
        }
        Some(e) => Err(e),
    };
    for r in &memo {
        dst.unprotect(*r);
    }
    out
}

/// A delta-encoded serialization of one BDD function against a
/// previously-exported baseline: only the nodes *not* already present
/// in the baseline's cone are shipped; everything shared is referenced
/// by baseline slot. Produced by [`export_delta`], consumed by
/// [`import_delta`] (which needs the same baseline on the receiving
/// side).
///
/// Child references select a **combined slot space**: slots `0 ..
/// baseline_len` are the baseline's node list, slots from
/// `baseline_len` up are this delta's own nodes. Like [`ExportedBdd`]
/// it owns plain data only and is `Send`; equality is structural.
///
/// This is the per-round traffic format of the multi-manager engines:
/// successive frontiers overlap heavily (the new frontier is built
/// from the old one's image), so shipping only the fresh cone cuts
/// cross-manager traffic, and [`DeltaBdd::rebase`] lets both sides
/// derive the next round's baseline from data they already share
/// without a second transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaBdd {
    /// Length of the baseline node list this delta's references assume.
    baseline_len: usize,
    /// The new nodes only; children precede parents, and child refs may
    /// point into the baseline section of the combined slot space.
    nodes: Vec<ExportedNode>,
    root: SlotRef,
    /// The source manager's variable order when the delta was taken
    /// (same convention as [`ExportedBdd::source_order`]).
    order: Vec<u32>,
}

impl DeltaBdd {
    /// The source manager's variable order when the delta was taken,
    /// root level first. If the source has sifted since the baseline
    /// was exported this differs from the baseline's order — the
    /// receiver can still import (per-node order checks handle it) but
    /// may want to resynchronize its own order at a round boundary.
    pub fn source_order(&self) -> &[u32] {
        &self.order
    }

    /// Number of nodes actually shipped (the baseline-overlap savings:
    /// a full [`export`] of the same function ships its whole cone).
    pub fn delta_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Length of the baseline node list this delta was encoded against;
    /// [`import_delta`] and [`DeltaBdd::rebase`] require a baseline of
    /// exactly this length.
    pub fn baseline_len(&self) -> usize {
        self.baseline_len
    }

    /// The shipped node list as raw `(var, lo, hi)` triples — same wire
    /// encoding as [`ExportedBdd::raw_nodes`], except references select
    /// the *combined* slot space (baseline slots first, then this
    /// list). Inverse: [`DeltaBdd::from_raw_parts`].
    pub fn raw_nodes(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.nodes.iter().map(|n| (n.var, n.lo.0, n.hi.0))
    }

    /// The root reference in the combined-slot-space raw encoding.
    pub fn raw_root(&self) -> u32 {
        self.root.0
    }

    /// Rebuilds a delta from raw parts, validating that every reference
    /// stays inside the combined slot space and that delta-section
    /// references point strictly backwards — the invariant
    /// [`import_delta`] and [`DeltaBdd::rebase`] index by without
    /// further checks.
    ///
    /// # Errors
    ///
    /// Returns a [`TransferFormatError`] naming the offending reference
    /// when the topology is malformed.
    pub fn from_raw_parts(
        baseline_len: usize,
        nodes: Vec<(u32, u32, u32)>,
        root: u32,
        order: Vec<u32>,
    ) -> Result<DeltaBdd, TransferFormatError> {
        for (k, (_, lo, hi)) in nodes.iter().enumerate() {
            check_ref(*lo, baseline_len + k, Some(k))?;
            check_ref(*hi, baseline_len + k, Some(k))?;
        }
        check_ref(root, baseline_len + nodes.len(), None)?;
        let nodes = nodes
            .into_iter()
            .map(|(var, lo, hi)| ExportedNode { var, lo: SlotRef(lo), hi: SlotRef(hi) })
            .collect();
        Ok(DeltaBdd { baseline_len, nodes, root: SlotRef(root), order })
    }

    /// Splices the delta onto its baseline and compacts the result to
    /// the root's cone, yielding a standalone [`ExportedBdd`] of the
    /// delta-encoded function. Pure data transformation — no manager is
    /// involved — and deterministic, so a sender and a receiver that
    /// share `(baseline, delta)` derive byte-identical rebased exports;
    /// that is how the chained-baseline scheme agrees on the next
    /// round's baseline without shipping it. The compaction keeps the
    /// combined slot order (children still precede parents, though the
    /// list is no longer globally level-sorted like a fresh [`export`])
    /// and drops unreachable baseline nodes, so the node count equals
    /// the function's true cone size.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not of the length the delta was encoded
    /// against.
    pub fn rebase(&self, baseline: &ExportedBdd) -> ExportedBdd {
        assert_eq!(
            baseline.nodes.len(),
            self.baseline_len,
            "rebase against a baseline of the wrong shape"
        );
        let total = self.baseline_len + self.nodes.len();
        let node_at = |k: usize| -> &ExportedNode {
            if k < self.baseline_len {
                &baseline.nodes[k]
            } else {
                &self.nodes[k - self.baseline_len]
            }
        };
        let mut reachable = vec![false; total];
        let mut stack = Vec::new();
        if !self.root.is_terminal() {
            stack.push(self.root.slot());
        }
        while let Some(k) = stack.pop() {
            if reachable[k] {
                continue;
            }
            reachable[k] = true;
            let n = node_at(k);
            for r in [n.lo, n.hi] {
                if !r.is_terminal() {
                    stack.push(r.slot());
                }
            }
        }
        // Children precede parents in the combined order (baseline refs
        // stay inside the baseline; delta refs point backwards), so one
        // ascending pass can renumber edges as it goes.
        let mut new_slot = vec![usize::MAX; total];
        let mut nodes = Vec::new();
        for k in 0..total {
            if !reachable[k] {
                continue;
            }
            let n = node_at(k);
            let tr = |r: SlotRef| -> SlotRef {
                if r.is_terminal() {
                    r
                } else {
                    SlotRef::to_slot(new_slot[r.slot()], r.is_complemented())
                }
            };
            let moved = ExportedNode { var: n.var, lo: tr(n.lo), hi: tr(n.hi) };
            new_slot[k] = nodes.len();
            nodes.push(moved);
        }
        let root = if self.root.is_terminal() {
            self.root
        } else {
            SlotRef::to_slot(new_slot[self.root.slot()], self.root.is_complemented())
        };
        // The delta's order is the freshest view of the source manager,
        // so the rebased baseline carries it forward; both sides rebase
        // from the same delta, so they still agree structurally.
        ExportedBdd { nodes, root, order: self.order.clone() }
    }
}

/// Serializes `f` as a delta against a previously-exported baseline
/// cone: nodes of `f`'s cone that the baseline already carries are
/// referenced by baseline slot instead of being shipped again.
///
/// Pure read, like [`export`]: allocates nothing in `src` and cannot
/// fail. Baseline recognition is by structure — each baseline slot is
/// resolved bottom-up against `src`'s unique table, and slots whose
/// nodes no longer exist in `src` (or whose children don't) simply
/// fail to match, degrading gracefully toward a full export (an empty
/// or unrelated baseline yields a delta shipping the entire cone, and
/// `export_delta(src, f, &export(src, f))` ships zero nodes).
pub fn export_delta(src: &BddManager, f: NodeId, baseline: &ExportedBdd) -> DeltaBdd {
    let b = baseline.nodes.len();
    if f.is_terminal() {
        return DeltaBdd {
            baseline_len: b,
            nodes: Vec::new(),
            root: SlotRef(f.0),
            order: src.current_order(),
        };
    }
    // Forward pass: resolve baseline slots to src node ids where the
    // structure still exists (children precede parents, so each slot
    // only needs its children's resolutions).
    let mut resolved: Vec<Option<NodeId>> = Vec::with_capacity(b);
    let mut slot_of_index: FxHashMap<u32, usize> = FxHashMap::default();
    for (k, n) in baseline.nodes.iter().enumerate() {
        let child = |r: SlotRef| -> Option<NodeId> {
            if r.is_terminal() {
                Some(NodeId(r.0))
            } else {
                resolved[r.slot()].map(|id| if r.is_complemented() { !id } else { id })
            }
        };
        let id = match (child(n.lo), child(n.hi)) {
            (Some(lo), Some(hi)) => src.lookup(n.var, lo, hi),
            _ => None,
        };
        if let Some(id) = id {
            slot_of_index.insert(id.index(), k);
        }
        resolved.push(id);
    }
    // DFS of f's cone, stopping at baseline-matched nodes: only the
    // fresh remainder is collected.
    let mut indices: Vec<u32> = Vec::new();
    let mut seen: FxHashMap<u32, usize> = FxHashMap::default();
    if !slot_of_index.contains_key(&f.index()) {
        let mut stack = vec![f.index()];
        while let Some(i) = stack.pop() {
            if seen.contains_key(&i) || slot_of_index.contains_key(&i) {
                continue;
            }
            seen.insert(i, usize::MAX);
            indices.push(i);
            let node = src.node(i);
            if !node.lo.is_terminal() {
                stack.push(node.lo.index());
            }
            if !node.hi.is_terminal() {
                stack.push(node.hi.index());
            }
        }
    }
    // Same deterministic layout rule as `export` for the shipped part:
    // current source level, deepest first.
    indices.sort_unstable_by(|a, b| {
        let (la, lb) = (src.level_of(src.node(*a).var), src.level_of(src.node(*b).var));
        lb.cmp(&la).then(a.cmp(b))
    });
    for (slot, i) in indices.iter().enumerate() {
        seen.insert(*i, slot);
    }
    let translate = |edge: NodeId| -> SlotRef {
        if edge.is_terminal() {
            SlotRef(edge.0)
        } else if let Some(&k) = slot_of_index.get(&edge.index()) {
            SlotRef::to_slot(k, edge.is_complemented())
        } else {
            SlotRef::to_slot(b + seen[&edge.index()], edge.is_complemented())
        }
    };
    let nodes = indices
        .iter()
        .map(|i| {
            let node = src.node(*i);
            ExportedNode { var: node.var, lo: translate(node.lo), hi: translate(node.hi) }
        })
        .collect();
    DeltaBdd { baseline_len: b, nodes, root: translate(f), order: src.current_order() }
}

/// Rebuilds a delta-encoded function inside `dst`, given the same
/// baseline the delta was encoded against. Only the baseline nodes the
/// delta actually references (transitively) are materialized — on the
/// common path those already exist in `dst` from a previous import and
/// hash-cons to the existing nodes.
///
/// Same contract as [`import`]: memoized per slot, and the returned
/// root arrives **rooted** (one [`BddManager::protect`] registration
/// the caller owns); intermediates are protected only for the duration
/// of the call.
///
/// # Errors
///
/// Returns [`OutOfNodes`] if `dst`'s quota is exhausted even after
/// garbage collection; no root registrations leak on this path.
///
/// # Panics
///
/// Panics if `baseline` is not of the length the delta was encoded
/// against.
pub fn import_delta(
    delta: &DeltaBdd,
    baseline: &ExportedBdd,
    dst: &mut BddManager,
) -> Result<NodeId, OutOfNodes> {
    assert_eq!(
        baseline.nodes.len(),
        delta.baseline_len,
        "import_delta against a baseline of the wrong shape"
    );
    let b = delta.baseline_len;
    // Mark the baseline slots the delta needs, transitively. Reverse
    // order makes one pass sufficient: a baseline parent is marked
    // before its (earlier-slot) children are visited.
    let mut needed = vec![false; b];
    let mark = |needed: &mut Vec<bool>, r: SlotRef| {
        if !r.is_terminal() && r.slot() < b {
            needed[r.slot()] = true;
        }
    };
    mark(&mut needed, delta.root);
    for n in &delta.nodes {
        mark(&mut needed, n.lo);
        mark(&mut needed, n.hi);
    }
    for k in (0..b).rev() {
        if needed[k] {
            let n = baseline.nodes[k];
            mark(&mut needed, n.lo);
            mark(&mut needed, n.hi);
        }
    }
    let resolve = |memo: &[Option<NodeId>], r: SlotRef| -> NodeId {
        if r.is_terminal() {
            NodeId(r.0)
        } else {
            let base = memo[r.slot()].expect("children precede parents"); // lint: allow
            if r.is_complemented() {
                !base
            } else {
                base
            }
        }
    };
    let mut memo: Vec<Option<NodeId>> = vec![None; b + delta.nodes.len()];
    let mut built: Vec<NodeId> = Vec::new();
    let mut failed: Option<OutOfNodes> = None;
    for k in 0..b + delta.nodes.len() {
        let n = if k < b {
            if !needed[k] {
                continue;
            }
            baseline.nodes[k]
        } else {
            delta.nodes[k - b]
        };
        let lo = resolve(&memo, n.lo);
        let hi = resolve(&memo, n.hi);
        match build_node(dst, n, lo, hi) {
            Ok(r) => {
                dst.protect(r);
                built.push(r);
                memo[k] = Some(r);
            }
            Err(e) => {
                failed = Some(e);
                break;
            }
        }
    }
    let out = match failed {
        None => {
            let root = resolve(&memo, delta.root);
            dst.protect(root);
            Ok(root)
        }
        Some(e) => Err(e),
    };
    for r in &built {
        dst.unprotect(*r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(nvars: u32) -> impl Iterator<Item = u32> {
        0..(1u32 << nvars)
    }

    /// xor chain over the given vars — linear with complement edges and
    /// heavy on complemented lo-edges, the interesting transfer case.
    fn xor_chain(m: &mut BddManager, vars: &[u32]) -> NodeId {
        let mut f = NodeId::FALSE;
        for &v in vars {
            let x = m.var(v).unwrap();
            f = m.xor(f, x).unwrap();
        }
        f
    }

    #[test]
    fn terminals_roundtrip() {
        let src = BddManager::new(16);
        let mut dst = BddManager::new(16);
        for c in [NodeId::TRUE, NodeId::FALSE] {
            let e = export(&src, c);
            assert!(e.is_constant());
            assert_eq!(e.node_count(), 1);
            assert_eq!(import(&e, &mut dst).unwrap(), c);
        }
        assert_eq!(dst.num_nodes(), 1, "constants allocate nothing");
    }

    #[test]
    fn roundtrip_preserves_structure_and_semantics() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3]);
        let e = export(&src, f);
        assert_eq!(e.node_count(), src.size(f));
        let mut dst = BddManager::new(1 << 16);
        let g = import(&e, &mut dst).unwrap();
        assert_eq!(dst.size(g), src.size(f), "sharing survives the transfer");
        for asg in assignments(4) {
            assert_eq!(
                dst.eval(g, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1),
                "assignment {asg:04b}"
            );
        }
    }

    #[test]
    fn complemented_root_roundtrips() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1]);
        let e = export(&src, !f);
        let mut dst = BddManager::new(1 << 16);
        let g = import(&e, &mut dst).unwrap();
        for asg in assignments(2) {
            assert_eq!(
                dst.eval(g, &|v| asg >> v & 1 == 1),
                src.eval(!f, &|v| asg >> v & 1 == 1)
            );
        }
    }

    #[test]
    fn import_into_populated_manager_reuses_shared_nodes() {
        let mut src = BddManager::new(1 << 16);
        let a = src.var(0).unwrap();
        let b = src.var(1).unwrap();
        let f = src.and(a, b).unwrap();
        // dst already holds the same function (plus unrelated junk).
        let mut dst = BddManager::new(1 << 16);
        let da = dst.var(0).unwrap();
        let db = dst.var(1).unwrap();
        let existing = dst.and(da, db).unwrap();
        let _junk = dst.xor(da, db).unwrap();
        let nodes_before = dst.num_nodes();
        let g = import(&export(&src, f), &mut dst).unwrap();
        assert_eq!(g, existing, "hash-consing unifies the imported cone");
        assert_eq!(dst.num_nodes(), nodes_before, "no duplicate nodes");
        dst.unprotect(g);
    }

    #[test]
    fn import_roots_the_result_on_arrival() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2]);
        let e = export(&src, f);
        let mut dst = BddManager::new(1 << 16);
        let roots_before = dst.num_roots();
        let g = import(&e, &mut dst).unwrap();
        assert_eq!(
            dst.num_roots(),
            roots_before + 1,
            "exactly the result registration remains"
        );
        // An immediate sweep must not touch the imported cone.
        let size = dst.size(g);
        dst.gc();
        assert_eq!(dst.size(g), size);
        for asg in assignments(3) {
            assert_eq!(
                dst.eval(g, &|v| asg >> v & 1 == 1),
                src.eval(f, &|v| asg >> v & 1 == 1)
            );
        }
        dst.unprotect(g);
    }

    #[test]
    fn quota_failure_leaks_no_roots() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3, 4, 5]);
        let e = export(&src, f);
        // Too small for the 7-node chain (terminal + 6 levels).
        let mut dst = BddManager::new(4);
        assert!(import(&e, &mut dst).is_err());
        assert_eq!(dst.num_roots(), 0, "failed import must unwind its roots");
    }

    /// Checks that importing `delta` against `baseline` into a fresh
    /// manager yields the same node count and truth table as importing
    /// the full export `full`.
    fn assert_delta_matches_full(
        delta: &DeltaBdd,
        baseline: &ExportedBdd,
        full: &ExportedBdd,
        nvars: u32,
    ) {
        let mut dst = BddManager::new(1 << 16);
        let via_full = import(full, &mut dst).unwrap();
        let via_delta = import_delta(delta, baseline, &mut dst).unwrap();
        assert_eq!(via_delta, via_full, "hash-consing must unify the two routes");
        let rebased = delta.rebase(baseline);
        assert_eq!(rebased.node_count(), full.node_count(), "compaction keeps the exact cone");
        let via_rebased = import(&rebased, &mut dst).unwrap();
        assert_eq!(via_rebased, via_full);
        for asg in assignments(nvars) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(dst.eval(via_delta, &assign), dst.eval(via_full, &assign));
        }
        dst.unprotect(via_full);
        dst.unprotect(via_delta);
        dst.unprotect(via_rebased);
    }

    #[test]
    fn delta_against_own_export_ships_nothing() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3]);
        let baseline = export(&src, f);
        let delta = export_delta(&src, f, &baseline);
        assert_eq!(delta.delta_node_count(), 0, "identical cone: empty delta");
        assert_delta_matches_full(&delta, &baseline, &baseline, 4);
    }

    #[test]
    fn delta_ships_only_the_fresh_cone() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[1, 2, 3]);
        src.protect(f);
        let baseline = export(&src, f);
        // Grow the function: the old cone stays shared under the new top var.
        let a = src.var(0).unwrap();
        let g = src.or(f, a).unwrap();
        src.protect(g);
        let full = export(&src, g);
        let delta = export_delta(&src, g, &baseline);
        assert!(
            delta.delta_node_count() < full.node_count() - 1,
            "delta ({}) must beat the full cone ({})",
            delta.delta_node_count(),
            full.node_count() - 1
        );
        assert_delta_matches_full(&delta, &baseline, &full, 4);
    }

    #[test]
    fn delta_against_disjoint_baseline_ships_everything() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1]);
        src.protect(f);
        let other = xor_chain(&mut src, &[4, 5]);
        src.protect(other);
        let baseline = export(&src, other);
        let full = export(&src, f);
        let delta = export_delta(&src, f, &baseline);
        assert_eq!(
            delta.delta_node_count(),
            full.node_count() - 1,
            "disjoint cones share nothing but the terminal"
        );
        assert_delta_matches_full(&delta, &baseline, &full, 2);
    }

    #[test]
    fn delta_of_constants_and_baseline_hits() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2]);
        src.protect(f);
        let baseline = export(&src, f);
        // Terminal root: nothing shipped, terminal encoding preserved.
        for c in [NodeId::TRUE, NodeId::FALSE] {
            let d = export_delta(&src, c, &baseline);
            assert_eq!(d.delta_node_count(), 0);
            let mut dst = BddManager::new(16);
            assert_eq!(import_delta(&d, &baseline, &mut dst).unwrap(), c);
        }
        // Complemented baseline hit: ¬f's cone is f's cone.
        let d = export_delta(&src, !f, &baseline);
        assert_eq!(d.delta_node_count(), 0, "¬f shares every node with f");
        let mut dst = BddManager::new(1 << 16);
        let g = import_delta(&d, &baseline, &mut dst).unwrap();
        for asg in assignments(3) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(dst.eval(g, &assign), src.eval(!f, &assign));
        }
    }

    #[test]
    fn delta_tolerates_a_collected_baseline() {
        // Baseline nodes that no longer exist in src must simply fail to
        // match (graceful degradation to a fuller delta), not corrupt
        // the encoding.
        let mut src = BddManager::new(1 << 16);
        let dead = xor_chain(&mut src, &[0, 1, 2]);
        let baseline = export(&src, dead);
        src.protect(NodeId::TRUE); // arm GC without keeping `dead` alive
        let keep = xor_chain(&mut src, &[3, 4]);
        src.protect(keep);
        src.gc(); // `dead`'s cone is gone from the unique table
        let full = export(&src, keep);
        let delta = export_delta(&src, keep, &baseline);
        assert_eq!(delta.delta_node_count(), full.node_count() - 1);
        assert_delta_matches_full(&delta, &baseline, &full, 5);
    }

    #[test]
    fn import_delta_materializes_only_needed_baseline_nodes() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3]);
        src.protect(f);
        let baseline = export(&src, f);
        // A function referencing only the deep tail of the baseline.
        let tail = xor_chain(&mut src, &[2, 3]);
        src.protect(tail);
        let delta = export_delta(&src, tail, &baseline);
        let mut dst = BddManager::new(1 << 16);
        let g = import_delta(&delta, &baseline, &mut dst).unwrap();
        assert_eq!(
            dst.num_nodes(),
            src.size(tail),
            "unreferenced baseline slots must not be materialized"
        );
        assert_eq!(dst.num_roots(), 1, "only the result registration remains");
        for asg in assignments(4) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(dst.eval(g, &assign), src.eval(tail, &assign));
        }
    }

    #[test]
    fn delta_quota_failure_leaks_no_roots() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2]);
        src.protect(f);
        let baseline = export(&src, f);
        let big = xor_chain(&mut src, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let delta = export_delta(&src, big, &baseline);
        let mut dst = BddManager::new(4);
        assert!(import_delta(&delta, &baseline, &mut dst).is_err());
        assert_eq!(dst.num_roots(), 0, "failed delta import must unwind its roots");
    }

    /// `(x0 ∧ xk) ∨ (x1 ∧ x{k+1}) ∨ …` — exponential under the identity
    /// order, linear once sifting pairs the operands up.
    fn distant_pairs(m: &mut BddManager, k: u32) -> NodeId {
        let mut f = NodeId::FALSE;
        for i in 0..k {
            let a = m.var(i).unwrap();
            let b = m.var(i + k).unwrap();
            let t = m.and(a, b).unwrap();
            f = m.or(f, t).unwrap();
        }
        f
    }

    #[test]
    fn roundtrip_from_sifted_source_into_identity_receiver() {
        let mut src = BddManager::new(1 << 16);
        let f = distant_pairs(&mut src, 3);
        src.protect(f);
        src.sift();
        let identity: Vec<u32> = (0..6).collect();
        assert_ne!(src.current_order(), identity, "sift must actually move variables");
        let e = export(&src, f);
        assert_eq!(e.source_order(), &src.current_order()[..]);
        // Identity-order receiver: the ITE fallback re-normalizes.
        let mut dst = BddManager::new(1 << 16);
        let g = import(&e, &mut dst).unwrap();
        for asg in assignments(6) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(dst.eval(g, &assign), src.eval(f, &assign), "assignment {asg:06b}");
        }
        // A receiver that adopts the source order replays the cone at
        // its exported size, pure-`mk`.
        let mut adopted = BddManager::new(1 << 16);
        adopted.adopt_order(e.source_order());
        let h = import(&e, &mut adopted).unwrap();
        assert_eq!(adopted.size(h), e.node_count(), "adopted order preserves the shape");
        for asg in assignments(6) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(adopted.eval(h, &assign), src.eval(f, &assign));
        }
    }

    #[test]
    fn roundtrip_from_identity_source_into_reordered_receiver() {
        let mut src = BddManager::new(1 << 16);
        let f = xor_chain(&mut src, &[0, 1, 2, 3]);
        let e = export(&src, f);
        let mut dst = BddManager::new(1 << 16);
        dst.adopt_order(&[3, 1, 0, 2]);
        let g = import(&e, &mut dst).unwrap();
        assert_eq!(dst.size(g), e.node_count(), "xor cone is order-invariant in size");
        for asg in assignments(4) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(dst.eval(g, &assign), src.eval(f, &assign), "assignment {asg:04b}");
        }
    }

    #[test]
    fn delta_across_a_source_reorder_stays_correct() {
        // Baseline exported under the identity order, then the source
        // sifts before taking the delta: baseline recognition degrades
        // gracefully (sifting rewrites structure, so matches may be
        // lost) and the receiver imports correctly either way.
        let mut src = BddManager::new(1 << 16);
        let f = distant_pairs(&mut src, 3);
        src.protect(f);
        let baseline = export(&src, f);
        let mut dst = BddManager::new(1 << 16);
        let imported_baseline = import(&baseline, &mut dst).unwrap();
        src.sift();
        let extra = src.var(6).unwrap();
        let g = src.or(f, extra).unwrap();
        src.protect(g);
        let delta = export_delta(&src, g, &baseline);
        assert_eq!(delta.source_order(), &src.current_order()[..]);
        assert_ne!(
            delta.source_order(),
            baseline.source_order(),
            "orders must have diverged for this test to bite"
        );
        let h = import_delta(&delta, &baseline, &mut dst).unwrap();
        for asg in assignments(7) {
            let assign = |v: u32| asg >> v & 1 == 1;
            assert_eq!(dst.eval(h, &assign), src.eval(g, &assign), "assignment {asg:07b}");
        }
        // The rebased next-round baseline carries the delta's order.
        let rebased = delta.rebase(&baseline);
        assert_eq!(rebased.source_order(), delta.source_order());
        dst.unprotect(imported_baseline);
        dst.unprotect(h);
    }

    #[test]
    fn chained_rebase_agrees_on_both_sides() {
        // The multi-round scheme: baseline_{r+1} = delta_r.rebase(baseline_r)
        // computed independently from shared data must be structurally
        // identical on sender and receiver.
        let mut src = BddManager::new(1 << 16);
        let mut frontier = xor_chain(&mut src, &[8, 9]);
        src.protect(frontier);
        let mut baseline_sender = export(&src, frontier);
        let mut baseline_receiver = baseline_sender.clone();
        for round in 0..3u32 {
            // Widen at the top (new var above the old cone): the old
            // frontier stays shared node-for-node under the new root.
            let v = src.var(7 - round).unwrap();
            let next = src.or(frontier, v).unwrap();
            src.reroot(frontier, next);
            frontier = next;
            let delta = export_delta(&src, frontier, &baseline_sender);
            assert!(
                delta.delta_node_count() < export(&src, frontier).node_count() - 1,
                "successive frontiers must overlap"
            );
            baseline_sender = delta.rebase(&baseline_sender);
            baseline_receiver = delta.rebase(&baseline_receiver);
            assert_eq!(baseline_sender, baseline_receiver, "round {round}");
            assert_eq!(baseline_sender.node_count(), src.size(frontier));
        }
    }
}
