//! BDD operations: ITE, boolean connectives, quantification, relational
//! product, variable renaming, satisfying-assignment extraction.
//!
//! With complement edges, negation ([`BddManager::not`]) is a tag-bit
//! flip — no traversal, no allocation, no cache — and the remaining
//! connectives derive from two primitives: the generic iterative ITE and
//! a specialized binary AND (`or` is `¬(¬f ∧ ¬g)`, `and_not` is
//! `f ∧ ¬g`, both O(1) rewrites). Each public entry point retries once
//! after a garbage collection when the node quota is hit (see the
//! [`BddManager`] root-set contract).

use crate::hash::FxHashMap;
use crate::manager::{BddManager, NodeId, OutOfNodes};

/// One pending step of the iterative [`BddManager::ite`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum IteFrame {
    /// Evaluate `ite(f, g, h)` and push its node onto the result stack.
    Apply(NodeId, NodeId, NodeId),
    /// Pop the two cofactor results, build the node at level `v`, cache
    /// it under the normalized `key`, and push the result complemented
    /// by `neg`.
    Reduce { v: u32, key: (NodeId, NodeId, NodeId), neg: bool },
}

/// Outcome of [`normalize_ite`].
enum Norm {
    /// The triple collapsed to an existing function.
    Done(NodeId),
    /// Canonical triple (`f` and `g` regular) plus an output-complement
    /// flag.
    Rec(NodeId, NodeId, NodeId, bool),
}

/// Canonicalizes an ITE triple whose `f` is known non-terminal — the
/// standard complement-edge normalization (Brace–Rudell–Bryant):
///
/// 1. replace `g`/`h` by constants where they equal `±f`;
/// 2. rewrite the commutative forms (`AND`, `OR`, `NAND`-ish, `NOR`-ish,
///    `XOR`-ish) so the operand with the smaller node index comes first;
/// 3. make `f` regular (swapping `g`/`h`), then make `g` regular
///    (complementing the output).
///
/// Together these fold up to eight equivalent triples onto one computed
/// cache entry, which is where the "cache sharing between `f` and `¬f`"
/// win of complement edges comes from.
fn normalize_ite(mut f: NodeId, mut g: NodeId, mut h: NodeId) -> Norm {
    // ite(f, f, h) = ite(f, T, h);  ite(f, ¬f, h) = ite(f, F, h).
    if g == f {
        g = NodeId::TRUE;
    } else if g == !f {
        g = NodeId::FALSE;
    }
    // ite(f, g, f) = ite(f, g, F);  ite(f, g, ¬f) = ite(f, g, T).
    if h == f {
        h = NodeId::FALSE;
    } else if h == !f {
        h = NodeId::TRUE;
    }
    if g == h {
        return Norm::Done(g);
    }
    if g == NodeId::TRUE && h == NodeId::FALSE {
        return Norm::Done(f);
    }
    if g == NodeId::FALSE && h == NodeId::TRUE {
        return Norm::Done(!f);
    }
    // Commutative rewrites: order the two non-constant operands by node
    // index. (Equal indices are impossible: g = ±f was folded above.)
    if h == NodeId::FALSE && g.index() < f.index() {
        // AND: ite(f, g, F) = ite(g, f, F).
        std::mem::swap(&mut f, &mut g);
    } else if g == NodeId::TRUE && h.index() < f.index() {
        // OR: ite(f, T, h) = ite(h, T, f).
        std::mem::swap(&mut f, &mut h);
    } else if h == NodeId::TRUE && g.index() < f.index() {
        // ite(f, g, T) = ite(¬g, ¬f, T).
        let (nf, ng) = (!f, !g);
        f = ng;
        g = nf;
    } else if g == NodeId::FALSE && h.index() < f.index() {
        // ite(f, F, h) = ite(¬h, F, ¬f).
        let (nf, nh) = (!f, !h);
        f = nh;
        h = nf;
    } else if h == !g && !g.is_terminal() && g.index() < f.index() {
        // XOR-ish: ite(f, g, ¬g) = ite(g, f, ¬f).
        let (of, og) = (f, g);
        f = og;
        g = of;
        h = !of;
    }
    // Canonical polarity: regular f (swap branches), then regular g
    // (complement both branches and the output).
    if f.is_complemented() {
        f = !f;
        std::mem::swap(&mut g, &mut h);
    }
    let neg = g.is_complemented();
    if neg {
        g = !g;
        h = !h;
    }
    Norm::Rec(f, g, h, neg)
}

impl BddManager {
    /// If-then-else: the universal ternary connective.
    ///
    /// Runs iteratively on an explicit stack (deep operand chains cannot
    /// overflow the call stack) and canonicalizes each triple — operand
    /// order *and* complement polarity — before the computed-cache
    /// lookup, so all equivalent phrasings of a query hit one entry.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[f, g, h], |m| m.ite_run(f, g, h))
    }

    fn ite_run(&mut self, f: NodeId, g: NodeId, h: NodeId) -> Result<NodeId, OutOfNodes> {
        // The work stacks live in the manager so the frequent small ITEs
        // (every xor/implies goes through here) reuse their allocations.
        let mut tasks = std::mem::take(&mut self.ite_tasks);
        let mut results = std::mem::take(&mut self.ite_results);
        tasks.push(IteFrame::Apply(f, g, h));
        let mut failed: Option<OutOfNodes> = None;
        while let Some(task) = tasks.pop() {
            match task {
                IteFrame::Apply(f, g, h) => {
                    // Terminal cases.
                    if f == NodeId::TRUE {
                        results.push(g);
                        continue;
                    }
                    if f == NodeId::FALSE {
                        results.push(h);
                        continue;
                    }
                    let (f, g, h, neg) = match normalize_ite(f, g, h) {
                        Norm::Done(r) => {
                            results.push(r);
                            continue;
                        }
                        Norm::Rec(f, g, h, neg) => (f, g, h, neg),
                    };
                    let epoch = self.cache_epoch;
                    if let Some(e) = self.ite_cache.get_mut(&(f, g, h)) {
                        e.1 = epoch;
                        let r = e.0;
                        results.push(if neg { !r } else { r });
                        continue;
                    }
                    let fg = self.upper_var(self.var_of(f), self.var_of(g));
                    let v = self.upper_var(fg, self.var_of(h));
                    let (f0, f1) = self.cofactors(f, v);
                    let (g0, g1) = self.cofactors(g, v);
                    let (h0, h1) = self.cofactors(h, v);
                    // LIFO: the lo-branch Apply runs first and pushes its
                    // result below the hi-branch's.
                    tasks.push(IteFrame::Reduce { v, key: (f, g, h), neg });
                    tasks.push(IteFrame::Apply(f1, g1, h1));
                    tasks.push(IteFrame::Apply(f0, g0, h0));
                }
                IteFrame::Reduce { v, key, neg } => {
                    let hi = results.pop().expect("hi cofactor result"); // lint: allow
                    let lo = results.pop().expect("lo cofactor result"); // lint: allow
                    match self.mk(v, lo, hi) {
                        Ok(r) => {
                            self.ite_cache.insert(key, (r, self.cache_epoch));
                            results.push(if neg { !r } else { r });
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        let outcome = match failed {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(results.len(), 1);
                Ok(results.pop().expect("final ITE result")) // lint: allow
            }
        };
        tasks.clear();
        results.clear();
        self.ite_tasks = tasks;
        self.ite_results = results;
        outcome
    }

    /// The textbook recursive ITE without argument normalization or the
    /// shared computed cache — the semantic reference the fast path is
    /// property-tested against (it never folds complemented triples, so
    /// it pins the complement-edge canonicalization too). Not part of
    /// the public API.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted.
    #[doc(hidden)]
    pub fn ite_reference(
        &mut self,
        f: NodeId,
        g: NodeId,
        h: NodeId,
    ) -> Result<NodeId, OutOfNodes> {
        let mut memo = FxHashMap::default();
        self.ite_reference_rec(f, g, h, &mut memo)
    }

    fn ite_reference_rec(
        &mut self,
        f: NodeId,
        g: NodeId,
        h: NodeId,
        memo: &mut FxHashMap<(NodeId, NodeId, NodeId), NodeId>,
    ) -> Result<NodeId, OutOfNodes> {
        if f == NodeId::TRUE {
            return Ok(g);
        }
        if f == NodeId::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&(f, g, h)) {
            return Ok(r);
        }
        let fg = self.upper_var(self.var_of(f), self.var_of(g));
        let v = self.upper_var(fg, self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite_reference_rec(f0, g0, h0, memo)?;
        let hi = self.ite_reference_rec(f1, g1, h1, memo)?;
        let r = self.mk(v, lo, hi)?;
        memo.insert((f, g, h), r);
        Ok(r)
    }

    /// Of two variable ids, the one whose **level** is nearer the root in
    /// the current order — the recursion variable of a binary apply. Var
    /// ids are only order surrogates under the identity order; every
    /// top-variable pick must go through levels once dynamic reordering
    /// can permute them. (`TERMINAL_VAR` maps to level `u32::MAX`, so
    /// terminals lose against any decision variable.)
    #[inline]
    fn upper_var(&self, a: u32, b: u32) -> u32 {
        if self.level_of(a) <= self.level_of(b) {
            a
        } else {
            b
        }
    }

    /// Cofactors of `n` with respect to variable `v` (which must be at or
    /// above `n`'s top variable in the current order). Complement tags
    /// propagate to the cofactors.
    fn cofactors(&self, n: NodeId, v: u32) -> (NodeId, NodeId) {
        if self.var_of(n) == v {
            (self.lo(n), self.hi(n))
        } else {
            (n, n)
        }
    }

    /// Negation: with complement edges this is a tag-bit flip — O(1), no
    /// allocation, cannot fail, and `f` and `¬f` share every node.
    pub fn not(&self, f: NodeId) -> NodeId {
        !f
    }

    /// Conjunction. Specialized binary apply: the generic ITE would model
    /// this as `ite(f, g, FALSE)`, paying three-way cofactoring and frame
    /// bookkeeping on the hottest operation in image computation.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[f, g], |m| m.and_rec(f, g))
    }

    fn and_rec(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        if f == NodeId::TRUE {
            return Ok(g);
        }
        if g == NodeId::TRUE {
            return Ok(f);
        }
        if f == NodeId::FALSE || g == NodeId::FALSE {
            return Ok(NodeId::FALSE);
        }
        if f == g {
            return Ok(f);
        }
        if f == !g {
            return Ok(NodeId::FALSE);
        }
        let key = (f.min(g), f.max(g));
        let epoch = self.cache_epoch;
        if let Some(e) = self.and_cache.get_mut(&key) {
            e.1 = epoch;
            return Ok(e.0);
        }
        let v = self.upper_var(self.var_of(f), self.var_of(g));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let lo = self.and_rec(f0, g0)?;
        let hi = self.and_rec(f1, g1)?;
        let r = self.mk(v, lo, hi)?;
        self.and_cache.insert(key, (r, self.cache_epoch));
        Ok(r)
    }

    /// Internal disjunction via De Morgan — three O(1) complements
    /// around the AND apply, sharing its computed cache.
    fn or_rec(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        Ok(!self.and_rec(!f, !g)?)
    }

    /// Disjunction: `¬(¬f ∧ ¬g)`; the complements are free, so this
    /// shares the AND cache instead of keeping its own.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[f, g], |m| m.or_rec(f, g))
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        self.ite(f, !g, g)
    }

    /// Equivalence: the free complement of [`BddManager::xor`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn xnor(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        Ok(!self.xor(f, g)?)
    }

    /// Difference `f ∧ ¬g` — the frontier-minus-reached step of image
    /// computation. With complement edges the complement of `g` is free,
    /// so this is a plain AND (one cache, no separate difference cache,
    /// and no materialized complement of a multi-million-node set).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn and_not(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        self.and(f, !g)
    }

    /// True iff `f ∧ g` is satisfiable, decided by pure traversal: no
    /// nodes are built and no quota is consumed, unlike testing
    /// `and(f, g) != FALSE`. Relies on the complement-edge invariant
    /// that every non-constant function is both satisfiable and
    /// refutable.
    pub fn intersects(&self, f: NodeId, g: NodeId) -> bool {
        fn go(
            m: &BddManager,
            f: NodeId,
            g: NodeId,
            seen: &mut crate::hash::FxHashSet<(NodeId, NodeId)>,
        ) -> bool {
            if f == NodeId::FALSE || g == NodeId::FALSE {
                return false;
            }
            if f == NodeId::TRUE || g == NodeId::TRUE {
                // The other operand is non-FALSE, hence satisfiable.
                return true;
            }
            if f == !g {
                return false; // disjoint by construction
            }
            if f == g {
                return true; // non-constant, hence satisfiable
            }
            if !seen.insert((f, g)) {
                return false; // already explored, found nothing
            }
            let v = m.upper_var(m.var_of(f), m.var_of(g));
            let (f0, f1) = m.cofactors(f, v);
            let (g0, g1) = m.cofactors(g, v);
            go(m, f0, g0, seen) || go(m, f1, g1, seen)
        }
        let mut seen = crate::hash::FxHashSet::default();
        go(self, f, g, &mut seen)
    }

    /// Implication `f -> g`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> Result<NodeId, OutOfNodes> {
        self.ite(f, g, NodeId::TRUE)
    }

    /// Checks `f -> g` is a tautology without building the implication
    /// (may still allocate in caches).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn implies_check(&mut self, f: NodeId, g: NodeId) -> Result<bool, OutOfNodes> {
        Ok(self.and(f, !g)? == NodeId::FALSE)
    }

    /// Builds the positive cube of the given variables (sorted by their
    /// current level internally), for use with [`BddManager::exists`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn cube(&mut self, vars: &[u32]) -> Result<NodeId, OutOfNodes> {
        let mut sorted = vars.to_vec();
        // Build root-first in the *current* order, not by var id —
        // distinct vars have distinct levels, so dedup still works.
        sorted.sort_unstable_by_key(|&v| self.level_of(v));
        sorted.dedup();
        self.run_with_gc(&[], |m| {
            let mut acc = NodeId::TRUE;
            for &v in sorted.iter().rev() {
                acc = m.mk(v, NodeId::FALSE, acc)?;
            }
            Ok(acc)
        })
    }

    /// Existential quantification of every variable in `cube` from `f`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn exists(&mut self, f: NodeId, cube: NodeId) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[f, cube], |m| m.exists_rec(f, cube))
    }

    fn exists_rec(&mut self, f: NodeId, cube: NodeId) -> Result<NodeId, OutOfNodes> {
        if f.is_terminal() || cube == NodeId::TRUE {
            return Ok(f);
        }
        let epoch = self.cache_epoch;
        if let Some(e) = self.exists_cache.get_mut(&(f, cube)) {
            e.1 = epoch;
            return Ok(e.0);
        }
        // Skip cube vars above f's top var (in the current order).
        let fv = self.var_of(f);
        let fl = self.level_of(fv);
        let mut c = cube;
        while !c.is_terminal() && self.level_of(self.var_of(c)) < fl {
            c = self.hi(c);
        }
        if c == NodeId::TRUE {
            return Ok(f);
        }
        let cv = self.var_of(c);
        let r = if fv == cv {
            let lo = self.exists_rec(self.lo(f), self.hi(c))?;
            let hi = self.exists_rec(self.hi(f), self.hi(c))?;
            self.or_rec(lo, hi)?
        } else {
            debug_assert!(fl < self.level_of(cv));
            let lo = self.exists_rec(self.lo(f), c)?;
            let hi = self.exists_rec(self.hi(f), c)?;
            self.mk(fv, lo, hi)?
        };
        self.exists_cache.insert((f, cube), (r, self.cache_epoch));
        Ok(r)
    }

    /// Universal quantification: `¬∃ cube. ¬f`, with both complements
    /// free.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn forall(&mut self, f: NodeId, cube: NodeId) -> Result<NodeId, OutOfNodes> {
        Ok(!self.exists(!f, cube)?)
    }

    /// Fused relational product `∃ cube. f ∧ g` — the inner loop of image
    /// computation. Avoids building the full conjunction before
    /// quantification.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn and_exists(
        &mut self,
        f: NodeId,
        g: NodeId,
        cube: NodeId,
    ) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[f, g, cube], |m| m.and_exists_rec(f, g, cube))
    }

    fn and_exists_rec(
        &mut self,
        f: NodeId,
        g: NodeId,
        cube: NodeId,
    ) -> Result<NodeId, OutOfNodes> {
        if f == NodeId::FALSE || g == NodeId::FALSE || f == !g {
            return Ok(NodeId::FALSE);
        }
        if f == NodeId::TRUE && g == NodeId::TRUE {
            return Ok(NodeId::TRUE);
        }
        if cube == NodeId::TRUE {
            return self.and_rec(f, g);
        }
        let key = (f.min(g), f.max(g), cube);
        let epoch = self.cache_epoch;
        if let Some(e) = self.and_exists_cache.get_mut(&key) {
            e.1 = epoch;
            return Ok(e.0);
        }
        let v = self.upper_var(self.var_of(f), self.var_of(g));
        let vl = self.level_of(v);
        // Advance the cube to v's level.
        let mut c = cube;
        while !c.is_terminal() && self.level_of(self.var_of(c)) < vl {
            c = self.hi(c);
        }
        let r = if !c.is_terminal() && self.var_of(c) == v {
            // Quantified variable: OR of the two cofactored products.
            let (f0, f1) = self.cofactors(f, v);
            let (g0, g1) = self.cofactors(g, v);
            let lo = self.and_exists_rec(f0, g0, self.hi(c))?;
            if lo == NodeId::TRUE {
                NodeId::TRUE // short-circuit: OR with anything is TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, self.hi(c))?;
                self.or_rec(lo, hi)?
            }
        } else {
            let (f0, f1) = self.cofactors(f, v);
            let (g0, g1) = self.cofactors(g, v);
            let lo = self.and_exists_rec(f0, g0, c)?;
            let hi = self.and_exists_rec(f1, g1, c)?;
            self.mk(v, lo, hi)?
        };
        self.and_exists_cache.insert(key, (r, self.cache_epoch));
        Ok(r)
    }

    /// Renames variables by an **order-preserving** mapping: `map[i]` is a
    /// `(from, to)` pair; variables not mentioned are unchanged. The
    /// mapping must preserve relative variable order — under dynamic
    /// reordering that means relative **level** order: sources sorted by
    /// their current level must map to targets in ascending level order.
    /// (The mc engines keep each current/next pair adjacent through
    /// reordering — see `BddManager::set_reorder_pairs` — precisely so
    /// their rename maps stay order-preserving.)
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the mapping is not order-preserving,
    /// which would silently corrupt the diagram.
    pub fn rename(&mut self, f: NodeId, map: &[(u32, u32)]) -> Result<NodeId, OutOfNodes> {
        #[cfg(debug_assertions)]
        {
            let mut sorted = map.to_vec();
            sorted.sort_unstable_by_key(|&(from, _)| self.level_of(from));
            for w in sorted.windows(2) {
                debug_assert!(
                    self.level_of(w[0].1) < self.level_of(w[1].1),
                    "rename mapping must be order-preserving: {:?}",
                    map
                );
            }
        }
        // Hash the map for the cache key.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (a, b) in map {
            h = (h ^ (*a as u64)).wrapping_mul(0x1000_0000_01b3);
            h = (h ^ (*b as u64)).wrapping_mul(0x1000_0000_01b3);
        }
        self.run_with_gc(&[f], |m| m.rename_rec(f, map, h))
    }

    fn rename_rec(
        &mut self,
        f: NodeId,
        map: &[(u32, u32)],
        map_hash: u64,
    ) -> Result<NodeId, OutOfNodes> {
        if f.is_terminal() {
            return Ok(f);
        }
        // Renaming commutes with complement: recurse on the regular edge
        // so f and ¬f share one cache entry, and re-apply the tag.
        if f.is_complemented() {
            return Ok(!self.rename_rec(!f, map, map_hash)?);
        }
        let epoch = self.cache_epoch;
        if let Some(e) = self.rename_cache.get_mut(&(f, map_hash)) {
            e.1 = epoch;
            return Ok(e.0);
        }
        let v = self.var_of(f);
        let nv = map
            .iter()
            .find(|(from, _)| *from == v)
            .map(|(_, to)| *to)
            .unwrap_or(v);
        let lo = self.rename_rec(self.lo(f), map, map_hash)?;
        let hi = self.rename_rec(self.hi(f), map, map_hash)?;
        let r = self.mk(nv, lo, hi)?;
        self.rename_cache.insert((f, map_hash), (r, self.cache_epoch));
        Ok(r)
    }

    /// Restricts variable `v` to a constant in `f` (Shannon cofactor).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] when the quota is exhausted even after
    /// garbage collection.
    pub fn restrict(&mut self, f: NodeId, v: u32, value: bool) -> Result<NodeId, OutOfNodes> {
        self.run_with_gc(&[f], |m| m.restrict_rec(f, v, value))
    }

    fn restrict_rec(&mut self, f: NodeId, v: u32, value: bool) -> Result<NodeId, OutOfNodes> {
        if f.is_terminal() || self.level_of(self.var_of(f)) > self.level_of(v) {
            return Ok(f);
        }
        if self.var_of(f) == v {
            return Ok(if value { self.hi(f) } else { self.lo(f) });
        }
        let lo = self.restrict_rec(self.lo(f), v, value)?;
        let hi = self.restrict_rec(self.hi(f), v, value)?;
        self.mk(self.var_of(f), lo, hi)
    }

    /// Returns one satisfying assignment of `f` as `(var, value)` pairs for
    /// the variables on the chosen path, or `None` if `f` is false.
    /// Variables absent from the result are don't-cares.
    pub fn sat_one(&self, f: NodeId) -> Option<Vec<(u32, bool)>> {
        if f == NodeId::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut n = f;
        while !n.is_terminal() {
            let v = self.var_of(n);
            // Prefer the branch that reaches TRUE.
            if self.lo(n) != NodeId::FALSE {
                path.push((v, false));
                n = self.lo(n);
            } else {
                path.push((v, true));
                n = self.hi(n);
            }
        }
        debug_assert_eq!(n, NodeId::TRUE);
        Some(path)
    }

    /// The support (set of variables) of `f`, ascending. `f` and `¬f`
    /// have the same support, so traversal ignores complement tags.
    pub fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen: crate::hash::FxHashSet<u32> = crate::hash::FxHashSet::default();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n.index()) {
                continue;
            }
            vars.insert(self.var_of(n));
            stack.push(self.lo(n));
            stack.push(self.hi(n));
        }
        vars.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(1 << 20)
    }

    #[test]
    fn boolean_laws() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let ba = m.and(b, a).unwrap();
        assert_eq!(ab, ba, "commutativity");
        let na = m.not(a);
        let nna = m.not(na);
        assert_eq!(a, nna, "double negation");
        let a_or_na = m.or(a, na).unwrap();
        assert_eq!(a_or_na, NodeId::TRUE, "excluded middle");
        let a_and_na = m.and(a, na).unwrap();
        assert_eq!(a_and_na, NodeId::FALSE, "contradiction");
        // De Morgan
        let nab = m.not(ab);
        let nb = m.not(b);
        let na_or_nb = m.or(na, nb).unwrap();
        assert_eq!(nab, na_or_nb);
    }

    #[test]
    fn complement_edges_make_negation_free() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.xor(a, b).unwrap();
        let nodes_before = m.num_nodes();
        let nf = m.not(f);
        assert_eq!(m.num_nodes(), nodes_before, "not must not allocate");
        assert_eq!(nf, !f);
        assert_eq!(m.size(f), m.size(nf), "f and ¬f share every node");
        for asg in 0..4u32 {
            let want = !m.eval(f, &|v| asg >> v & 1 == 1);
            assert_eq!(m.eval(nf, &|v| asg >> v & 1 == 1), want);
        }
    }

    #[test]
    fn xor_xnor() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let x = m.xor(a, b).unwrap();
        let xn = m.xnor(a, b).unwrap();
        let nx = m.not(x);
        assert_eq!(xn, nx);
        for (av, bv, ev) in [(false, false, false), (false, true, true), (true, false, true), (true, true, false)] {
            assert_eq!(m.eval(x, &|v| if v == 0 { av } else { bv }), ev);
        }
    }

    #[test]
    fn quantification() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let cube_a = m.cube(&[0]).unwrap();
        let ex = m.exists(ab, cube_a).unwrap();
        assert_eq!(ex, b, "∃a. a∧b == b");
        let fa = m.forall(ab, cube_a).unwrap();
        assert_eq!(fa, NodeId::FALSE, "∀a. a∧b == false");
        let a_or_b = m.or(a, b).unwrap();
        let fa2 = m.forall(a_or_b, cube_a).unwrap();
        assert_eq!(fa2, b, "∀a. a∨b == b");
    }

    #[test]
    fn exists_multiple_vars() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let bc = m.and(b, c).unwrap();
        let f = m.and(a, bc).unwrap();
        let cube = m.cube(&[0, 2]).unwrap();
        let ex = m.exists(f, cube).unwrap();
        assert_eq!(ex, b);
    }

    #[test]
    fn exists_on_complemented_operand() {
        // ∃ does NOT commute with complement; the cache must keep
        // f and ¬f apart.
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let cube_a = m.cube(&[0]).unwrap();
        let e1 = m.exists(ab, cube_a).unwrap();
        assert_eq!(e1, b);
        let e2 = m.exists(!ab, cube_a).unwrap();
        assert_eq!(e2, NodeId::TRUE, "∃a. ¬(a∧b) is a tautology");
    }

    #[test]
    fn and_exists_equals_sequential() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let f = m.or(a, c).unwrap();
        let g = m.xor(b, c).unwrap();
        let cube = m.cube(&[2]).unwrap();
        let fused = m.and_exists(f, g, cube).unwrap();
        let conj = m.and(f, g).unwrap();
        let seq = m.exists(conj, cube).unwrap();
        assert_eq!(fused, seq);
    }

    #[test]
    fn and_not_equals_composed_form() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let f = m.or(a, b).unwrap();
        let g = m.xor(b, c).unwrap();
        let fused = m.and_not(f, g).unwrap();
        let ng = m.not(g);
        let composed = m.and(f, ng).unwrap();
        assert_eq!(fused, composed);
        assert_eq!(m.and_not(f, f).unwrap(), NodeId::FALSE);
        assert_eq!(m.and_not(f, NodeId::FALSE).unwrap(), f);
        assert_eq!(m.and_not(f, NodeId::TRUE).unwrap(), NodeId::FALSE);
        let nf = m.not(f);
        assert_eq!(m.and_not(NodeId::TRUE, f).unwrap(), nf);
    }

    #[test]
    fn intersects_agrees_with_and() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let na = m.not(a);
        let ab = m.and(a, b).unwrap();
        assert!(m.intersects(a, b));
        assert!(m.intersects(ab, a));
        assert!(!m.intersects(a, na), "disjoint cofactor spaces");
        assert!(!m.intersects(ab, NodeId::FALSE));
        assert!(m.intersects(NodeId::TRUE, b));
        let nodes_before = m.num_nodes();
        assert!(m.intersects(a, b));
        assert_eq!(m.num_nodes(), nodes_before, "intersects must not allocate");
    }

    #[test]
    fn rename_shifts_vars() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(2).unwrap();
        let f = m.and(a, b).unwrap();
        // 0->1, 2->3 (order preserving)
        let g = m.rename(f, &[(0, 1), (2, 3)]).unwrap();
        let a1 = m.var(1).unwrap();
        let b3 = m.var(3).unwrap();
        let expect = m.and(a1, b3).unwrap();
        assert_eq!(g, expect);
        // Complement commutes with renaming.
        let gn = m.rename(!f, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(gn, !expect);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f = m.xor(a, b).unwrap();
        let f_a1 = m.restrict(f, 0, true).unwrap();
        let nb = m.not(b);
        assert_eq!(f_a1, nb);
        let f_a0 = m.restrict(f, 0, false).unwrap();
        assert_eq!(f_a0, b);
    }

    #[test]
    fn sat_one_finds_assignment() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let nb = m.not(b);
        let f = m.and(a, nb).unwrap();
        let sol = m.sat_one(f).unwrap();
        assert!(sol.contains(&(0, true)));
        assert!(sol.contains(&(1, false)));
        assert_eq!(m.sat_one(NodeId::FALSE), None);
        assert_eq!(m.sat_one(NodeId::TRUE), Some(vec![]));
    }

    #[test]
    fn support_lists_vars() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let c = m.var(5).unwrap();
        let f = m.xor(a, c).unwrap();
        assert_eq!(m.support(f), vec![0, 5]);
        assert_eq!(m.support(!f), vec![0, 5]);
        assert!(m.support(NodeId::TRUE).is_empty());
    }

    #[test]
    fn implies_check_works() {
        let mut m = mgr();
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let ab = m.and(a, b).unwrap();
        assert!(m.implies_check(ab, a).unwrap());
        assert!(!m.implies_check(a, ab).unwrap());
    }

    #[test]
    fn quota_propagates_through_ops() {
        let mut m = BddManager::new(8);
        let mut f = m.var(0).unwrap();
        let mut overflowed = false;
        for v in 1..20 {
            let x = match m.var(v) {
                Ok(x) => x,
                Err(_) => {
                    overflowed = true;
                    break;
                }
            };
            match m.xor(f, x) {
                Ok(g) => f = g,
                Err(_) => {
                    overflowed = true;
                    break;
                }
            }
        }
        assert!(overflowed, "tiny quota must overflow");
    }

    /// Property-style check: BDD of a random 3-var function equals its
    /// truth table, for all 256 functions.
    #[test]
    fn all_three_var_functions() {
        for tt in 0u32..256 {
            let mut m = BddManager::new(1 << 16);
            // Build f = OR over minterms.
            let mut f = NodeId::FALSE;
            for row in 0..8u32 {
                if tt >> row & 1 == 1 {
                    let mut term = NodeId::TRUE;
                    for v in 0..3u32 {
                        let lit = if row >> v & 1 == 1 {
                            m.var(v).unwrap()
                        } else {
                            m.nvar(v).unwrap()
                        };
                        term = m.and(term, lit).unwrap();
                    }
                    f = m.or(f, term).unwrap();
                }
            }
            for row in 0..8u32 {
                let want = tt >> row & 1 == 1;
                let got = m.eval(f, &|v| row >> v & 1 == 1);
                assert_eq!(got, want, "tt={tt:08b} row={row}");
            }
            assert_eq!(m.count_sat(f, 3) as u32, tt.count_ones());
        }
    }
}
