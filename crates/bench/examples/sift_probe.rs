//! Dev probe for the `fig7/monolithic_sift` bench id: runs the Fig. 7
//! chain monolithically with dynamic reordering off and on (plus the
//! sat-only and umc-only halves, to attribute time between engines)
//! and prints verdict/iteration identity, peak live nodes, reorder
//! counters and wall-clock per configuration.
//!
//! ```text
//! cargo run --release -p veridic-bench --example sift_probe
//! ```

use std::time::Instant;
use veridic::prelude::*;
use veridic_bench::aig_of;

fn main() {
    let module = demo_chain_module(12);
    let vm = make_verifiable(&module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, integ) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
        .unwrap();
    let aig = aig_of(integ);
    let cases: Vec<(&str, CheckOptions)> = vec![
        ("sat_only        ", CheckOptions::builder().sat_only(true).build()),
        (
            "umc       off  ",
            CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build(),
        ),
        (
            "umc       sift ",
            CheckOptions::builder()
                .bdd_only(true)
                .pobdd_window_vars(0)
                .dynamic_reorder(true)
                .build(),
        ),
        ("full      off  ", CheckOptions::builder().build()),
        ("full      sift ", CheckOptions::builder().dynamic_reorder(true).build()),
    ];
    for (label, opts) in cases {
        let t = Instant::now();
        let r = check(&aig, &opts);
        println!(
            "{label} verdict_resourceout={} iters={} peak={} alloc={} \
             reorders={} before={} after={} wall={:.2?}",
            matches!(r.verdict, Verdict::ResourceOut { .. }),
            r.stats.iterations,
            r.stats.bdd_nodes,
            r.stats.bdd_allocated,
            r.stats.reorders,
            r.stats.reorder_nodes_before,
            r.stats.reorder_nodes_after,
            t.elapsed()
        );
    }
}
