//! Figure 7 reproduction: a property that exhausts the model checker's
//! budget monolithically is partitioned into corns that each verify
//! under the same budget.
//!
//! Usage: `cargo run --release -p veridic-bench --bin fig7 [-- --stages N]`

use std::time::Instant;
use veridic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let stages = args
        .iter()
        .position(|a| a == "--stages")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(16usize);

    let module = demo_chain_module(stages);
    let vm = make_verifiable(&module)?;
    let tight = CheckOptions::builder()
        .bdd_nodes(9_000)
        .sat_conflicts(600)
        .bmc_depth(3)
        .induction_depth(3)
        .simple_path(false)
        .max_iterations(200)
        .pobdd_window_vars(0)
        .build();

    println!("Figure 7: partitioning a property for Divide-and-Conquer");
    println!("chain of {stages} parity-propagating stages ({} state bits)\n", vm.module.state_bits());

    // (1) the original property.
    let vunits = generate_all(&vm)?;
    let (_, compiled) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
        .expect("integrity vunit");
    let aig = veridic_bench::aig_of(compiled);
    let t0 = Instant::now();
    let mono = check(&aig, &tight);
    let mono_time = t0.elapsed();
    println!("(1) monolithic check : {:?} in {:?}", short(&mono.verdict), mono_time);
    for e in mono.stats.engines_tried() {
        println!("      {e}");
    }
    println!(
        "      peak live BDD nodes {} of quota {} ({} allocated, {} quota hits)",
        mono.stats.bdd_nodes, tight.bdd_nodes, mono.stats.bdd_allocated, mono.stats.bdd_quota_hits
    );

    // (2) the partitioned property.
    let steps = partition_output_integrity(&vm, 0).map_err(std::io::Error::other)?;
    decomposition_is_acyclic(&steps, &vm.module).map_err(std::io::Error::other)?;
    let t1 = Instant::now();
    let run = run_partition(&steps, &tight);
    let part_time = t1.elapsed();
    println!(
        "\n(2) partitioned check: {} corns, all proved = {}, in {:?}",
        run.steps.len(),
        run.all_proved,
        part_time
    );
    for (name, r) in run.steps.iter().take(4) {
        println!("      {name}: {:?}", short(&r.verdict));
    }
    if run.steps.len() > 4 {
        println!("      ... ({} more corns)", run.steps.len() - 4);
    }

    // (3) the same corns fanned out across two worker threads.
    let t2 = Instant::now();
    let par = run_partition_with_workers(&steps, &tight, 2);
    let par_time = t2.elapsed();
    println!(
        "\n(3) parallel corns   : 2 workers, all proved = {}, in {:?}",
        par.all_proved, par_time
    );
    for (i, w) in par.worker_stats.iter().enumerate() {
        println!(
            "      worker {i}: peak live {} nodes, {} allocated",
            w.peak_bdd_nodes, w.bdd_allocated
        );
    }
    if matches!(mono.verdict, Verdict::ResourceOut { .. }) {
        println!("\nshape: monolithic times out; the same budget proves every corn.");
    } else {
        println!(
            "\nshape: at {stages} stages the monolithic check still fits the quota \
             (GC reclaims dead image nodes); raise --stages to see it time out."
        );
    }
    Ok(())
}

fn short(v: &Verdict) -> String {
    match v {
        Verdict::Proved { engine } => format!("proved({engine})"),
        Verdict::Falsified(t) => format!("falsified@{}", t.len()),
        Verdict::ResourceOut { .. } => "resource-out".to_string(),
    }
}
