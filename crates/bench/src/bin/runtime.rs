//! §6.1 runtime reproduction: per-property check-latency distribution
//! ("It takes about 20 hours to verify all the properties on a typical
//! Linux workstation with single CPU and single license").
//!
//! Prints the latency histogram of a campaign and extrapolates the
//! full-census runtime.

use std::time::Instant;
use veridic::prelude::*;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { Scale::Small } else { Scale::Full };
    eprintln!("generating chip ({scale:?}) ...");
    let chip = Chip::generate(&ChipConfig { scale, with_bugs: false });
    eprintln!("running campaign ...");
    let t0 = Instant::now();
    // Pin workers: the paper's §6.1 figure is a *single-CPU* latency
    // distribution; parallel checking would skew both the per-property
    // durations (contention) and the wall-clock mean (divided down).
    let report = run_campaign(&chip, &CampaignConfig { workers: 1, ..Default::default() });
    let total = t0.elapsed();

    let mut lat: Vec<f64> = report
        .records
        .iter()
        .map(|r| r.duration.as_secs_f64() * 1e3)
        .collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat[((lat.len() as f64 - 1.0) * p) as usize];
    println!("campaign: {} properties in {:?}", lat.len(), total);
    println!("per-property latency (ms):");
    println!("  min {:.2}  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        lat.first().unwrap(), pct(0.5), pct(0.9), pct(0.99), lat.last().unwrap());
    let per_prop = total.as_secs_f64() / lat.len() as f64;
    println!("  mean {:.1} ms/property", per_prop * 1e3);
    println!();
    println!("(paper: 2047 properties in ~20 h => ~35 s/property on a 2004");
    println!(" single-CPU workstation; the shape to compare is the long tail");
    println!(" of UMC-bound integrity properties vs. fast inductive checks)");
    // Engine mix.
    let mut by_engine: std::collections::BTreeMap<String, usize> = Default::default();
    for r in &report.records {
        if let Verdict::Proved { engine } = &r.verdict {
            *by_engine.entry(engine.to_string()).or_insert(0) += 1;
        }
    }
    println!("\nconcluding engine mix:");
    for (e, n) in by_engine {
        println!("  {e}: {n}");
    }
}
