//! Figures 2, 3, 4 (stereotype PSL), 5 (design flow) and 6 (Verifiable
//! RTL) — regenerated from a canonical Figure-1 leaf module.

use veridic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = &build_plans(Scale::Small)[0];
    let module = build_leaf(plan, None);
    let vm = make_verifiable(&module)?;

    println!("=== Figure 2: PSL code for checking ability of error detection ===");
    print!("{}", edetect_vunit(&vm));
    println!("\n=== Figure 3: PSL code for checking soundness of internal states ===");
    print!("{}", soundness_vunit(&vm));
    println!("\n=== Figure 4: PSL code for checking output data integrity ===");
    print!("{}", integrity_vunit(&vm));

    println!("\n=== Figure 5: design flow (executable stages) ===");
    println!("  designer        : release RTL + integrity spec (chipgen attributes)");
    println!("  designer        : make RTL Verifiable        -> make_verifiable()");
    println!("  formal engineer : derive PSL vunits           -> generate_all()");
    println!("  formal engineer : model check                 -> run_campaign()");
    println!("  formal engineer : feedback counterexamples    -> CampaignReport::failures()");
    println!("  (simulation flow runs alongside: veridic-sim + SpecCompliant)");

    println!("\n=== Figure 6: Verifiable RTL (emitted Verilog) ===");
    println!("{}", emit_module(&vm.module, None));
    Ok(())
}
