//! Repo-convention lint: the static-analysis gate for the source tree
//! itself, run next to clippy in CI.
//!
//! Three rule families, all plain line scans (no syntax tree — the
//! conventions are deliberately simple enough that grep-level precision
//! suffices):
//!
//! 1. **Deterministic hashing in the engine crates.** `aig`, `bdd`,
//!    `mc`, `sat`, `core` and `netlist` standardized on
//!    `FxHashMap`/`FxHashSet` (`veridic_aig::hash`) — a default-hasher
//!    `std::collections::HashMap`/`HashSet` there reintroduces
//!    run-to-run iteration nondeterminism and the slower SipHash. Any
//!    `HashMap`/`HashSet` token in those crates must be the Fx variant
//!    or carry an explicit `BuildHasher` on the same line (the
//!    `hash.rs` definitions themselves).
//! 2. **No leftover debug scaffolding anywhere in `crates/`.**
//!    `dbg!`, `todo!` and `unimplemented!` are fine while developing
//!    and wrong in a commit.
//! 3. **No bare `unwrap()`/`expect()` in engine library code.** A
//!    panic in a library path takes the whole check (or a whole
//!    campaign worker) down; engine code threads `Result`s instead.
//!    Invariant assertions that genuinely cannot fire are allowed, but
//!    each must carry a `// lint: allow` marker on the same line — the
//!    marker is the review record that the panic was vetted. Test
//!    modules (everything from a `#[cfg(test)] mod` on) are exempt:
//!    panicking on a broken expectation is what tests are for.
//!
//! Usage: `cargo run -p veridic-bench --bin lint_conventions`
//! (exits 1 with one line per violation).

use std::path::{Path, PathBuf};

/// Crates standardized on FxHash (PR 2; `core` and `netlist` joined in
/// PR 9, `campaign` in PR 10).
const FX_CRATES: [&str; 7] = ["aig", "bdd", "mc", "sat", "core", "netlist", "campaign"];

/// Crates whose library code may not panic via bare `unwrap`/`expect`
/// (rule 3). Same set as [`FX_CRATES`]: the engine stack plus the
/// campaign service, where a panic kills a whole worker shard.
const NO_PANIC_CRATES: [&str; 7] = FX_CRATES;

/// Debug-scaffolding macros banned from committed code. Assembled at
/// runtime so this file does not flag itself.
fn banned_macros() -> Vec<String> {
    ["dbg", "todo", "unimplemented"].iter().map(|m| format!("{m}!(")).collect()
}

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crates_dir = root.join("crates");
    let mut violations = Vec::new();

    let banned = banned_macros();
    for file in rs_files(&crates_dir) {
        let Ok(text) = std::fs::read_to_string(&file) else { continue };
        let display = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .display()
            .to_string();
        let in_fx_crate = FX_CRATES
            .iter()
            .any(|c| file.starts_with(crates_dir.join(c).join("src")));
        let in_no_panic_crate = NO_PANIC_CRATES
            .iter()
            .any(|c| file.starts_with(crates_dir.join(c).join("src")));
        // Rule 3 scans library code only: stop at the `#[cfg(test)]`
        // that opens a test module (a `#[cfg(test)]` on a lone `use` or
        // item does not end the library part of the file).
        let mut in_tests = false;
        let mut pending_cfg_test = false;
        for (lineno, line) in text.lines().enumerate() {
            let code = line.trim_start();
            if pending_cfg_test && (code.starts_with("mod ") || code.starts_with("pub mod ")) {
                in_tests = true;
            }
            pending_cfg_test = code.starts_with("#[cfg(test)]");
            if code.starts_with("//") {
                continue; // comments and doc prose may name the types
            }
            if in_fx_crate
                && (code.contains("HashMap") || code.contains("HashSet"))
                && !code.contains("FxHash")
                && !code.contains("BuildHasher")
            {
                violations.push(format!(
                    "{display}:{}: default-hasher HashMap/HashSet in an FxHash crate \
                     (use veridic_aig::hash::FxHashMap/FxHashSet)",
                    lineno + 1
                ));
            }
            if in_no_panic_crate
                && !in_tests
                && (code.contains(".unwrap()") || code.contains(".expect("))
                && !code.contains("// lint: allow")
            {
                violations.push(format!(
                    "{display}:{}: bare unwrap/expect in engine library code \
                     (thread a Result, or vet the invariant and mark the line `// lint: allow`)",
                    lineno + 1
                ));
            }
            for m in &banned {
                if code.contains(m.as_str()) {
                    violations.push(format!(
                        "{display}:{}: leftover `{}` debug macro",
                        lineno + 1,
                        &m[..m.len() - 1]
                    ));
                }
            }
        }
    }

    if violations.is_empty() {
        println!("lint_conventions: clean");
        return;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("\nlint_conventions: {} violation(s)", violations.len());
    std::process::exit(1);
}

/// All `.rs` files under `dir`, recursively, in a deterministic order.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        children.sort();
        for p in children {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banned_macro_patterns_do_not_flag_their_own_builder() {
        // The patterns are assembled at runtime precisely so the string
        // literals in this binary never contain the banned spelling.
        let banned = banned_macros();
        let expected: Vec<String> =
            ["dbg", "todo", "unimplemented"].iter().map(|m| format!("{m}!{}", "(")).collect();
        assert_eq!(banned, expected);
        let this_file = include_str!("lint_conventions.rs");
        for m in &banned {
            for line in this_file.lines().filter(|l| !l.trim_start().starts_with("//")) {
                assert!(
                    !line.contains(m.as_str()),
                    "lint source would flag itself: {line:?}"
                );
            }
        }
    }

    #[test]
    fn fx_crate_list_matches_the_standardized_crates() {
        for c in FX_CRATES {
            assert!(
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("crates").join(c).is_dir(),
                "FX crate {c} missing"
            );
        }
    }
}
