//! `campaign_ctl` — operator console for the campaign service.
//!
//! Usage: `cargo run --release -p veridic-bench --bin campaign_ctl -- <verb> <dir> ...`
//!
//! | verb | effect |
//! |---|---|
//! | `submit <dir> [key value]...` | lay out a campaign directory |
//! | `status <dir>` | journal state counts + daemon liveness |
//! | `resume <dir>` | run the daemon (fresh or crash-recovered) |
//! | `tail <dir> [n]` | last `n` (default 10) `results.ndjson` lines |
//!
//! `submit` takes campaign-spec overrides as `key value` pairs
//! (`scale small|full`, `with_bugs true`, `shards 4`, `slice_rounds 8`,
//! `adaptive true`, plus any `CheckOptions` field). `resume` is the
//! same verb for a first run and for recovery after a crash — the
//! journals decide what is left to do.

use std::path::Path;
use std::process::ExitCode;

use veridic::campaign::{self, CampaignDir, CampaignSpec, RunOutcome};
use veridic::prelude::maybe_run_worker;

fn usage() -> ExitCode {
    eprintln!(
        "usage: campaign_ctl submit <dir> [key value]... | status <dir> | resume <dir> | \
         tail <dir> [n]"
    );
    ExitCode::from(2)
}

fn fail(err: impl std::fmt::Display) -> ExitCode {
    eprintln!("campaign_ctl: {err}");
    ExitCode::FAILURE
}

fn spec_from_pairs(pairs: &[String]) -> Result<CampaignSpec, String> {
    if pairs.len() % 2 != 0 {
        return Err("spec overrides must come in `key value` pairs".to_string());
    }
    let mut text = String::from("veridic-campaign-spec v1\n");
    for pair in pairs.chunks(2) {
        text.push_str(&format!("{} {}\n", pair[0], pair[1]));
    }
    CampaignSpec::parse(&text).map_err(|e| e.to_string())
}

fn tail(dir: &Path, n: usize) -> ExitCode {
    let path = CampaignDir::new(dir).results_path();
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let lines: Vec<&str> = text.lines().collect();
            for line in lines.iter().skip(lines.len().saturating_sub(n)) {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("{}: {e}", path.display())),
    }
}

fn main() -> ExitCode {
    // The daemon shards by re-executing current_exe(), so this binary
    // must answer the --worker calling convention too.
    if let Some(code) = maybe_run_worker() {
        return ExitCode::from(u8::try_from(code.rem_euclid(256)).unwrap_or(1));
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((verb, rest)) = args.split_first() else {
        return usage();
    };
    let Some((dir, extra)) = rest.split_first() else {
        return usage();
    };
    let dir = Path::new(dir);
    match verb.as_str() {
        "submit" => {
            let spec = match spec_from_pairs(extra) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            match campaign::submit(dir, &spec) {
                Ok(s) => {
                    println!(
                        "submitted {} jobs ({} module errors) to {}",
                        s.jobs,
                        s.module_errors,
                        dir.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "status" => match campaign::status(dir) {
            Ok(s) => {
                let daemon = match s.daemon_pid {
                    Some(pid) => format!("daemon pid {pid}"),
                    None => "no daemon".to_string(),
                };
                println!(
                    "{} jobs: {} pending, {} running, {} done ({daemon})",
                    s.jobs, s.pending, s.running, s.done
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "resume" => match campaign::run(dir) {
            Ok(RunOutcome::Completed(report)) => {
                println!(
                    "campaign complete: {} records, {} errors; table2.txt written",
                    report.records.len(),
                    report.errors.len()
                );
                ExitCode::SUCCESS
            }
            Ok(RunOutcome::Interrupted { done, total }) => {
                println!("interrupted: {done}/{total} done; `resume` again to continue");
                ExitCode::from(3)
            }
            Err(e) => fail(e),
        },
        "tail" => {
            let n = extra.first().and_then(|s| s.parse().ok()).unwrap_or(10);
            tail(dir, n)
        }
        _ => usage(),
    }
}
