//! Table 3 reproduction: classification of the seven logic bugs —
//! formal verification vs. realistic logic simulation.
//!
//! For each bug: which stereotype property type finds it formally, and
//! the measured spec-compliant simulation detection latency across
//! several seeds (the "can be found by logic simulation easily?" column).

use veridic::prelude::*;

const SIM_BUDGET: u64 = 50_000;
const SEEDS: [u64; 5] = [11, 23, 37, 53, 71];

fn main() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
    println!("Table 3. Classification of logic bugs");
    println!(
        "{:<6} {:<30} {:<10} {:>16} {:<6}",
        "Defect", "Type of Property (formal)", "Formal?", "Sim latency", "Easy?"
    );
    let portfolio = Portfolio::default();
    let mut pre = PreanalysisStats::default();
    for (module_name, bug) in chip.bugs() {
        let module = chip.design().module(&module_name).unwrap();
        // Formal verdict on the bug's property type.
        let vm = make_verifiable(module).unwrap();
        let mut formal_found = false;
        for (g, compiled) in generate_all(&vm).unwrap() {
            if g.ptype != bug.property_type() {
                continue;
            }
            let aig = veridic_bench::aig_of(&compiled);
            for idx in 0..compiled.asserts.len() {
                let mut stats = CheckStats::default();
                if portfolio
                    .check_bad(&aig, idx, &CheckOptions::default(), &mut stats)
                    .is_falsified()
                {
                    formal_found = true;
                }
                pre.bads_analyzed += stats.preanalysis.bads_analyzed;
                pre.stuck_latches += stats.preanalysis.stuck_latches;
                pre.folded_ands += stats.preanalysis.folded_ands;
                pre.vacuous += stats.preanalysis.vacuous;
            }
        }
        // Simulation latency: median across seeds.
        let mut latencies = Vec::new();
        for seed in SEEDS {
            let mut sim = Simulator::new(module).unwrap();
            let mut stim = SpecCompliant::new(seed);
            let hit = sim
                .run_with(&mut stim, SIM_BUDGET, observe_symptom)
                .unwrap();
            latencies.push(hit.map(|(c, _)| c));
        }
        let found: Vec<u64> = latencies.iter().flatten().copied().collect();
        let sim_str = if found.is_empty() {
            format!("never (<={SIM_BUDGET})")
        } else if found.len() < SEEDS.len() {
            format!("{}/{} seeds", found.len(), SEEDS.len())
        } else {
            let mut s = found.clone();
            s.sort_unstable();
            format!("~{} cycles", s[s.len() / 2])
        };
        let easy = !found.is_empty() && found.iter().all(|l| *l < 500);
        println!(
            "{:<6} {:<30} {:<10} {:>16} {:<6}",
            bug.to_string(),
            bug.property_type().to_string(),
            if formal_found { "found" } else { "MISSED" },
            sim_str,
            if easy { "Yes" } else { "No" }
        );
    }
    println!();
    println!(
        "preanalysis: {} cones swept, {} stuck latches folded ({} ANDs), {} vacuous",
        pre.bads_analyzed, pre.stuck_latches, pre.folded_ands, pre.vacuous
    );
    println!("(paper: B0/B2/B4 easy by simulation; B1/B3/B5/B6 hard or impossible)");
}
