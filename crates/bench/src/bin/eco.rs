//! §6.3 side effect: injection gates as ECO spares.
//!
//! "We performed ECO (post-route fixes) six times and we used these
//! remaining gates twice."

use veridic::prelude::*;

fn main() {
    println!("ECO replay: post-route fixes vs. injection spare gates");
    println!("{:<6} {:<12} Used injection spares?", "ECO", "Kind");
    let events = eco_replay();
    for e in &events {
        println!(
            "{:<6} {:<12} {}",
            e.index,
            format!("{:?}", e.kind),
            if e.used_injection_spares { "yes (tied-off selector muxes repurposed)" } else { "no (needs drive strength)" }
        );
    }
    let used = events.iter().filter(|e| e.used_injection_spares).count();
    println!();
    println!("{used} of {} ECOs served from injection spares (paper: 2 of 6)", events.len());
}
