//! Compares a `cargo bench` output capture against the checked-in
//! `BENCH_BASELINE.json` so perf regressions are visible in review.
//!
//! Usage:
//!
//! ```text
//! CRITERION_ONE_SHOT=1 cargo bench -p veridic-bench | tee bench-out.txt
//! cargo run --release -p veridic-bench --bin bench_compare -- \
//!     [--fail-on-regression <prefix>] bench-out.txt [BENCH_BASELINE.json]
//! ```
//!
//! The comparison is advisory by default (exits 0): one-shot samples on
//! a shared CI worker are too noisy to gate every microbench on, but a
//! consistent 2x swing across benches is exactly what a reviewer should
//! see. `--fail-on-regression <prefix>` turns the report into a gate
//! for the bench ids under that prefix: any such id more than 25%
//! slower than its baseline — or missing from the run — fails the
//! invocation with exit 1. CI gates `fig7/` this way: those runs are
//! seconds-long fixpoints, far above one-shot noise.

use std::collections::BTreeMap;

/// The gate threshold: a prefix-matched bench id this much slower than
/// its baseline fails a `--fail-on-regression` run.
const GATE_THRESHOLD_PCT: f64 = 25.0;

/// Baseline metadata key recording `available_parallelism()` on the
/// host that took the snapshot. Wall-clock comparisons between hosts
/// with different core counts are apples-to-oranges for the parallel
/// bench ids (`monolithic_parallel`, `partitioned_parallel`, ...), so
/// a mismatch earns a prominent advisory warning (never a gate
/// failure: node counts stay deterministic regardless).
const HOST_CORES_KEY: &str = "host_available_parallelism";

/// The warning line for a snapshot-host/current-host core-count
/// mismatch, or `None` when the counts agree. A baseline without the
/// key (pre-PR-7 snapshots) also warns, so stale baselines surface.
fn core_count_warning(baseline_cores: Option<f64>, host_cores: usize) -> Option<String> {
    match baseline_cores {
        Some(b) if b as usize == host_cores => None,
        Some(b) => Some(format!(
            "WARNING: baseline was recorded on a {}-core host but this host has {} \
             (available_parallelism); wall-clock deltas on parallel bench ids are \
             not comparable",
            b as usize, host_cores
        )),
        None => Some(format!(
            "WARNING: baseline records no `{HOST_CORES_KEY}`; this host has \
             {host_cores} cores and parallel bench timings may not be comparable"
        )),
    }
}

/// The `--fail-on-regression` verdicts: every baseline bench id under
/// `prefix` that regressed past [`GATE_THRESHOLD_PCT`] or is absent
/// from the current run, as human-readable lines. Empty means the gate
/// passes.
fn gate_failures(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    prefix: &str,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base_s) in baseline {
        if !name.starts_with(prefix) {
            continue;
        }
        match current.get(name.as_str()) {
            Some(cur_s) => {
                let delta = (cur_s - base_s) / base_s * 100.0;
                if delta > GATE_THRESHOLD_PCT {
                    failures.push(format!(
                        "{name}: {} -> {} ({delta:+.1}%, threshold +{GATE_THRESHOLD_PCT:.0}%)",
                        fmt_secs(*base_s),
                        fmt_secs(*cur_s)
                    ));
                }
            }
            None => failures.push(format!("{name}: missing from this run")),
        }
    }
    failures
}

fn main() {
    let mut fail_prefix: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--fail-on-regression" {
            match args.next() {
                Some(p) => fail_prefix = Some(p),
                None => {
                    eprintln!("--fail-on-regression needs a bench-id prefix (e.g. fig7/)");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(a);
        }
    }
    let Some(out_path) = positional.first() else {
        eprintln!(
            "usage: bench_compare [--fail-on-regression <prefix>] \
             <bench-output.txt> [BENCH_BASELINE.json]"
        );
        std::process::exit(2);
    };
    let default_baseline = "BENCH_BASELINE.json".to_string();
    let baseline_path = positional.get(1).unwrap_or(&default_baseline);

    let output = std::fs::read_to_string(out_path)
        .unwrap_or_else(|e| panic!("cannot read {out_path}: {e}"));
    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));

    let full_baseline = parse_baseline(&baseline_text);
    // Node baselines are stored flat alongside the timings under
    // "nodes:<bench-id>" keys; numeric host metadata ("host_..." keys)
    // is split out so it never lands in the timing comparison.
    let mut baseline = BTreeMap::new();
    let mut node_baseline = BTreeMap::new();
    let mut baseline_cores = None;
    for (k, v) in full_baseline {
        if k == HOST_CORES_KEY {
            baseline_cores = Some(v);
        } else if let Some(name) = k.strip_prefix("nodes:") {
            node_baseline.insert(name.to_string(), v);
        } else {
            baseline.insert(k, v);
        }
    }
    let current = parse_bench_output(&output);
    let current_nodes = parse_peak_nodes(&output);

    println!("Bench comparison vs {baseline_path} (advisory)");
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if let Some(warning) = core_count_warning(baseline_cores, host_cores) {
        println!("{warning}");
    }
    println!("{:<42} {:>12} {:>12} {:>9}", "bench", "baseline", "current", "delta");
    let mut missing: Vec<&str> = Vec::new();
    for (name, base_s) in &baseline {
        match current.get(name.as_str()) {
            Some(cur_s) => {
                let delta = (cur_s - base_s) / base_s * 100.0;
                let flag = if delta > 25.0 {
                    "  <-- slower"
                } else if delta < -25.0 {
                    "  <-- faster"
                } else {
                    ""
                };
                println!(
                    "{:<42} {:>12} {:>12} {:>+8.1}%{}",
                    name,
                    fmt_secs(*base_s),
                    fmt_secs(*cur_s),
                    delta,
                    flag
                );
            }
            None => missing.push(name),
        }
    }
    for name in missing {
        println!("{name:<42} (not in this run)");
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            println!("{name:<42} (new; not in baseline)");
        }
    }

    // Live-peak-nodes comparison: a creeping live peak is a GC
    // regression even when wall-clock looks fine (one-shot timing noise
    // hides it; node counts are deterministic).
    if !node_baseline.is_empty() || !current_nodes.is_empty() {
        println!();
        println!("Live-peak BDD nodes vs baseline (deterministic)");
        println!("{:<42} {:>12} {:>12} {:>9}", "bench", "baseline", "current", "delta");
        for (name, base_n) in &node_baseline {
            match current_nodes.get(name.as_str()) {
                Some(cur_n) if *base_n > 0.0 => {
                    let delta = (*cur_n as f64 - *base_n) / *base_n * 100.0;
                    let flag = if delta > 10.0 { "  <-- more live nodes" } else { "" };
                    println!(
                        "{:<42} {:>12} {:>12} {:>+8.1}%{}",
                        name, *base_n as u64, cur_n, delta, flag
                    );
                }
                // A zero baseline means the SAT portfolio settled the
                // bench before any BDD engine ran; flag any change.
                Some(cur_n) => {
                    let flag = if *cur_n > 0 { "  <-- BDD engines now engaged" } else { "" };
                    println!("{:<42} {:>12} {:>12} {:>9}{}", name, 0, cur_n, "-", flag);
                }
                None => println!("{name:<42} (not in this run)"),
            }
        }
        for name in current_nodes.keys() {
            if !node_baseline.contains_key(name) {
                println!("{name:<42} (new; not in baseline)");
            }
        }
    }

    if let Some(prefix) = &fail_prefix {
        let failures = gate_failures(&baseline, &current, prefix);
        println!();
        if failures.is_empty() {
            println!(
                "Gate: no `{prefix}*` bench regressed more than \
                 {GATE_THRESHOLD_PCT:.0}% vs baseline"
            );
        } else {
            eprintln!("Gate FAILED: `{prefix}*` benches regressed vs baseline:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

/// Parses the flat `"name": seconds` map out of `BENCH_BASELINE.json`.
/// The file is ours and stays flat, so a line-based scan is enough — no
/// JSON dependency needed offline.
fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((name, value)) = rest.split_once("\":") else { continue };
        if let Ok(v) = value.trim().parse::<f64>() {
            // Metadata keys ("host", "mode", ...) hold strings and fail
            // the parse above, so only bench entries land here.
            map.insert(name.to_string(), v);
        }
    }
    map
}

/// Parses the vendored criterion shim's result lines:
/// `<name>  min <value> <unit>  median ...`.
fn parse_bench_output(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(name) = parts.next() else { continue };
        let rest: Vec<&str> = parts.collect();
        let Some(pos) = rest.iter().position(|t| *t == "min") else {
            continue;
        };
        let (Some(value), Some(unit)) = (rest.get(pos + 1), rest.get(pos + 2)) else {
            continue;
        };
        let Ok(v) = value.parse::<f64>() else { continue };
        let secs = match *unit {
            "s" => v,
            "ms" => v * 1e-3,
            "µs" | "us" => v * 1e-6,
            "ns" => v * 1e-9,
            _ => continue,
        };
        map.insert(name.to_string(), secs);
    }
    map
}

/// Parses the benches' peak-live-node report lines:
/// `<name>  peak_live <count> nodes`.
fn parse_peak_nodes(text: &str) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let Some(name) = parts.next() else { continue };
        let rest: Vec<&str> = parts.collect();
        let Some(pos) = rest.iter().position(|t| *t == "peak_live") else {
            continue;
        };
        let (Some(value), Some(unit)) = (rest.get(pos + 1), rest.get(pos + 2)) else {
            continue;
        };
        if *unit != "nodes" {
            continue;
        }
        let Ok(v) = value.parse::<u64>() else { continue };
        map.insert(name.to_string(), v);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_output_lines() {
        let out = "fig7/monolithic_generous                 min    60.91 s  median    60.91 s  mean    60.91 s  (1 samples)\n\
                   fig7/partitioned_tight                   min   18.38 ms  median   18.38 ms  mean   18.38 ms  (1 samples)\n\
                   noise line without keyword\n";
        let m = parse_bench_output(out);
        assert_eq!(m.len(), 2);
        assert!((m["fig7/monolithic_generous"] - 60.91).abs() < 1e-9);
        assert!((m["fig7/partitioned_tight"] - 0.01838).abs() < 1e-9);
    }

    #[test]
    fn parses_peak_node_lines() {
        let out = "fig7/monolithic_generous  peak_live 123456 nodes\n\
                   fig7/partitioned_tight  peak_live 789 nodes\n\
                   some/bench  min 1.0 s  median 1.0 s\n";
        let m = parse_peak_nodes(out);
        assert_eq!(m.len(), 2);
        assert_eq!(m["fig7/monolithic_generous"], 123456);
        assert_eq!(m["fig7/partitioned_tight"], 789);
        // Node lines must not leak into the timing map.
        assert!(parse_bench_output(out).contains_key("some/bench"));
        assert!(!parse_bench_output(out).contains_key("fig7/partitioned_tight"));
    }

    #[test]
    fn gate_flags_only_prefixed_regressions_and_missing_ids() {
        let mut baseline = BTreeMap::new();
        baseline.insert("fig7/monolithic_generous".to_string(), 10.0);
        baseline.insert("fig7/partitioned_tight".to_string(), 1.0);
        baseline.insert("fig7/gone".to_string(), 2.0);
        baseline.insert("sat/php_5_4".to_string(), 0.1);
        let mut current = BTreeMap::new();
        current.insert("fig7/monolithic_generous".to_string(), 13.0); // +30%
        current.insert("fig7/partitioned_tight".to_string(), 1.2); // +20%
        current.insert("sat/php_5_4".to_string(), 10.0); // huge, but unprefixed

        let failures = gate_failures(&baseline, &current, "fig7/");
        assert_eq!(failures.len(), 2);
        assert!(failures[0].starts_with("fig7/gone: missing"));
        assert!(failures[1].starts_with("fig7/monolithic_generous:"));

        // Within threshold on every present id -> only the missing one.
        current.insert("fig7/monolithic_generous".to_string(), 12.0); // +20%
        current.insert("fig7/gone".to_string(), 2.0);
        assert!(gate_failures(&baseline, &current, "fig7/").is_empty());
    }

    #[test]
    fn core_count_mismatch_warns_but_match_is_silent() {
        assert!(core_count_warning(Some(4.0), 4).is_none());
        let w = core_count_warning(Some(4.0), 1).unwrap();
        assert!(w.contains("4-core") && w.contains("has 1"), "{w}");
        let missing = core_count_warning(None, 8).unwrap();
        assert!(missing.contains(HOST_CORES_KEY), "{missing}");
    }

    #[test]
    fn host_cores_key_is_metadata_not_a_bench_id() {
        let text = format!(
            "{{\n  \"{HOST_CORES_KEY}\": 1,\n  \"fig7/monolithic_generous\": 60.91\n}}\n"
        );
        let m = parse_baseline(&text);
        // The flat parser keeps it (it is numeric); main() must split it
        // out before the timing comparison — this pins that it parses.
        assert_eq!(m[HOST_CORES_KEY], 1.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn parses_flat_baseline_json() {
        let text = "{\n  \"host\": \"ci\",\n  \"fig7/monolithic_generous\": 60.91,\n  \"sat/php_5_4\": 0.5\n}\n";
        let m = parse_baseline(text);
        assert_eq!(m.len(), 2);
        assert!((m["fig7/monolithic_generous"] - 60.91).abs() < 1e-9);
    }
}
