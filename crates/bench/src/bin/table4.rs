//! Table 4 reproduction: area increase caused by the error injection
//! feature, per module category (gate-area model over the full chip).

use veridic::prelude::*;

fn main() {
    eprintln!("generating the full-scale chip ...");
    let chip = Chip::generate(&ChipConfig { scale: Scale::Full, with_bugs: false });
    let rows = area_report(&chip, &CellCosts::default());
    print!("{}", render_table4(&rows));
    println!();
    println!("(paper reports A: 1.4%, B: 0.4%, D: 0.2% — C and E were not listed)");
    println!("per-module spread:");
    let per_cat = category_increase(&rows);
    for (cat, _) in per_cat {
        let mut incs: Vec<f64> = rows
            .iter()
            .filter(|r| r.category == cat)
            .map(|r| r.increase_percent())
            .collect();
        incs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  {}: min {:.2}%  median {:.2}%  max {:.2}%  ({} modules)",
            cat,
            incs.first().unwrap(),
            incs[incs.len() / 2],
            incs.last().unwrap(),
            incs.len()
        );
    }
}
