//! Structural lint gate: runs the static design lints over every
//! in-tree chipgen stereotype property and compares the findings
//! against the checked-in goldens.
//!
//! For each Small-scale leaf plan, the clean (bug-free) module is made
//! Verifiable, its stereotype vunits are generated and compiled, and
//! each property cone gets the full static treatment:
//!
//! * [`veridic::prelude::analyze`] — ternary sweep, dead logic,
//!   fanout hot spots, rank-unreachable latches on the lowered AIG;
//! * `Module::comb_loops` on the instrumented netlist, merged into the
//!   report's `comb_loops` (AIGs are acyclic by construction, so the
//!   boundary is the only place cycles can exist).
//!
//! The rendered findings are compared line-for-line against
//! `STRUCTURE_GOLDENS.txt` at the repo root. Any drift — a new finding
//! appearing or a recorded one disappearing — exits 1 so CI catches
//! structural regressions the functional suites cannot see.
//!
//! Usage:
//!
//! ```text
//! cargo run -p veridic-bench --bin structure_lint            # check
//! cargo run -p veridic-bench --bin structure_lint -- --write # regen
//! ```

use veridic::prelude::*;
use veridic_bench::aig_of;

/// Renders the structural findings for every Small-scale stereotype
/// property, one block per property cone.
fn render_all() -> String {
    let mut out = String::new();
    out.push_str(
        "# Structural lint goldens: `cargo run -p veridic-bench --bin structure_lint -- --write`\n\
         # One block per Small-scale chipgen stereotype property; `clean` means the\n\
         # static analysis (sweep + structure) found nothing to report.\n",
    );
    for plan in &build_plans(Scale::Small) {
        let module = build_leaf(plan, None);
        let vm = make_verifiable(&module).expect("chipgen module is transformable");
        for (g, compiled) in generate_all(&vm).expect("vunits generate") {
            let aig = aig_of(&compiled);
            let mut report = analyze(&aig);
            for cycle in compiled.module.comb_loops() {
                report.comb_loops.push(cycle.join(" -> "));
            }
            let label = format!("{}/{:?}", plan.name, g.ptype);
            if report.is_clean() {
                out.push_str(&format!("{label}: clean\n"));
            } else {
                out.push_str(&format!("{label}:\n"));
                for line in report.render() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
        }
    }
    out
}

fn main() {
    let golden_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("STRUCTURE_GOLDENS.txt");
    let current = render_all();
    if std::env::args().any(|a| a == "--write") {
        std::fs::write(&golden_path, &current).expect("write goldens");
        println!("structure_lint: wrote {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        eprintln!(
            "structure_lint: cannot read {} ({e}); run with --write to create it",
            golden_path.display()
        );
        std::process::exit(1);
    });
    if golden == current {
        println!("structure_lint: findings match the goldens");
        return;
    }
    eprintln!("structure_lint: findings drifted from STRUCTURE_GOLDENS.txt:");
    for (i, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        if g != c {
            eprintln!("  line {}: golden `{g}` vs current `{c}`", i + 1);
        }
    }
    let (gl, cl) = (golden.lines().count(), current.lines().count());
    if gl != cl {
        eprintln!("  line count changed: {gl} -> {cl}");
    }
    eprintln!("re-run with `-- --write` if the change is intentional");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_findings_are_deterministic() {
        assert_eq!(render_all(), render_all());
    }
}
