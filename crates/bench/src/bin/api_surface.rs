//! Public-API surface snapshot: dumps the `veridic` facade's
//! re-exported item list and diffs it against the checked-in
//! `API_SURFACE.txt`, so API breaks are deliberate (and reviewed)
//! rather than accidental.
//!
//! Usage:
//!
//! ```text
//! cargo run -p veridic-bench --bin api_surface            # print the surface
//! cargo run -p veridic-bench --bin api_surface -- --check # diff vs API_SURFACE.txt (CI)
//! cargo run -p veridic-bench --bin api_surface -- --write # regenerate the snapshot
//! ```
//!
//! The surface is extracted from the facade's source (`pub use`
//! declarations: the crate-level module re-exports and the `prelude`
//! items), embedded at compile time — so the tool cannot drift from the
//! code it audits. Renaming, removing or adding a re-export changes
//! the dump; the CI `--check` step (next to clippy `-D warnings`) then
//! fails until `API_SURFACE.txt` is regenerated, making the diff part
//! of the reviewed change.

/// The facade source, embedded at compile time.
const FACADE_SRC: &str = include_str!("../../../veridic/src/lib.rs");

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let surface = extract_surface(FACADE_SRC);
    let dump = surface.join("\n") + "\n";

    let snapshot_path = format!("{}/../../API_SURFACE.txt", env!("CARGO_MANIFEST_DIR"));
    match args.first().map(String::as_str) {
        None => print!("{dump}"),
        Some("--write") => {
            std::fs::write(&snapshot_path, &dump)
                .unwrap_or_else(|e| panic!("cannot write {snapshot_path}: {e}"));
            println!("wrote {} items to {snapshot_path}", surface.len());
        }
        Some("--check") => {
            let want = std::fs::read_to_string(&snapshot_path)
                .unwrap_or_else(|e| panic!("cannot read {snapshot_path}: {e}"));
            let want: Vec<&str> = want.lines().collect();
            let got: Vec<&str> = surface.iter().map(String::as_str).collect();
            let removed: Vec<&&str> = want.iter().filter(|i| !got.contains(i)).collect();
            let added: Vec<&&str> = got.iter().filter(|i| !want.contains(i)).collect();
            if removed.is_empty() && added.is_empty() {
                println!("API surface unchanged ({} items)", got.len());
                return;
            }
            eprintln!("API surface drift vs API_SURFACE.txt:");
            for item in &removed {
                eprintln!("  - {item}");
            }
            for item in &added {
                eprintln!("  + {item}");
            }
            eprintln!(
                "\nIf this break is deliberate, regenerate the snapshot:\n    \
                 cargo run -p veridic-bench --bin api_surface -- --write"
            );
            std::process::exit(1);
        }
        Some(other) => {
            eprintln!("usage: api_surface [--check | --write] (got {other:?})");
            std::process::exit(2);
        }
    }
}

/// Extracts the sorted re-export list from the facade source: one
/// `mod <name>` line per crate-level `pub use <crate> as <name>;` and
/// one `prelude::<item>` line per item of the prelude's `pub use`
/// declarations.
fn extract_surface(src: &str) -> Vec<String> {
    let prelude_start = src.find("pub mod prelude").unwrap_or(src.len());
    let mut items = Vec::new();
    for (offset, decl) in pub_use_decls(src) {
        let in_prelude = offset >= prelude_start;
        for item in decl_items(&decl) {
            if in_prelude {
                items.push(format!("prelude::{item}"));
            } else if let Some((_, alias)) = item.split_once(" as ") {
                items.push(format!("mod {alias}"));
            } else {
                items.push(format!("mod {item}"));
            }
        }
    }
    items.sort();
    items.dedup();
    items
}

/// Every `pub use …;` declaration with its byte offset (may span
/// lines). Comment and doc-comment lines are blanked first — a doc
/// example containing `pub use` must not leak phantom items into the
/// snapshot (blanking, not removing, keeps byte offsets aligned with
/// the original source for the prelude split).
fn pub_use_decls(src: &str) -> Vec<(usize, String)> {
    let stripped: String = src
        .lines()
        .map(|l| {
            if l.trim_start().starts_with("//") {
                " ".repeat(l.len()) + "\n"
            } else {
                l.to_string() + "\n"
            }
        })
        .collect();
    let src = stripped.as_str();
    let mut out = Vec::new();
    let mut rest = 0;
    while let Some(pos) = src[rest..].find("pub use ") {
        let start = rest + pos;
        let Some(end) = src[start..].find(';') else { break };
        out.push((start, src[start + "pub use ".len()..start + end].to_string()));
        rest = start + end + 1;
    }
    out
}

/// The leaf items of one declaration body: `a::b::{X, Y as Z}` yields
/// `["X", "Y as Z"]`; `a::b::X` yields `["X"]`. Nested use groups are
/// rejected loudly — a corrupted snapshot would quietly erode the
/// guard, a panic gets fixed.
fn decl_items(decl: &str) -> Vec<String> {
    let decl = decl.trim();
    match decl.split_once('{') {
        Some((_, body)) => {
            assert!(
                !body.contains('{'),
                "nested use group in the facade ({decl:?}) — flatten the `pub use` so the \
                 API surface snapshot stays one item per line"
            );
            body.trim_end_matches('}')
                .split(',')
                .map(|i| i.split_whitespace().collect::<Vec<_>>().join(" "))
                .filter(|i| !i.is_empty())
                .collect()
        }
        None => {
            let leaf = decl.rsplit("::").next().unwrap_or(decl).trim();
            vec![leaf.to_string()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_mods_and_prelude_items() {
        let src = "pub use veridic_aig as aig;\n\
                   pub mod prelude {\n\
                       pub use veridic_mc::{check, CheckOptions};\n\
                       pub use veridic_aig::Aig;\n\
                   }\n";
        let items = extract_surface(src);
        assert_eq!(
            items,
            vec![
                "mod aig".to_string(),
                "prelude::Aig".to_string(),
                "prelude::CheckOptions".to_string(),
                "prelude::check".to_string(),
            ]
        );
    }

    #[test]
    fn doc_comment_pub_use_is_ignored() {
        let src = "//! ```\n\
                   //! pub use veridic::prelude::*;\n\
                   //! ```\n\
                   /// pub use fake::Thing;\n\
                   pub use veridic_aig as aig;\n";
        assert_eq!(extract_surface(src), vec!["mod aig".to_string()]);
    }

    #[test]
    #[should_panic(expected = "nested use group")]
    fn nested_use_groups_fail_loud() {
        let src = "pub use veridic_core::{flow::{run_campaign}, other};\n";
        let _ = extract_surface(src);
    }

    #[test]
    fn the_real_facade_has_a_nontrivial_surface() {
        let items = extract_surface(FACADE_SRC);
        assert!(items.contains(&"mod mc".to_string()));
        assert!(items.contains(&"prelude::Portfolio".to_string()));
        assert!(items.len() > 50, "got {}", items.len());
    }
}
