//! Table 1 reproduction: chip implementation overview.
//!
//! Die size, technology and frequency are the paper's constants (they
//! parameterise the impact model); the logic size is measured by the
//! gate-area model on the generated chip.

use veridic::prelude::*;

fn main() {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Full, with_bugs: false });
    let costs = CellCosts::default();
    let mut gates = 0.0;
    for mi in chip.modules() {
        let m = chip.design().module(mi.name()).unwrap();
        gates += module_area(m, &costs);
    }
    println!("Table 1. Chip implementation");
    println!("{:<18} Implementation", "Item");
    println!("{:<18} 12.8 x 12.5 mm2   (paper constant)", "Chip die size");
    println!("{:<18} 0.11 um CMOS ASIC (paper constant; sets the cell model)", "Technology");
    println!("{:<18} {:.2}M gate-units (synthetic chip, gate-area model)", "Logic size", gates / 1.0e6);
    println!("{:<18} 250MHz            (paper constant; sets the 4ns cycle)", "Core frequency");
    println!();
    println!("leaf modules: {} in 5 categories; checkpoint census: 2047 properties", chip.modules().len());
    println!("(paper reports 3.5M gates; the synthetic chip reproduces the module/");
    println!(" checkpoint structure, with payload logic calibrated for Table 4 ratios)");
}
