//! §6.3 timing reproduction: the injection selector costs ~200 ps,
//! a few percent of the 250 MHz cycle — "no timing closure issue".

use veridic::prelude::*;

fn main() {
    let t = TimingReport::model();
    println!("Timing impact of the error-injection selector");
    println!("  selector (2:1 mux) delay : {:>7.0} ps", t.selector_ps);
    println!("  clock period @250 MHz    : {:>7.0} ps", t.period_ps);
    println!("  selector share of cycle  : {:>6.1} %", t.percent_of_period());
    println!();
    println!("(paper: 'about 200 ps that are about 4 % of total delay when");
    println!(" frequency is 250MHz. This timing delay was acceptable ... and");
    println!(" caused no timing closure issue.')");
}
