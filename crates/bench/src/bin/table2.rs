//! Table 2 reproduction: number of verified properties per category and
//! bugs found by the formal campaign.
//!
//! Usage: `cargo run --release -p veridic-bench --bin table2 [-- --small]`
//! (full scale checks all 2047 properties; expect minutes).

use std::time::Instant;
use veridic::prelude::*;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { Scale::Small } else { Scale::Full };
    eprintln!("generating chip at {scale:?} scale with the seven seeded bugs ...");
    let chip = Chip::generate(&ChipConfig { scale, with_bugs: true });
    eprintln!("running the campaign over {} leaf modules ...", chip.modules().len());
    let t0 = Instant::now();
    let report = run_campaign(&chip, &CampaignConfig::default());
    for (m, e) in &report.errors {
        eprintln!("ERROR {m}: {e}");
    }
    print!("{}", report.render_table2(&chip));
    println!();
    println!("P0: Ability of Error Detection");
    println!("P1: Soundness of Internal States");
    println!("P2: Output Data Integrity");
    println!("P3: Other Properties");
    println!();
    println!(
        "checked {} properties in {:?} ({} falsified, {} resource-out)",
        report.records.len(),
        t0.elapsed(),
        report.failures().len(),
        report.resource_outs().len()
    );
    let pre = report.preanalysis_totals();
    println!(
        "preanalysis: {} cones swept, {} stuck latches folded ({} ANDs), {} properties \
         concluded statically",
        pre.bads_analyzed,
        pre.stuck_latches,
        pre.folded_ands,
        report.vacuous_count()
    );
    println!("(paper: 2047 properties, ~20 h on a 2004 workstation, 7 logic bugs)");
}
