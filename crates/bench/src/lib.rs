//! # veridic-bench
//!
//! Shared plumbing for the table/figure regeneration binaries and the
//! Criterion benchmarks. Every table and figure of the paper's
//! evaluation has a `cargo run -p veridic-bench --bin <name>` target:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (chip implementation) | `table1` |
//! | Table 2 (verified properties) | `table2` |
//! | Table 3 (bug classification) | `table3` |
//! | Table 4 (area increase) | `table4` |
//! | §6.3 timing / ECO side effect | `timing`, `eco` |
//! | Figures 2–4, 6 (PSL / Verifiable RTL) | `figures` |
//! | Figure 7 (Divide-and-Conquer) | `fig7` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use veridic::prelude::*;

/// Builds the checkable AIG of a compiled vunit: asserts become bads,
/// assumes become invariant constraints.
///
/// # Panics
///
/// Panics if the instrumented module fails to lower (generator bug).
pub fn aig_of(compiled: &veridic::psl::CompiledVUnit) -> Aig {
    let lowered = compiled.module.to_aig().expect("instrumented module lowers");
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    aig
}

/// Checks every assertion of a module's stereotype vunits; returns
/// `(proved, falsified, resource_out)` counts.
///
/// # Panics
///
/// Panics if the module cannot be transformed or its properties fail to
/// compile.
pub fn check_module(module: &Module, opts: &CheckOptions) -> (usize, usize, usize) {
    let vm = make_verifiable(module).expect("transformable");
    let portfolio = Portfolio::default();
    let (mut p, mut f, mut r) = (0, 0, 0);
    for (_g, compiled) in generate_all(&vm).expect("vunits generate") {
        let aig = aig_of(&compiled);
        for idx in 0..compiled.asserts.len() {
            let mut stats = CheckStats::default();
            match portfolio.check_bad(&aig, idx, opts, &mut stats) {
                Verdict::Proved { .. } => p += 1,
                Verdict::Falsified(_) => f += 1,
                Verdict::ResourceOut { .. } => r += 1,
            }
        }
    }
    (p, f, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_module_counts_cleanly() {
        let plan = &build_plans(Scale::Small)[0];
        let m = build_leaf(plan, None);
        let (p, f, r) = check_module(&m, &CheckOptions::default());
        assert_eq!(f, 0);
        assert_eq!(r, 0);
        assert_eq!(p, plan.p0() + plan.p1() + plan.p2() + plan.p3);
    }
}
