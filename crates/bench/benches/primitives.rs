//! Criterion benchmarks for the engine primitives: BDD operations,
//! SAT solving, AIG construction and bit-blasting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use veridic::bdd::BddManager;
use veridic::prelude::*;
use veridic::sat::{Lit as SLit, SolveResult, Solver, Var as SVar};

fn bdd_ops(c: &mut Criterion) {
    c.bench_function("bdd/xor_chain_32", |b| {
        b.iter(|| {
            let mut m = BddManager::new(1 << 20);
            let mut f = m.var(0).unwrap();
            for v in 1..32 {
                let x = m.var(v).unwrap();
                f = m.xor(f, x).unwrap();
            }
            std::hint::black_box(m.size(f))
        })
    });
    c.bench_function("bdd/relational_product_16", |b| {
        b.iter(|| {
            let mut m = BddManager::new(1 << 20);
            // f = AND of xnor(2i, 2i+1); quantify the even vars.
            let mut f = veridic::bdd::NodeId::TRUE;
            for i in 0..16u32 {
                let a = m.var(2 * i).unwrap();
                let b2 = m.var(2 * i + 1).unwrap();
                let t = m.xnor(a, b2).unwrap();
                f = m.and(f, t).unwrap();
            }
            let evens: Vec<u32> = (0..16).map(|i| 2 * i).collect();
            let cube = m.cube(&evens).unwrap();
            let g = m.exists(f, cube).unwrap();
            std::hint::black_box(g)
        })
    });
}

fn sat_ops(c: &mut Criterion) {
    c.bench_function("sat/php_5_4", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let n = 5;
            let m = 4;
            let mut p = vec![vec![SVar(0); m]; n];
            for row in p.iter_mut() {
                for slot in row.iter_mut() {
                    *slot = s.new_var();
                }
            }
            for row in &p {
                let cls: Vec<SLit> = row.iter().map(|v| SLit::pos(*v)).collect();
                s.add_clause(&cls);
            }
            for j in 0..m {
                for (i1, row1) in p.iter().enumerate() {
                    for row2 in &p[i1 + 1..] {
                        s.add_clause(&[SLit::neg(row1[j]), SLit::neg(row2[j])]);
                    }
                }
            }
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
        })
    });
}

fn lowering(c: &mut Criterion) {
    let plan = &build_plans(Scale::Small)[0];
    let module = build_leaf(plan, None);
    let vm = make_verifiable(&module).unwrap();
    c.bench_function("netlist/bit_blast_leaf", |b| {
        b.iter_batched(
            || vm.module.clone(),
            |m| std::hint::black_box(m.to_aig().unwrap().aig.num_ands()),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("psl/compile_stereotypes", |b| {
        b.iter(|| std::hint::black_box(generate_all(&vm).unwrap().len()))
    });
}

fn sim_throughput(c: &mut Criterion) {
    let plan = &build_plans(Scale::Small)[0];
    let module = build_leaf(plan, None);
    c.bench_function("sim/spec_compliant_1k_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&module).unwrap();
            let mut stim = SpecCompliant::new(7);
            let r = sim.run_with(&mut stim, 1_000, |_| None::<()>).unwrap();
            std::hint::black_box(r)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bdd_ops, sat_ops, lowering, sim_throughput
}
criterion_main!(benches);
