//! Figure 7 benchmark: budget sweep showing where the monolithic check
//! falls over while partitioned corns keep proving (ablation of the
//! deterministic-resource-budget design decision).

use criterion::{criterion_group, criterion_main, Criterion};
use veridic::prelude::*;
use veridic_bench::aig_of;

fn partition(c: &mut Criterion) {
    let module = demo_chain_module(12);
    let vm = make_verifiable(&module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, integ) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
        .unwrap();
    let aig = aig_of(integ);
    let steps = partition_output_integrity(&vm, 0).unwrap();

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("monolithic_generous", |b| {
        b.iter(|| {
            // Time-to-verdict: the chain is correct, so the check must
            // never falsify; whether it proves or exhausts the (generous)
            // budget is exactly the phenomenon Fig. 7 is about.
            let r = check(&aig, &CheckOptions::default());
            assert!(!r.verdict.is_falsified());
            std::hint::black_box(r)
        })
    });
    group.bench_function("partitioned_generous", |b| {
        b.iter(|| {
            let run = run_partition(&steps, &CheckOptions::default());
            assert!(run.all_proved);
        })
    });
    let tight = CheckOptions {
        bdd_nodes: 9_000,
        sat_conflicts: 600,
        bmc_depth: 3,
        induction_depth: 3,
        simple_path: false,
        max_iterations: 200,
        pobdd_window_vars: 0,
        ..CheckOptions::default()
    };
    group.bench_function("partitioned_tight", |b| {
        b.iter(|| {
            let run = run_partition(&steps, &tight);
            assert!(run.all_proved);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = partition
}
criterion_main!(benches);
