//! Figure 7 benchmark: budget sweep showing where the monolithic check
//! falls over while partitioned corns keep proving (ablation of the
//! deterministic-resource-budget design decision).

use criterion::{criterion_group, criterion_main, Criterion};
use veridic::prelude::*;
use veridic_bench::aig_of;

fn partition(c: &mut Criterion) {
    let module = demo_chain_module(12);
    let vm = make_verifiable(&module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, integ) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
        .unwrap();
    let aig = aig_of(integ);
    let steps = partition_output_integrity(&vm, 0).unwrap();

    // Peak live BDD nodes per bench id, captured from the last iteration
    // and printed after the group in a `bench_compare`-parsable format,
    // so GC regressions (live peak creeping back toward nodes-ever-
    // allocated) are visible in review alongside the timings.
    let mono_peak = std::cell::Cell::new(0usize);
    let mono_par_peak = std::cell::Cell::new(0usize);
    let mono_sift_peak = std::cell::Cell::new(0usize);
    let part_gen_peak = std::cell::Cell::new(0usize);
    let part_tight_peak = std::cell::Cell::new(0usize);
    let part_par_workers = std::cell::RefCell::new(Vec::<PartitionWorkerStats>::new());

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("monolithic_generous", |b| {
        b.iter(|| {
            // Time-to-verdict: the chain is correct, so the check must
            // never falsify; whether it proves or exhausts the (generous)
            // budget is exactly the phenomenon Fig. 7 is about.
            let r = check(&aig, &CheckOptions::default());
            assert!(!r.verdict.is_falsified());
            mono_peak.set(r.stats.bdd_nodes);
            std::hint::black_box(r)
        })
    });
    // The same monolithic check with the image computation fanned out
    // across state-space lanes (2 workers, one private manager per
    // lane). Verdict and round count are guaranteed identical to the
    // serial run above; the wall-clock and peak-live deltas — smaller
    // per-lane BDDs doing superlinear ops — are what this id tracks.
    let mono_parallel = CheckOptions::builder().image_workers(2).build();
    group.bench_function("monolithic_parallel", |b| {
        b.iter(|| {
            let r = check(&aig, &mono_parallel);
            assert!(!r.verdict.is_falsified());
            mono_par_peak.set(r.stats.bdd_nodes);
            std::hint::black_box(r)
        })
    });
    // The same monolithic check with dynamic variable reordering armed.
    // Verdict and round count are guaranteed identical to
    // monolithic_generous; the delta between the two ids is the whole
    // point. On this memout-bound run the expected delta is ~zero: the
    // auto-trigger freezes the order once the table passes quota/16,
    // because a better order only delays the quota death (it compresses
    // the intermediates, so more image work fits under the quota before
    // the engine gives up). The id exists to pin that neutrality — any
    // drift means the trigger policy changed cost on the blowup path.
    let mono_sift = CheckOptions::builder().dynamic_reorder(true).build();
    group.bench_function("monolithic_sift", |b| {
        b.iter(|| {
            let r = check(&aig, &mono_sift);
            assert!(!r.verdict.is_falsified());
            mono_sift_peak.set(r.stats.bdd_nodes);
            std::hint::black_box(r)
        })
    });
    group.bench_function("partitioned_generous", |b| {
        b.iter(|| {
            let run = run_partition(&steps, &CheckOptions::default());
            assert!(run.all_proved);
            let peak = run.steps.iter().map(|(_, r)| r.stats.bdd_nodes).max();
            part_gen_peak.set(peak.unwrap_or(0));
        })
    });
    let tight = CheckOptions::builder()
        .bdd_nodes(9_000)
        .sat_conflicts(600)
        .bmc_depth(3)
        .induction_depth(3)
        .simple_path(false)
        .max_iterations(200)
        .pobdd_window_vars(0)
        .build();
    group.bench_function("partitioned_tight", |b| {
        b.iter(|| {
            let run = run_partition(&steps, &tight);
            assert!(run.all_proved);
            let peak = run.steps.iter().map(|(_, r)| r.stats.bdd_nodes).max();
            part_tight_peak.set(peak.unwrap_or(0));
        })
    });
    // Intra-property fan-out: the same tight-budget corns across two
    // worker threads (deterministic round-robin assignment, so the
    // per-worker peaks below are stable run to run and comparable in
    // BENCH_BASELINE.json).
    group.bench_function("partitioned_parallel", |b| {
        b.iter(|| {
            let run = run_partition_with_workers(&steps, &tight, 2);
            assert!(run.all_proved);
            *part_par_workers.borrow_mut() = run.worker_stats;
        })
    });
    group.finish();

    println!("fig7/monolithic_generous  peak_live {} nodes", mono_peak.get());
    println!("fig7/monolithic_parallel  peak_live {} nodes", mono_par_peak.get());
    println!("fig7/monolithic_sift  peak_live {} nodes", mono_sift_peak.get());
    println!("fig7/partitioned_generous  peak_live {} nodes", part_gen_peak.get());
    println!("fig7/partitioned_tight  peak_live {} nodes", part_tight_peak.get());
    let workers = part_par_workers.borrow();
    let par_peak = workers.iter().map(|w| w.peak_bdd_nodes).max().unwrap_or(0);
    println!("fig7/partitioned_parallel  peak_live {par_peak} nodes");
    for (i, w) in workers.iter().enumerate() {
        println!("fig7/partitioned_parallel/w{i}  peak_live {} nodes", w.peak_bdd_nodes);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = partition
}
criterion_main!(benches);
