//! Campaign benchmark: per-module verification latency distribution —
//! the reproduction analogue of the paper's "about 20 hours ... on a
//! typical Linux workstation" (§6.1), scaled to the synthetic chip.

use criterion::{criterion_group, criterion_main, Criterion};
use veridic::prelude::*;
use veridic_bench::check_module;

fn campaign(c: &mut Criterion) {
    let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    // One representative module per category.
    let mut seen = std::collections::BTreeSet::new();
    for mi in chip.modules() {
        if !seen.insert(mi.plan().category) {
            continue;
        }
        let module = chip.design().module(mi.name()).unwrap().clone();
        let n_props = mi.plan().p0() + mi.plan().p1() + mi.plan().p2() + mi.plan().p3;
        group.bench_function(format!("module_{}_{}props", mi.plan().category, n_props), |b| {
            b.iter(|| {
                let (p, f, r) = check_module(&module, &CheckOptions::default());
                assert_eq!((f, r), (0, 0));
                std::hint::black_box(p)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = campaign
}
criterion_main!(benches);
