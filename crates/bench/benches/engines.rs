//! Engine comparison benchmark (ablation: SAT-only vs BDD-only vs POBDD
//! portfolios on the same stereotype properties).

use criterion::{criterion_group, criterion_main, Criterion};
use veridic::prelude::*;
use veridic_bench::aig_of;

fn engines(c: &mut Criterion) {
    let plan = &build_plans(Scale::Small)[0];
    let module = build_leaf(plan, None);
    let vm = make_verifiable(&module).unwrap();
    let vunits = generate_all(&vm).unwrap();
    let (_, soundness) = vunits
        .iter()
        .find(|(g, _)| g.ptype == PropertyType::Soundness)
        .unwrap();
    let aig = aig_of(soundness);

    let portfolio = Portfolio::default();
    let mut group = c.benchmark_group("engines/soundness_property");
    group.sample_size(10);
    group.bench_function("sat_portfolio", |b| {
        let opts = CheckOptions::builder().sat_only(true).build();
        b.iter(|| {
            let mut stats = CheckStats::default();
            assert!(portfolio.check_bad(&aig, 0, &opts, &mut stats).is_proved());
        })
    });
    group.bench_function("bdd_umc", |b| {
        let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
        b.iter(|| {
            let mut stats = CheckStats::default();
            assert!(portfolio.check_bad(&aig, 0, &opts, &mut stats).is_proved());
        })
    });
    group.bench_function("full_portfolio", |b| {
        let opts = CheckOptions::default();
        b.iter(|| {
            let mut stats = CheckStats::default();
            assert!(portfolio.check_bad(&aig, 0, &opts, &mut stats).is_proved());
        })
    });
    group.finish();

    // POBDD ablation: window count sweep on a counter reachability task.
    let mut group = c.benchmark_group("engines/pobdd_windows");
    group.sample_size(10);
    for windows in [0u32, 1, 2, 3] {
        group.bench_function(format!("w{windows}"), |b| {
            let opts = CheckOptions::builder()
                .bdd_only(true)
                .pobdd_window_vars(windows)
                .bdd_nodes(1 << 20)
                .build();
            b.iter(|| {
                let mut stats = CheckStats::default();
                let v = portfolio.check_bad(&aig, 0, &opts, &mut stats);
                assert!(v.is_proved());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = engines
}
criterion_main!(benches);
