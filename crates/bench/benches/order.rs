//! Variable-order benchmark: the same provable property under the
//! natural (pessimal, blocked) order, the FORCE static order, and
//! dynamic reordering.
//!
//! The design is `build_order_stress(N)`: twin registers `a<i>`/`b<i>`
//! that both sample `DIN[i]`, declared all-`a`s-then-all-`b`s, with a
//! never-firing mismatch output. The reached set is the equality
//! relation `a == b`, exponential under the natural order and linear
//! once the twins are interleaved — the textbook order-sensitivity
//! case. All three ids must *complete* (Proved) within the same node
//! quota; the deltas are the point:
//!
//! - `order/natural` pays the exponential reached-set representation,
//! - `order/static_order` recovers the interleaving from the
//!   shared-input structure before the first image (FORCE),
//! - `order/dynamic_reorder` recovers it reactively by sifting once the
//!   table crosses the trigger threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use veridic::prelude::*;

/// Twin-register pairs: large enough that the blocked order's ~2^N-node
/// reached set dominates the run, small enough that the natural id
/// still completes within the quota on a CI worker.
const PAIRS: u32 = 14;

fn order(c: &mut Criterion) {
    let module = build_order_stress(PAIRS);
    let lowered = module.to_aig().unwrap();
    let mut aig = lowered.aig.clone();
    let mismatch = module.ports.iter().find(|p| p.name == "MISMATCH").unwrap().net;
    aig.add_bad("mismatch".to_string(), lowered.bit(mismatch, 0));

    // Pure BDD UMC: SAT/induction would prove the twin invariant
    // instantly and hide the ordering effect entirely.
    let base = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).bdd_nodes(1 << 21);
    let natural = base.clone().build();
    let static_order = base.clone().static_order(true).build();
    let dynamic = base.clone().dynamic_reorder(true).build();

    let natural_peak = std::cell::Cell::new(0usize);
    let static_peak = std::cell::Cell::new(0usize);
    let dynamic_peak = std::cell::Cell::new(0usize);

    let mut group = c.benchmark_group("order");
    group.sample_size(10);
    group.bench_function("natural", |b| {
        b.iter(|| {
            let r = check(&aig, &natural);
            assert!(r.verdict.is_proved(), "natural order must still complete");
            natural_peak.set(r.stats.bdd_nodes);
            std::hint::black_box(r)
        })
    });
    group.bench_function("static_order", |b| {
        b.iter(|| {
            let r = check(&aig, &static_order);
            assert!(r.verdict.is_proved());
            static_peak.set(r.stats.bdd_nodes);
            std::hint::black_box(r)
        })
    });
    group.bench_function("dynamic_reorder", |b| {
        b.iter(|| {
            let r = check(&aig, &dynamic);
            assert!(r.verdict.is_proved());
            dynamic_peak.set(r.stats.bdd_nodes);
            std::hint::black_box(r)
        })
    });
    group.finish();

    println!("order/natural  peak_live {} nodes", natural_peak.get());
    println!("order/static_order  peak_live {} nodes", static_peak.get());
    println!("order/dynamic_reorder  peak_live {} nodes", dynamic_peak.get());
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = order
}
criterion_main!(benches);
