//! Minimal VCD (Value Change Dump) waveform writer.
//!
//! Produces standard VCD viewable in GTKWave; used by the bug-hunt
//! example to dump formal counterexamples replayed on the simulator.

use crate::Simulator;
use std::fmt::Write as _;
use veridic_netlist::{Module, NetId};

/// An in-memory VCD builder tracking a fixed set of nets.
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    nets: Vec<(NetId, String)>, // (net, id-code)
    last: Vec<Option<String>>,
    time: u64,
}

impl VcdWriter {
    /// Starts a VCD capturing every net of `module`.
    pub fn all_nets(module: &Module) -> Self {
        let nets: Vec<NetId> = (0..module.nets.len() as u32).map(NetId).collect();
        Self::new(module, &nets)
    }

    /// Starts a VCD capturing the given nets.
    pub fn new(module: &Module, nets: &[NetId]) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$date veridic $end");
        let _ = writeln!(header, "$version veridic-sim $end");
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {} $end", module.name);
        let mut coded = Vec::new();
        for (i, net) in nets.iter().enumerate() {
            let code = id_code(i);
            let n = module.net(*net);
            let _ = writeln!(header, "$var wire {} {} {} $end", n.width, code, n.name);
            coded.push((*net, code));
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        VcdWriter {
            header,
            body: String::new(),
            last: vec![None; coded.len()],
            nets: coded,
            time: 0,
        }
    }

    /// Samples the simulator's settled values at the current cycle.
    pub fn sample(&mut self, sim: &Simulator<'_>) {
        let mut changes = String::new();
        for (i, (net, code)) in self.nets.iter().enumerate() {
            let v = sim.peek_net(*net);
            let bits: String = (0..v.width())
                .rev()
                .map(|b| if v.bit(b) { '1' } else { '0' })
                .collect();
            let formatted = if v.width() == 1 {
                format!("{bits}{code}")
            } else {
                format!("b{bits} {code}")
            };
            if self.last[i].as_deref() != Some(formatted.as_str()) {
                let _ = writeln!(changes, "{formatted}");
                self.last[i] = Some(formatted);
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{}", self.time);
            self.body.push_str(&changes);
        }
        self.time += 1;
    }

    /// Renders the complete VCD document.
    pub fn finish(&self) -> String {
        format!("{}{}", self.header, self.body)
    }
}

/// VCD identifier codes: printable ASCII 33..=126, base-94.
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_netlist::{Expr, Module, PortDir, Value};

    #[test]
    fn vcd_structure_is_wellformed() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 1);
        let y = m.add_port("y", PortDir::Output, 4);
        let sa = m.sig(a);
        let rep = m.arena.add(Expr::Repeat(4, sa));
        m.assign(y, rep);
        let mut sim = Simulator::new(&m).unwrap();
        let mut vcd = VcdWriter::all_nets(&m);
        vcd.sample(&sim);
        sim.poke("a", Value::from_u64(1, 1)).unwrap();
        sim.settle();
        vcd.sample(&sim);
        let out = vcd.finish();
        assert!(out.contains("$var wire 1"));
        assert!(out.contains("$var wire 4"));
        assert!(out.contains("$enddefinitions $end"));
        assert!(out.contains("#0"));
        assert!(out.contains("#1"));
        assert!(out.contains("b1111"));
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        let mut m = Module::new("t");
        let a = m.add_port("a", PortDir::Input, 1);
        let y = m.add_port("y", PortDir::Output, 1);
        let sa = m.sig(a);
        m.assign(y, sa);
        let sim = Simulator::new(&m).unwrap();
        let mut vcd = VcdWriter::all_nets(&m);
        vcd.sample(&sim);
        vcd.sample(&sim);
        vcd.sample(&sim);
        let out = vcd.finish();
        // Only the initial timestamp emits changes.
        assert_eq!(out.matches('#').count(), 1, "{out}");
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c));
        }
    }
}
