//! # veridic-sim
//!
//! A cycle-based two-state logic simulator over flattened netlist
//! modules — the "conventional logic simulation" baseline the paper
//! compares formal verification against.
//!
//! The simulator evaluates continuous assignments in dependency order,
//! advances registers on each [`Simulator::step`], and exposes `poke`/
//! `peek` by net name. [`Stimulus`] implementations drive testbenches;
//! [`VcdWriter`] dumps waveforms.
//!
//! ```
//! use veridic_netlist::{Module, PortDir, Expr, Value};
//! use veridic_sim::Simulator;
//!
//! let mut m = Module::new("inv");
//! let a = m.add_port("a", PortDir::Input, 4);
//! let y = m.add_port("y", PortDir::Output, 4);
//! let sa = m.sig(a);
//! let na = m.arena.add(Expr::Not(sa));
//! m.assign(y, na);
//!
//! let mut sim = Simulator::new(&m)?;
//! sim.poke("a", Value::from_u64(4, 0b1010))?;
//! sim.settle();
//! assert_eq!(sim.peek("y")?.to_u64(), 0b0101);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod stimulus;
mod vcd;

pub use stimulus::{detection_latency, Stimulus, UniformRandom};
pub use vcd::VcdWriter;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use veridic_netlist::{Module, NetId, ValidateError, Value};

/// Simulation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The module failed structural validation.
    Invalid(ValidateError),
    /// An unknown net name was poked or peeked.
    UnknownNet(String),
    /// Poked a net that is not a primary input.
    NotAnInput(String),
    /// Poked with a wrong-width value.
    WidthMismatch {
        /// Net name.
        net: String,
        /// Net width.
        expected: u32,
        /// Value width.
        got: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Invalid(e) => write!(f, "module invalid: {e}"),
            SimError::UnknownNet(n) => write!(f, "unknown net '{n}'"),
            SimError::NotAnInput(n) => write!(f, "net '{n}' is not a primary input"),
            SimError::WidthMismatch { net, expected, got } => {
                write!(f, "poke of '{net}': value width {got}, net width {expected}")
            }
        }
    }
}

impl Error for SimError {}

impl From<ValidateError> for SimError {
    fn from(e: ValidateError) -> Self {
        SimError::Invalid(e)
    }
}

/// A cycle-based simulator instance bound to a flattened module.
///
/// Semantics per cycle: drive inputs ([`Simulator::poke`]), settle
/// combinational logic ([`Simulator::settle`]), observe
/// ([`Simulator::peek`]), advance registers ([`Simulator::step`]).
/// [`Simulator::step`] implies a settle before the clock edge.
#[derive(Clone, Debug)]
pub struct Simulator<'m> {
    m: &'m Module,
    schedule: Vec<usize>,
    values: Vec<Value>,
    cycle: u64,
    dirty: bool,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator and applies reset (registers at their reset
    /// values, inputs all zero, combinational logic settled).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the module has instances, multiple
    /// drivers or combinational cycles.
    pub fn new(m: &'m Module) -> Result<Self, SimError> {
        if !m.is_leaf() {
            return Err(SimError::Invalid(ValidateError::Undriven {
                net: format!("module {} still has instances; flatten first", m.name),
            }));
        }
        m.validate()?;
        let schedule = m.comb_schedule()?;
        let values = m.nets.iter().map(|n| Value::zero(n.width)).collect();
        let mut sim = Simulator { m, schedule, values, cycle: 0, dirty: true };
        sim.reset();
        Ok(sim)
    }

    /// Applies reset: registers to reset values, cycle counter to zero.
    /// Inputs keep their current values.
    pub fn reset(&mut self) {
        for r in &self.m.regs {
            self.values[r.q.0 as usize] = r.reset_value.clone();
        }
        self.cycle = 0;
        self.dirty = true;
        self.settle();
    }

    /// Current cycle number (increments on [`Simulator::step`]).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The module under simulation.
    pub fn module(&self) -> &Module {
        self.m
    }

    /// Drives a primary input.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown nets, non-input nets, or width
    /// mismatches.
    pub fn poke(&mut self, name: &str, v: Value) -> Result<(), SimError> {
        let net = self
            .m
            .find_net(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))?;
        self.poke_net(net, v)
    }

    /// Drives a primary input by id.
    ///
    /// # Errors
    ///
    /// See [`Simulator::poke`].
    pub fn poke_net(&mut self, net: NetId, v: Value) -> Result<(), SimError> {
        let is_input = self.m.inputs().any(|p| p.net == net);
        if !is_input {
            return Err(SimError::NotAnInput(self.m.net(net).name.clone()));
        }
        let w = self.m.net_width(net);
        if v.width() != w {
            return Err(SimError::WidthMismatch {
                net: self.m.net(net).name.clone(),
                expected: w,
                got: v.width(),
            });
        }
        self.values[net.0 as usize] = v;
        self.dirty = true;
        Ok(())
    }

    /// Reads a net's settled value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn peek(&self, name: &str) -> Result<Value, SimError> {
        let net = self
            .m
            .find_net(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))?;
        Ok(self.peek_net(net))
    }

    /// Reads a net's settled value by id.
    pub fn peek_net(&self, net: NetId) -> Value {
        self.values[net.0 as usize].clone()
    }

    /// Re-evaluates combinational logic (idempotent).
    pub fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        for &i in &self.schedule {
            let (net, expr) = self.m.assigns[i];
            let v = {
                let values = &self.values;
                self.m.arena.eval(expr, &|n| values[n.0 as usize].clone())
            };
            self.values[net.0 as usize] = v;
        }
        self.dirty = false;
    }

    /// One clock cycle: settle, compute register next-states from the
    /// settled values, advance all registers simultaneously, re-settle.
    pub fn step(&mut self) {
        self.settle();
        let nexts: Vec<(NetId, Value)> = self
            .m
            .regs
            .iter()
            .map(|r| {
                let values = &self.values;
                (r.q, self.m.arena.eval(r.next, &|n| values[n.0 as usize].clone()))
            })
            .collect();
        for (q, v) in nexts {
            self.values[q.0 as usize] = v;
        }
        self.cycle += 1;
        self.dirty = true;
        self.settle();
    }

    /// Runs `cycles` steps driving inputs from `stim` each cycle; calls
    /// `observe` after settling each cycle (before the clock edge).
    /// Returns the cycle at which `observe` returned `Some`, with its
    /// payload.
    ///
    /// # Errors
    ///
    /// Propagates poke errors from the stimulus.
    pub fn run_with<S: Stimulus, T>(
        &mut self,
        stim: &mut S,
        cycles: u64,
        mut observe: impl FnMut(&Simulator<'_>) -> Option<T>,
    ) -> Result<Option<(u64, T)>, SimError> {
        for _ in 0..cycles {
            for (net, v) in stim.drive(self.m, self.cycle) {
                self.poke_net(net, v)?;
            }
            self.settle();
            if let Some(t) = observe(self) {
                return Ok(Some((self.cycle, t)));
            }
            self.step();
        }
        Ok(None)
    }

    /// Snapshot of all net values by name (diagnostics).
    pub fn snapshot(&self) -> BTreeMap<String, Value> {
        self.m
            .nets
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), self.values[i].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_netlist::{Expr, Module, PortDir};

    /// 4-bit counter with enable.
    fn counter() -> Module {
        let mut m = Module::new("ctr");
        let en = m.add_port("en", PortDir::Input, 1);
        let q = m.add_net("q", 4);
        let y = m.add_port("y", PortDir::Output, 4);
        let sq = m.sig(q);
        let one = m.lit(4, 1);
        let inc = m.arena.add(Expr::Add(sq, one));
        let sen = m.sig(en);
        let nxt = m.arena.add(Expr::Mux { cond: sen, then_: inc, else_: sq });
        m.add_reg(q, nxt, Value::from_u64(4, 0));
        let sq2 = m.sig(q);
        m.assign(y, sq2);
        m
    }

    #[test]
    fn counter_counts_when_enabled() {
        let m = counter();
        let mut sim = Simulator::new(&m).unwrap();
        sim.poke("en", Value::from_u64(1, 1)).unwrap();
        for expect in 0..20u64 {
            sim.settle();
            assert_eq!(sim.peek("y").unwrap().to_u64(), expect % 16);
            sim.step();
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let m = counter();
        let mut sim = Simulator::new(&m).unwrap();
        sim.poke("en", Value::from_u64(1, 1)).unwrap();
        sim.step();
        sim.step();
        sim.poke("en", Value::from_u64(1, 0)).unwrap();
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.peek("y").unwrap().to_u64(), 2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let m = counter();
        let mut sim = Simulator::new(&m).unwrap();
        sim.poke("en", Value::from_u64(1, 1)).unwrap();
        for _ in 0..7 {
            sim.step();
        }
        assert_eq!(sim.cycle(), 7);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.peek("y").unwrap().to_u64(), 0);
    }

    #[test]
    fn poke_validation() {
        let m = counter();
        let mut sim = Simulator::new(&m).unwrap();
        assert!(matches!(
            sim.poke("nonexistent", Value::zero(1)),
            Err(SimError::UnknownNet(_))
        ));
        assert!(matches!(
            sim.poke("y", Value::zero(4)),
            Err(SimError::NotAnInput(_))
        ));
        assert!(matches!(
            sim.poke("en", Value::zero(2)),
            Err(SimError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn simulator_agrees_with_aig_semantics() {
        // Cross-check the word-level simulator against the bit-blasted AIG
        // on a module with arithmetic, mux and parity.
        let mut m = Module::new("mix");
        let a = m.add_port("a", PortDir::Input, 8);
        let b = m.add_port("b", PortDir::Input, 8);
        let y = m.add_port("y", PortDir::Output, 8);
        let p = m.add_port("p", PortDir::Output, 1);
        let q = m.add_net("acc", 8);
        let sa = m.sig(a);
        let sb = m.sig(b);
        let sq = m.sig(q);
        let sum = m.arena.add(Expr::Add(sq, sa));
        let gt = m.arena.add(Expr::Ult(sb, sa));
        let nxt = m.arena.add(Expr::Mux { cond: gt, then_: sum, else_: sb });
        m.add_reg(q, nxt, Value::from_u64(8, 0));
        let sq2 = m.sig(q);
        m.assign(y, sq2);
        let par = m.arena.add(Expr::RedXor(sq2));
        m.assign(p, par);

        let lowered = m.to_aig().unwrap();
        let mut sim = Simulator::new(&m).unwrap();
        // Deterministic pseudo-random inputs.
        let mut state = 0xABCDu64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut aig_inputs = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..50 {
            let av = rnd() & 0xFF;
            let bv = rnd() & 0xFF;
            sim.poke("a", Value::from_u64(8, av)).unwrap();
            sim.poke("b", Value::from_u64(8, bv)).unwrap();
            sim.settle();
            expected.push((sim.peek("y").unwrap().to_u64(), sim.peek("p").unwrap().to_u64()));
            sim.step();
            let mut frame = vec![false; lowered.aig.num_inputs()];
            let a_net = m.find_net("a").unwrap();
            let b_net = m.find_net("b").unwrap();
            for bit in 0..8 {
                frame[lowered.aig.input_index(lowered.input_vars[&(a_net, bit)]).unwrap()] =
                    av >> bit & 1 == 1;
                frame[lowered.aig.input_index(lowered.input_vars[&(b_net, bit)]).unwrap()] =
                    bv >> bit & 1 == 1;
            }
            aig_inputs.push(frame);
        }
        let reports = lowered.aig.simulate(&aig_inputs);
        for (k, rep) in reports.iter().enumerate() {
            // Outputs: y[0..8] then p[0].
            let y: u64 = rep.outputs[..8]
                .iter()
                .enumerate()
                .map(|(i, b)| (*b as u64) << i)
                .sum();
            let p = rep.outputs[8] as u64;
            assert_eq!((y, p), expected[k], "cycle {k}");
        }
    }
}
