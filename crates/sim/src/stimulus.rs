//! Stimulus generation for testbenches.
//!
//! The paper's Table 3 hinges on *what stimulus a realistic testbench
//! produces*: spec-compliant scenarios never write garbage into reserved
//! fields, while formal exploration does. This module provides the
//! generic machinery; design-aware (spec-compliant) generators live with
//! the design generator in `veridic-chipgen`.

use crate::Simulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veridic_netlist::{Module, NetId, Value};

/// A source of per-cycle input assignments.
pub trait Stimulus {
    /// Values to drive this cycle (nets must be primary inputs).
    fn drive(&mut self, module: &Module, cycle: u64) -> Vec<(NetId, Value)>;
}

/// Drives every primary input with uniformly random bits each cycle,
/// optionally pinning some nets to fixed values (e.g. tying off error
/// injection controls, as the wrapper module does in silicon).
#[derive(Debug)]
pub struct UniformRandom {
    rng: StdRng,
    pinned: Vec<(String, Value)>,
}

impl UniformRandom {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        UniformRandom { rng: StdRng::seed_from_u64(seed), pinned: Vec::new() }
    }

    /// Pins a named input to a fixed value (checked at drive time).
    pub fn pin(mut self, name: impl Into<String>, v: Value) -> Self {
        self.pinned.push((name.into(), v));
        self
    }

    /// Random value of the given width.
    pub fn random_value(&mut self, width: u32) -> Value {
        let mut v = Value::zero(width);
        for b in 0..width {
            if self.rng.gen_bool(0.5) {
                v.set_bit(b, true);
            }
        }
        v
    }
}

impl Stimulus for UniformRandom {
    fn drive(&mut self, module: &Module, _cycle: u64) -> Vec<(NetId, Value)> {
        let mut out = Vec::new();
        let inputs: Vec<(NetId, u32, String)> = module
            .inputs()
            .map(|p| (p.net, module.net_width(p.net), p.name.clone()))
            .collect();
        for (net, width, name) in inputs {
            if let Some((_, v)) = self.pinned.iter().find(|(n, _)| *n == name) {
                out.push((net, v.clone()));
            } else {
                out.push((net, self.random_value(width)));
            }
        }
        out
    }
}

/// Measures how many cycles a stimulus needs before `predicate` first
/// holds — the *detection latency* metric behind Table 3's "can be found
/// by logic simulation easily?" classification.
///
/// Returns `None` if the predicate never held within `max_cycles`.
///
/// # Panics
///
/// Panics if the stimulus drives a non-input net (testbench bug).
pub fn detection_latency<S: Stimulus>(
    module: &Module,
    stim: &mut S,
    max_cycles: u64,
    mut predicate: impl FnMut(&Simulator<'_>) -> bool,
) -> Option<u64> {
    let mut sim = Simulator::new(module).expect("module must be simulatable");
    sim.run_with(stim, max_cycles, |s| if predicate(s) { Some(()) } else { None })
        .expect("stimulus drove a non-input net")
        .map(|(cycle, ())| cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_netlist::{Expr, Module, PortDir};

    fn parity_module() -> Module {
        let mut m = Module::new("m");
        let d = m.add_port("d", PortDir::Input, 8);
        let he = m.add_port("he", PortDir::Output, 1);
        let sd = m.sig(d);
        let par = m.arena.add(Expr::RedXor(sd));
        let bad = m.arena.add(Expr::Not(par));
        m.assign(he, bad);
        m
    }

    #[test]
    fn uniform_random_is_deterministic() {
        let m = parity_module();
        let mut a = UniformRandom::new(7);
        let mut b = UniformRandom::new(7);
        for cycle in 0..10 {
            assert_eq!(a.drive(&m, cycle), b.drive(&m, cycle));
        }
        let mut c = UniformRandom::new(8);
        // Different seed should differ somewhere in 10 cycles.
        let diff = (0..10).any(|cyc| a.drive(&m, cyc) != c.drive(&m, cyc));
        assert!(diff);
    }

    #[test]
    fn pinned_inputs_stay_fixed() {
        let m = parity_module();
        let mut s = UniformRandom::new(1).pin("d", Value::from_u64(8, 0x55));
        for cycle in 0..5 {
            let drives = s.drive(&m, cycle);
            assert_eq!(drives.len(), 1);
            assert_eq!(drives[0].1.to_u64(), 0x55);
        }
    }

    #[test]
    fn detection_latency_finds_even_parity_quickly() {
        // A random byte has even parity (he=1) with probability 1/2:
        // expected latency ~1 cycle.
        let m = parity_module();
        let mut stim = UniformRandom::new(42);
        let lat = detection_latency(&m, &mut stim, 1_000, |s| {
            s.peek("he").unwrap().to_u64() == 1
        });
        assert!(lat.is_some());
        assert!(lat.unwrap() < 20, "latency {lat:?} unexpectedly high");
    }

    #[test]
    fn detection_latency_never_fires_on_impossible_predicate() {
        let m = parity_module();
        let mut stim = UniformRandom::new(42).pin("d", Value::from_u64(8, 0x01));
        // Odd parity pinned: he stays 0.
        let lat = detection_latency(&m, &mut stim, 200, |s| {
            s.peek("he").unwrap().to_u64() == 1
        });
        assert_eq!(lat, None);
    }
}
