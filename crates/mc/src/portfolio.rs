//! The portfolio scheduler: an ordered, per-engine-budgeted policy over
//! [`Engine`] implementations, with a typed event log and
//! checkpoint/resume.
//!
//! [`Portfolio::default`] reproduces the historical hard-coded cascade
//! exactly — BMC → k-induction → BDD UMC → POBDD UMC, gated by the
//! `bdd_only`/`sat_only`/`pobdd_window_vars` options — verdicts, stats
//! and rendered event strings included. Beyond the cascade it adds what
//! the flat `check()` entry point never could:
//!
//! * **custom policies** — any ordering of any [`Engine`]
//!   implementations, each with an optional round cap
//!   ([`Portfolio::with_budgeted`]), so a scheduler can say "give BMC
//!   10 frames, then go straight to the BDD engines";
//! * **cooperative interruption** — a [`Budget`] (round limit and/or
//!   [`CancelToken`]) threaded into every engine loop;
//! * **resumable runs** — when the budget trips, the run suspends into
//!   a [`RunCheckpoint`] carrying the engine's serialized state (BDD
//!   reached/frontier sets travel through [`veridic_bdd::transfer`]'s
//!   level-ordered export) and [`Portfolio::resume`] continues it with
//!   identical verdicts.

use crate::bmc::{self, BmcOutcome, InductionOutcome};
use crate::checkpoint::EngineCheckpoint;
use crate::engine::{
    Budget, Engine, EngineCtx, EngineEvent, EngineId, EngineOutcome, EventOutcome, EventResources,
};
use crate::{
    bdd_engine, pobdd, BadCoiStats, CheckOptions, CheckResult, CheckStats, Trace, Verdict,
};
use veridic_aig::analyze::{fold_constants, ternary_sweep, ternary_sweep_constrained, Ternary};
use veridic_aig::Aig;

/// Display name of the static pre-analysis stage in event logs and
/// proof attributions (`"<bad>/preanalysis: proved"`).
pub const PREANALYSIS: &str = "preanalysis";

// ---------------------------------------------------------------------
// The four built-in engines.
// ---------------------------------------------------------------------

/// SAT bounded model checking: fast falsification up to
/// [`CheckOptions::bmc_depth`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BmcEngine;

impl Engine for BmcEngine {
    fn id(&self) -> EngineId {
        EngineId::Bmc
    }

    fn supports(&self, _aig: &Aig) -> bool {
        true
    }

    fn enabled(&self, opts: &CheckOptions) -> bool {
        !opts.bdd_only
    }

    fn run(&self, ctx: &mut EngineCtx<'_>) -> EngineOutcome {
        let min_depth = match ctx.resume {
            Some(EngineCheckpoint::Bmc { next_depth }) => *next_depth,
            _ => 0,
        };
        match bmc::bmc_check_budgeted(
            ctx.aig,
            min_depth,
            ctx.opts.bmc_depth,
            ctx.opts.sat_conflicts,
            ctx.stats,
            ctx.budget,
        ) {
            BmcOutcome::Falsified(t) => EngineOutcome::Falsified(t),
            BmcOutcome::NoCounterexample => EngineOutcome::Inconclusive,
            BmcOutcome::ResourceOut => EngineOutcome::ResourceOut {
                reason: format!("BMC conflict budget ({})", ctx.opts.sat_conflicts),
            },
            BmcOutcome::Suspended { next_depth } => {
                EngineOutcome::Suspended(EngineCheckpoint::Bmc { next_depth })
            }
        }
    }
}

/// SAT k-induction: unbounded proof up to
/// [`CheckOptions::induction_depth`].
#[derive(Clone, Copy, Debug, Default)]
pub struct InductionEngine;

impl Engine for InductionEngine {
    fn id(&self) -> EngineId {
        EngineId::Induction
    }

    fn supports(&self, _aig: &Aig) -> bool {
        true
    }

    fn enabled(&self, opts: &CheckOptions) -> bool {
        !opts.bdd_only
    }

    fn run(&self, ctx: &mut EngineCtx<'_>) -> EngineOutcome {
        let min_k = match ctx.resume {
            Some(EngineCheckpoint::Induction { next_k }) => *next_k,
            _ => 1,
        };
        match bmc::induction_check_budgeted(
            ctx.aig,
            min_k,
            ctx.opts.induction_depth,
            ctx.opts.simple_path,
            ctx.opts.sat_conflicts,
            ctx.stats,
            ctx.budget,
        ) {
            InductionOutcome::Proved(k) => EngineOutcome::Proved { k: Some(k) },
            InductionOutcome::Unknown => EngineOutcome::Inconclusive,
            InductionOutcome::ResourceOut => {
                EngineOutcome::ResourceOut { reason: "induction conflict budget".into() }
            }
            InductionOutcome::Suspended { next_k } => {
                EngineOutcome::Suspended(EngineCheckpoint::Induction { next_k })
            }
        }
    }
}

/// Monolithic BDD forward reachability under the live-node quota.
#[derive(Clone, Copy, Debug, Default)]
pub struct BddUmcEngine;

impl Engine for BddUmcEngine {
    fn id(&self) -> EngineId {
        EngineId::BddUmc
    }

    fn supports(&self, _aig: &Aig) -> bool {
        true
    }

    fn enabled(&self, opts: &CheckOptions) -> bool {
        !opts.sat_only
    }

    fn run(&self, ctx: &mut EngineCtx<'_>) -> EngineOutcome {
        let resume = match ctx.resume {
            Some(EngineCheckpoint::Reach(r)) => Some(r),
            _ => None,
        };
        match bdd_engine::bdd_umc_session(
            ctx.aig,
            ctx.opts.bdd_nodes,
            ctx.opts.max_iterations,
            ctx.opts.image_workers,
            ctx.opts.dynamic_reorder,
            ctx.opts.static_order,
            ctx.stats,
            ctx.budget,
            resume,
        ) {
            bdd_engine::BddEngineOutcome::Proved => EngineOutcome::Proved { k: None },
            bdd_engine::BddEngineOutcome::FalsifiedAtDepth(k) => {
                EngineOutcome::FalsifiedAtDepth(k)
            }
            bdd_engine::BddEngineOutcome::ResourceOut => EngineOutcome::ResourceOut {
                reason: format!("BDD node quota ({})", ctx.opts.bdd_nodes),
            },
            bdd_engine::BddEngineOutcome::Suspended(ck) => {
                EngineOutcome::Suspended(EngineCheckpoint::Reach(ck))
            }
            bdd_engine::BddEngineOutcome::Yielded => EngineOutcome::Yielded,
        }
    }
}

/// Partitioned-OBDD reachability (the paper's in-house engine), with
/// intra-property worker threads per [`CheckOptions::pobdd_workers`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PobddEngine;

impl Engine for PobddEngine {
    fn id(&self) -> EngineId {
        EngineId::PobddUmc
    }

    fn supports(&self, _aig: &Aig) -> bool {
        true
    }

    fn enabled(&self, opts: &CheckOptions) -> bool {
        !opts.sat_only && opts.pobdd_window_vars > 0
    }

    fn run(&self, ctx: &mut EngineCtx<'_>) -> EngineOutcome {
        let resume = match ctx.resume {
            Some(EngineCheckpoint::Reach(r)) => Some(r),
            _ => None,
        };
        match pobdd::pobdd_reach_session(
            ctx.aig,
            ctx.opts.pobdd_window_vars,
            ctx.opts.pobdd_workers,
            ctx.opts.bdd_nodes,
            ctx.opts.max_iterations,
            ctx.opts.dynamic_reorder,
            ctx.opts.static_order,
            ctx.stats,
            ctx.budget,
            resume,
        ) {
            bdd_engine::BddEngineOutcome::Proved => EngineOutcome::Proved { k: None },
            bdd_engine::BddEngineOutcome::FalsifiedAtDepth(k) => {
                EngineOutcome::FalsifiedAtDepth(k)
            }
            bdd_engine::BddEngineOutcome::ResourceOut => {
                EngineOutcome::ResourceOut { reason: "POBDD node quota".into() }
            }
            bdd_engine::BddEngineOutcome::Suspended(ck) => {
                EngineOutcome::Suspended(EngineCheckpoint::Reach(ck))
            }
            bdd_engine::BddEngineOutcome::Yielded => EngineOutcome::Yielded,
        }
    }
}

// ---------------------------------------------------------------------
// The scheduler.
// ---------------------------------------------------------------------

/// One slot of a portfolio policy: an engine plus an optional cap on
/// the budget rounds it may consume per run before the scheduler moves
/// on to the next slot.
struct EngineSlot {
    engine: Box<dyn Engine>,
    rounds: Option<u64>,
}

/// A suspended portfolio run: everything [`Portfolio::resume`] needs to
/// continue where the budget tripped — which bad, which engine slot,
/// the engine's serialized state, the statistics (event log included)
/// accumulated so far, and the resource-out reasons already collected
/// for the suspended bad.
///
/// Owns plain data only (the BDD state travels as
/// [`veridic_bdd::transfer::ExportedBdd`]), so it is `Send` and can
/// outlive every manager of the original run.
#[derive(Clone, Debug)]
pub struct RunCheckpoint {
    /// Index of the bad the run was suspended on (earlier bads proved).
    pub bad_index: usize,
    /// Index of the suspended engine in the portfolio's slot order.
    pub slot: usize,
    /// The engine's resumable state.
    pub state: EngineCheckpoint,
    /// Statistics at suspension; resume continues accumulating here.
    pub stats: CheckStats,
    /// Resource-out reasons collected for the suspended bad's earlier
    /// engines (they feed the final verdict if nothing concludes).
    pub reasons: Vec<String>,
}

/// What a budgeted portfolio run produced: a finished [`CheckResult`]
/// or a [`RunCheckpoint`] to resume from.
#[derive(Clone, Debug)]
pub enum PortfolioOutcome {
    /// The run concluded.
    Done(CheckResult),
    /// The budget tripped; resume with [`Portfolio::resume`].
    Suspended(RunCheckpoint),
}

impl PortfolioOutcome {
    /// Unwraps the finished result; panics on a suspension.
    pub fn expect_done(self, msg: &str) -> CheckResult {
        match self {
            PortfolioOutcome::Done(r) => r,
            PortfolioOutcome::Suspended(_) => panic!("{msg}"),
        }
    }

    /// The checkpoint, if the run suspended.
    pub fn into_checkpoint(self) -> Option<RunCheckpoint> {
        match self {
            PortfolioOutcome::Done(_) => None,
            PortfolioOutcome::Suspended(ck) => Some(ck),
        }
    }
}

/// An ordered, per-engine-budgeted verification policy.
///
/// The default value is the paper's cascade (see the module docs);
/// [`Portfolio::empty`] + [`Portfolio::with`] build custom policies,
/// including ones over user-implemented [`Engine`]s. A portfolio is
/// `Send + Sync` and is shared by reference across campaign worker
/// threads — it owns no per-run state.
pub struct Portfolio {
    slots: Vec<EngineSlot>,
}

impl Default for Portfolio {
    /// The historical cascade: BMC → k-induction → BDD UMC → POBDD UMC,
    /// every slot unbudgeted (the options' own depth/conflict/node
    /// limits are the only resource bounds, exactly as before).
    fn default() -> Self {
        Portfolio::empty()
            .with(Box::new(BmcEngine))
            .with(Box::new(InductionEngine))
            .with(Box::new(BddUmcEngine))
            .with(Box::new(PobddEngine))
    }
}

impl Portfolio {
    /// A policy with no engines; chain [`Portfolio::with`] /
    /// [`Portfolio::with_budgeted`] to populate it.
    pub fn empty() -> Self {
        Portfolio { slots: Vec::new() }
    }

    /// Appends an engine with no per-slot round cap.
    #[must_use]
    pub fn with(mut self, engine: Box<dyn Engine>) -> Self {
        self.slots.push(EngineSlot { engine, rounds: None });
        self
    }

    /// Appends an engine capped at `rounds` budget rounds per run; when
    /// the cap trips the scheduler records a suspension event and moves
    /// on to the next slot (the run as a whole keeps going).
    #[must_use]
    pub fn with_budgeted(mut self, engine: Box<dyn Engine>, rounds: u64) -> Self {
        self.slots.push(EngineSlot { engine, rounds: Some(rounds) });
        self
    }

    /// The policy's engine identities, in schedule order.
    pub fn engine_ids(&self) -> Vec<EngineId> {
        self.slots.iter().map(|s| s.engine.id()).collect()
    }

    /// Number of engine slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the policy has no engines.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Checks every bad of `aig` (each separately; first failure wins)
    /// under the given budgets, unbudgeted — the drop-in replacement
    /// for the legacy `check()` cascade.
    ///
    /// # Panics
    ///
    /// Panics if an engine returns a counterexample that does not
    /// replay on the AIG (a checker bug, never a property of the
    /// design).
    pub fn check(&self, aig: &Aig, opts: &CheckOptions) -> CheckResult {
        self.run_with_budget(aig, opts, &mut Budget::unlimited())
            .expect_done("an unlimited budget cannot suspend")
    }

    /// Checks a single bad (by index into [`Aig::bads`]), accumulating
    /// into `stats` — the drop-in replacement for the legacy
    /// `check_one`.
    ///
    /// # Panics
    ///
    /// See [`Portfolio::check`].
    pub fn check_bad(
        &self,
        aig: &Aig,
        bad_index: usize,
        opts: &CheckOptions,
        stats: &mut CheckStats,
    ) -> Verdict {
        match self.check_bad_inner(aig, bad_index, opts, stats, &mut Budget::unlimited(), None) {
            Ok(verdict) => verdict,
            Err(_) => unreachable!("an unlimited budget cannot suspend"),
        }
    }

    /// Runs the full multi-bad check under a cooperative [`Budget`].
    /// When the budget trips (round limit reached or the paired
    /// [`crate::CancelToken`] cancelled), the run suspends into a
    /// [`RunCheckpoint`] instead of finishing.
    ///
    /// # Panics
    ///
    /// See [`Portfolio::check`].
    pub fn run_with_budget(
        &self,
        aig: &Aig,
        opts: &CheckOptions,
        budget: &mut Budget,
    ) -> PortfolioOutcome {
        self.drive(aig, opts, budget, CheckStats::default(), 0, None)
    }

    /// Continues a suspended run, unbudgeted (it will conclude).
    ///
    /// The AIG and options must be the ones the checkpoint was taken
    /// under; the window split and engine schedule are re-derived from
    /// them deterministically. For a BDD-engine checkpoint, verdict,
    /// falsification depth and completed-round counts are identical to
    /// an uninterrupted run (the reached/frontier sets travel in the
    /// checkpoint). A SAT-engine checkpoint is a cursor: the resumed
    /// run rebuilds a fresh solver — with a reset per-call conflict
    /// budget and without the first session's learned clauses — so a
    /// run whose binding constraint was `sat_conflicts` may conclude
    /// differently than if it had never been interrupted; the schedule
    /// (which depths/ks get queried) is still exact.
    ///
    /// # Panics
    ///
    /// See [`Portfolio::check`]; additionally panics if the checkpoint
    /// does not fit this portfolio and AIG — a slot index out of
    /// range, a bad index the AIG does not have, or an engine-state
    /// variant the named slot's engine cannot consume (all the signs
    /// of a checkpoint resumed against the wrong run; silently
    /// continuing would produce wrong verdicts).
    pub fn resume(&self, aig: &Aig, opts: &CheckOptions, checkpoint: RunCheckpoint) -> PortfolioOutcome {
        self.resume_with_budget(aig, opts, checkpoint, &mut Budget::unlimited())
    }

    /// [`Portfolio::resume`] under a fresh cooperative budget — a run
    /// can be suspended and resumed any number of times.
    pub fn resume_with_budget(
        &self,
        aig: &Aig,
        opts: &CheckOptions,
        checkpoint: RunCheckpoint,
        budget: &mut Budget,
    ) -> PortfolioOutcome {
        self.validate_checkpoint(aig, opts, &checkpoint);
        let RunCheckpoint { bad_index, slot, state, stats, reasons } = checkpoint;
        self.drive(aig, opts, budget, stats, bad_index, Some((slot, state, reasons)))
    }

    /// Checks a **single** bad under a cooperative budget: the
    /// suspendable counterpart of [`Portfolio::check_bad`], and the
    /// primitive out-of-process campaign workers are built on — each
    /// property is one bad of a multi-bad unit AIG, checked in budget
    /// slices with the [`RunCheckpoint`] persisted between slices.
    ///
    /// `stats` seeds the run's statistics (normally
    /// `CheckStats::default()`); on suspension the accumulated stats
    /// travel inside the checkpoint, exactly as in
    /// [`Portfolio::run_with_budget`]. A run driven to completion
    /// through any sequence of
    /// [`Portfolio::resume_bad_with_budget`] slices reaches the same
    /// verdict as an un-sliced [`Portfolio::check_bad`] (BDD state
    /// resumes exactly; see [`Portfolio::resume`] for the SAT-cursor
    /// caveat), with suspension events marking the slice boundaries.
    ///
    /// # Panics
    ///
    /// See [`Portfolio::check`].
    pub fn check_bad_with_budget(
        &self,
        aig: &Aig,
        bad_index: usize,
        opts: &CheckOptions,
        stats: CheckStats,
        budget: &mut Budget,
    ) -> PortfolioOutcome {
        let mut stats = stats;
        match self.check_bad_inner(aig, bad_index, opts, &mut stats, budget, None) {
            Ok(verdict) => PortfolioOutcome::Done(CheckResult { verdict, stats }),
            Err((slot, state, reasons)) => {
                PortfolioOutcome::Suspended(RunCheckpoint { bad_index, slot, state, stats, reasons })
            }
        }
    }

    /// Continues a suspended **single-bad** run for one more budget
    /// slice. Unlike [`Portfolio::resume_with_budget`] it stops at the
    /// checkpoint's bad: a conclusion is returned as `Done` without
    /// rolling on to the AIG's later bads — the out-of-process campaign
    /// checks every property as its own single-bad run.
    ///
    /// # Panics
    ///
    /// See [`Portfolio::resume`] (same checkpoint-compatibility
    /// validation).
    pub fn resume_bad_with_budget(
        &self,
        aig: &Aig,
        opts: &CheckOptions,
        checkpoint: RunCheckpoint,
        budget: &mut Budget,
    ) -> PortfolioOutcome {
        self.validate_checkpoint(aig, opts, &checkpoint);
        let RunCheckpoint { bad_index, slot, state, stats, reasons } = checkpoint;
        let mut stats = stats;
        match self.check_bad_inner(aig, bad_index, opts, &mut stats, budget, Some((slot, state, reasons)))
        {
            Ok(verdict) => PortfolioOutcome::Done(CheckResult { verdict, stats }),
            Err((slot, state, reasons)) => {
                PortfolioOutcome::Suspended(RunCheckpoint { bad_index, slot, state, stats, reasons })
            }
        }
    }

    /// The resume-compatibility guard shared by every resume entry
    /// point: a checkpoint must name a slot this portfolio has, a bad
    /// the AIG has, an engine state the named slot can consume, and a
    /// slot still enabled under the options — all the signs of a
    /// checkpoint resumed against the wrong run, where silently
    /// continuing would produce wrong verdicts.
    fn validate_checkpoint(&self, aig: &Aig, opts: &CheckOptions, checkpoint: &RunCheckpoint) {
        let (slot, bad_index, state) = (checkpoint.slot, checkpoint.bad_index, &checkpoint.state);
        assert!(slot < self.slots.len(), "checkpoint slot {slot} out of range");
        assert!(
            bad_index < aig.bads().len(),
            "checkpoint bad index {bad_index} out of range: the AIG has {} bads — \
             resume must be given the AIG the run was suspended on",
            aig.bads().len()
        );
        let slot_id = self.slots[slot].engine.id();
        let compatible = match (state, slot_id) {
            (EngineCheckpoint::Bmc { .. }, EngineId::Bmc) => true,
            (EngineCheckpoint::Induction { .. }, EngineId::Induction) => true,
            (EngineCheckpoint::Reach(_), EngineId::BddUmc | EngineId::PobddUmc) => true,
            // Custom engines define their own checkpoint discipline
            // over the closed `EngineCheckpoint` variants, so a custom
            // slot accepts any of them — which also means this guard
            // cannot catch a wrong-portfolio resume that happens to
            // land on a custom slot; the slot-index and bad-index
            // asserts are the only protection there.
            (_, EngineId::Custom(_)) => true,
            _ => false,
        };
        assert!(
            compatible,
            "checkpoint state does not fit slot {slot} ({slot_id}) — \
             resume must be given the portfolio the run was suspended under"
        );
        assert!(
            self.slots[slot].engine.enabled(opts),
            "checkpoint slot {slot} ({slot_id}) is disabled under these options — \
             resume must be given the options the run was suspended under"
        );
    }

    /// The multi-bad loop shared by fresh and resumed runs.
    fn drive(
        &self,
        aig: &Aig,
        opts: &CheckOptions,
        budget: &mut Budget,
        mut stats: CheckStats,
        first_bad: usize,
        mut resume: Option<(usize, EngineCheckpoint, Vec<String>)>,
    ) -> PortfolioOutcome {
        for bad_index in first_bad..aig.bads().len() {
            let resumed = resume.take();
            match self.check_bad_inner(aig, bad_index, opts, &mut stats, budget, resumed) {
                Ok(Verdict::Proved { .. }) => continue,
                Ok(other) => {
                    return PortfolioOutcome::Done(CheckResult { verdict: other, stats })
                }
                Err((slot, state, reasons)) => {
                    return PortfolioOutcome::Suspended(RunCheckpoint {
                        bad_index,
                        slot,
                        state,
                        stats,
                        reasons,
                    })
                }
            }
        }
        PortfolioOutcome::Done(CheckResult {
            verdict: Verdict::Proved { engine: "portfolio" },
            stats,
        })
    }

    /// Schedules the slots over one bad. `Ok` is a verdict; `Err` is a
    /// suspension `(slot, engine checkpoint, reasons so far)`.
    #[allow(clippy::type_complexity)]
    fn check_bad_inner(
        &self,
        aig: &Aig,
        bad_index: usize,
        opts: &CheckOptions,
        stats: &mut CheckStats,
        budget: &mut Budget,
        resume: Option<(usize, EngineCheckpoint, Vec<String>)>,
    ) -> Result<Verdict, (usize, EngineCheckpoint, Vec<String>)> {
        // Cone of influence: bad + all constraints (constraints must
        // keep their meaning on every path).
        let bad = aig.bads()[bad_index].lit;
        let mut roots = vec![bad];
        roots.extend(aig.constraints().iter().map(|c| c.lit));
        let coi = aig.extract_coi(&roots);
        let mut sub = coi.aig;
        let bad_name = aig.bads()[bad_index].name.clone();
        sub.add_bad(bad_name.clone(), coi.roots[0]);
        for (i, c) in aig.constraints().iter().enumerate() {
            sub.add_constraint(c.name.clone(), coi.roots[1 + i]);
        }
        // Per-bad COI sizes: the summary fields aggregate by max so a
        // multi-bad check reports its hardest cone instead of whichever
        // bad happened to be checked last. A resumed bad recorded its
        // entry in the original session.
        if resume.is_none() {
            stats.coi_latches = stats.coi_latches.max(sub.num_latches());
            stats.coi_ands = stats.coi_ands.max(sub.num_ands());
            stats.per_bad_coi.push(BadCoiStats {
                bad: bad_name.clone(),
                latches: sub.num_latches(),
                ands: sub.num_ands(),
            });
        }

        // Static pre-analysis: ternary constant sweep over the cone.
        // Statically-constant bads/constraints conclude right here with
        // zero engine invocations; stuck latches are folded out of the
        // AIG every engine sees. When the sweep finds nothing stuck the
        // fold is skipped entirely and the engines run on `sub`
        // unchanged — which is what keeps preanalysis-on byte-identical
        // to preanalysis-off on designs with nothing to fold. Resumed
        // bads re-derive the same fold deterministically (their
        // checkpoints were taken against the folded AIG) but do not
        // re-count the stats, mirroring the COI accounting above.
        let folded = if opts.preanalysis {
            let sweep = ternary_sweep(&sub);
            if resume.is_none() {
                stats.preanalysis.bads_analyzed += 1;
                stats.preanalysis.stuck_latches += sweep.stuck_count();
            }
            let pre_event = |stats: &mut CheckStats, outcome: EventOutcome| {
                stats.events.push(EngineEvent {
                    bad: bad_name.clone(),
                    engine: EngineId::Custom(PREANALYSIS),
                    outcome,
                    resources: EventResources::default(),
                });
            };
            let bad_value = sweep.lit_value(sub.bads()[0].lit);
            let constraint_values: Vec<Ternary> =
                sub.constraints().iter().map(|c| sweep.lit_value(c.lit)).collect();
            // A constant-false bad can never fire; a constant-false
            // constraint leaves no valid path at all. Either way the
            // property holds on every reachable constrained state.
            if bad_value == Ternary::False
                || constraint_values.contains(&Ternary::False)
            {
                stats.preanalysis.vacuous += 1;
                pre_event(stats, EventOutcome::Proved);
                return Ok(Verdict::Proved { engine: PREANALYSIS });
            }
            // A constant-true bad fires in the initial state under any
            // inputs; when every constraint is constant-true as well,
            // any single-cycle trace is a counterexample. (If some
            // constraint is X the engines must pick the inputs.)
            if bad_value == Ternary::True
                && constraint_values.iter().all(|v| *v == Ternary::True)
            {
                stats.preanalysis.vacuous += 1;
                let full = Trace { inputs: vec![vec![false; aig.num_inputs()]], bad_index };
                assert!(full.replays_on(aig), "preanalysis counterexample failed replay");
                pre_event(stats, EventOutcome::FalsifiedAtDepth(0));
                return Ok(Verdict::Falsified(full));
            }
            // Constraint-aware refinement: re-run the sweep with every
            // constant-true constraint literal *forced* into the
            // lattice (`ternary_sweep_constrained`). One-sided by
            // design: forcing only ever strengthens the Proved
            // direction — a contradiction inside the forced closure, a
            // bad pinned false under the constraints, or a constraint
            // pinned false all mean no constrained path reaches the
            // bad. It is never used to fabricate a counterexample; the
            // depth-0 falsification above deliberately requires the
            // *unconstrained* sweep to pin everything, so traces stay
            // engine-built whenever a constraint is X.
            if !sub.constraints().is_empty() {
                let cs = ternary_sweep_constrained(&sub);
                let vacuous = cs.contradiction
                    || cs.sweep.lit_value(sub.bads()[0].lit) == Ternary::False
                    || sub
                        .constraints()
                        .iter()
                        .any(|c| cs.sweep.lit_value(c.lit) == Ternary::False);
                if vacuous {
                    stats.preanalysis.vacuous += 1;
                    pre_event(stats, EventOutcome::Proved);
                    return Ok(Verdict::Proved { engine: PREANALYSIS });
                }
            }
            match fold_constants(&sub, &sweep) {
                Some(fold) => {
                    if resume.is_none() {
                        stats.preanalysis.folded_ands += fold.folded_ands;
                    }
                    Some(fold.aig)
                }
                None => None,
            }
        } else {
            None
        };
        // The AIG the engines run on: folded when the sweep found
        // stuck latches, the COI cone otherwise. The fold preserves
        // all inputs in creation order, so `expand_trace` below works
        // unchanged on traces from either.
        let engine_aig: &Aig = folded.as_ref().unwrap_or(&sub);

        // Map a trace on the reduced AIG back to the full input space.
        let expand_trace = |t: Trace| -> Trace {
            let mut full = vec![vec![false; aig.num_inputs()]; t.inputs.len()];
            for (old_var, new_var) in &coi.input_map {
                let old_idx = aig.input_index(*old_var).expect("input var"); // lint: allow
                let new_idx = sub.input_index(*new_var).expect("mapped input var"); // lint: allow
                for (dst, src) in full.iter_mut().zip(&t.inputs) {
                    dst[old_idx] = src[new_idx];
                }
            }
            Trace { inputs: full, bad_index }
        };

        let (first_slot, mut engine_resume, mut reasons) = match resume {
            Some((slot, state, reasons)) => (slot, Some(state), reasons),
            None => (0, None, Vec::new()),
        };

        for (slot_index, slot) in self.slots.iter().enumerate().skip(first_slot) {
            let engine = slot.engine.as_ref();
            if !engine.enabled(opts) || !engine.supports(engine_aig) {
                continue;
            }
            let id = engine.id();
            let sat_before = stats.sat_conflicts;
            let alloc_before = stats.bdd_allocated;
            let mut eng_budget = budget.child(slot.rounds);
            let resume_state = engine_resume.take();
            let outcome = {
                let mut ctx = EngineCtx {
                    aig: engine_aig,
                    bad_name: &bad_name,
                    opts,
                    budget: &mut eng_budget,
                    stats,
                    resume: resume_state.as_ref(),
                };
                engine.run(&mut ctx)
            };
            let rounds = eng_budget.used();
            budget.charge(rounds);
            let resources = EventResources {
                sat_conflicts: stats.sat_conflicts - sat_before,
                bdd_allocated: stats.bdd_allocated - alloc_before,
                bdd_peak_live: stats.bdd_nodes,
                rounds,
            };
            let push = |stats: &mut CheckStats, outcome: EventOutcome| {
                stats.events.push(EngineEvent {
                    bad: bad_name.clone(),
                    engine: id,
                    outcome,
                    resources,
                });
            };
            match outcome {
                EngineOutcome::Proved { k } => {
                    let event = match k {
                        Some(k) => EventOutcome::ProvedAtK(k),
                        None => EventOutcome::Proved,
                    };
                    push(stats, event);
                    return Ok(Verdict::Proved { engine: id.proved_name() });
                }
                EngineOutcome::Falsified(t) => {
                    let full = expand_trace(t);
                    assert!(
                        full.replays_on(aig),
                        "{} counterexample failed replay",
                        replay_blame(id)
                    );
                    push(stats, EventOutcome::Falsified);
                    return Ok(Verdict::Falsified(full));
                }
                EngineOutcome::FalsifiedAtDepth(k) => {
                    push(stats, EventOutcome::FalsifiedAtDepth(k));
                    // Extract the trace with a depth-pinned BMC run.
                    match bmc::bmc_check(engine_aig, k, k, u64::MAX, stats) {
                        BmcOutcome::Falsified(t) => {
                            let full = expand_trace(t);
                            assert!(
                                full.replays_on(aig),
                                "{} counterexample failed replay",
                                replay_blame(id)
                            );
                            return Ok(Verdict::Falsified(full));
                        }
                        other => panic!(
                            "{} reported depth-{k} violation but BMC disagrees: {other:?}",
                            extraction_blame(id)
                        ),
                    }
                }
                EngineOutcome::Inconclusive => {
                    let event = match id {
                        EngineId::Bmc => EventOutcome::CleanToDepth(opts.bmc_depth),
                        _ => EventOutcome::Inconclusive,
                    };
                    push(stats, event);
                }
                EngineOutcome::ResourceOut { reason } => {
                    push(stats, EventOutcome::ResourceOut);
                    reasons.push(reason);
                }
                EngineOutcome::Suspended(state) => {
                    push(stats, EventOutcome::Suspended);
                    if budget.is_exhausted() {
                        // The run-wide budget (or its cancel token)
                        // tripped: suspend the whole run, resumably.
                        return Err((slot_index, state, reasons));
                    }
                    // Only this slot's round cap tripped: hand over to
                    // the next engine, like a resource-out with a
                    // budget-flavored reason. The engine checkpoint is
                    // dropped — the policy chose breadth over depth.
                    // (Engines with expensive checkpoints detect this
                    // case themselves via `checkpoint_worthwhile` and
                    // return `Yielded` below instead.)
                    reasons.push(format!("{id} round budget"));
                }
                EngineOutcome::Yielded => {
                    // Slot-cap handover with no checkpoint built.
                    push(stats, EventOutcome::Suspended);
                    reasons.push(format!("{id} round budget"));
                }
            }
        }

        Ok(Verdict::ResourceOut {
            reason: if reasons.is_empty() {
                "no engine concluded within its budget".to_string()
            } else {
                reasons.join("; ")
            },
        })
    }
}

/// The historical replay-assertion attribution for the built-in
/// engines.
fn replay_blame(id: EngineId) -> &'static str {
    match id {
        EngineId::Bmc => "BMC",
        EngineId::Induction => "induction",
        EngineId::BddUmc => "BDD",
        EngineId::PobddUmc => "POBDD",
        EngineId::Custom(name) => name,
    }
}

/// The historical "engine reported depth-k but BMC disagrees"
/// attribution (`"BDD engine"` for the monolithic engine, `"POBDD"`
/// for the partitioned one).
fn extraction_blame(id: EngineId) -> &'static str {
    match id {
        EngineId::BddUmc => "BDD engine",
        EngineId::PobddUmc => "POBDD",
        other => other.as_str(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelToken;
    use veridic_aig::Lit;

    /// Adds a `bits`-wide ripple counter to `g`; returns the state
    /// literals.
    fn add_counter(g: &mut Aig, bits: u32) -> Vec<Lit> {
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        qs.into_iter().map(|(_, q)| q).collect()
    }

    /// The literal "counter state equals `at`".
    fn count_is(g: &mut Aig, qs: &[Lit], at: u64) -> Lit {
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| if at >> i & 1 == 1 { *q } else { !*q })
            .collect();
        g.and_many(hit)
    }

    fn counter_aig(bits: u32, bad_at: u64) -> Aig {
        let mut g = Aig::new();
        let qs = add_counter(&mut g, bits);
        let bad = count_is(&mut g, &qs, bad_at);
        g.add_bad(format!("count_is_{bad_at}"), bad);
        g
    }

    /// Portfolio self-consistency on one design: repeated runs are
    /// deterministic down to every statistic, and the SAT-only and
    /// BDD-only halves of the portfolio agree with the full cascade on
    /// verdict and counterexample depth. (The pre-redesign cascade this
    /// used to diff against byte-for-byte was retired after PR 5; the
    /// determinism half of that contract lives on here, the
    /// cross-engine half in `tests/portfolio_equivalence.rs`.)
    fn assert_self_consistent(aig: &Aig, opts: &CheckOptions) {
        let first = Portfolio::default().check(aig, opts);
        let again = Portfolio::default().check(aig, opts);
        assert_eq!(first.verdict, again.verdict);
        assert_eq!(first.stats, again.stats, "repeat runs must be deterministic");
        if !(opts.bdd_only || opts.sat_only) {
            for restricted in [
                CheckOptions { bdd_only: true, ..opts.clone() },
                CheckOptions { sat_only: true, ..opts.clone() },
            ] {
                let half = Portfolio::default().check(aig, &restricted);
                match (&first.verdict, &half.verdict) {
                    (Verdict::Falsified(a), Verdict::Falsified(b)) => {
                        assert_eq!(a.len(), b.len(), "cex depth must agree");
                        assert_eq!(a.bad_index, b.bad_index);
                    }
                    (Verdict::Proved { .. }, Verdict::Proved { .. }) => {}
                    // A half-portfolio has fewer engines than the full
                    // cascade, so running out of budget is consistent
                    // with any full-cascade outcome.
                    (_, Verdict::ResourceOut { .. }) => {}
                    (a, b) => panic!("portfolio halves disagree: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn default_policy_is_deterministic_and_self_consistent() {
        for bad_at in [0u64, 5, 9] {
            let g = counter_aig(4, bad_at);
            assert_self_consistent(&g, &CheckOptions::default());
        }
        // Resource-out path (tiny budget on a wide counter).
        let g = counter_aig(24, (1 << 24) - 1);
        let r = Portfolio::default().check(&g, &CheckOptions::tiny_budget());
        assert!(matches!(r.verdict, Verdict::ResourceOut { .. }), "{:?}", r.verdict);
        assert_self_consistent(&g, &CheckOptions::tiny_budget());
    }

    #[test]
    fn default_policy_schedule_is_the_paper_cascade() {
        assert_eq!(
            Portfolio::default().engine_ids(),
            vec![EngineId::Bmc, EngineId::Induction, EngineId::BddUmc, EngineId::PobddUmc]
        );
    }

    /// A custom engine that concludes instantly, and one whose
    /// `supports` declines the AIG (it must be skipped without a
    /// trace in the event log).
    #[test]
    fn custom_engines_schedule_and_skip() {
        struct InstantProof;
        impl Engine for InstantProof {
            fn id(&self) -> EngineId {
                EngineId::Custom("oracle")
            }
            fn supports(&self, _aig: &Aig) -> bool {
                true
            }
            fn run(&self, _ctx: &mut EngineCtx<'_>) -> EngineOutcome {
                EngineOutcome::Proved { k: None }
            }
        }
        struct NeverApplies;
        impl Engine for NeverApplies {
            fn id(&self) -> EngineId {
                EngineId::Custom("picky")
            }
            fn supports(&self, _aig: &Aig) -> bool {
                false
            }
            fn run(&self, _ctx: &mut EngineCtx<'_>) -> EngineOutcome {
                panic!("unsupported engines must not run")
            }
        }
        let g = counter_aig(3, 7);
        let portfolio =
            Portfolio::empty().with(Box::new(NeverApplies)).with(Box::new(InstantProof));
        let mut stats = CheckStats::default();
        let verdict = portfolio.check_bad(&g, 0, &CheckOptions::default(), &mut stats);
        assert_eq!(verdict, Verdict::Proved { engine: "oracle" });
        assert_eq!(stats.events.len(), 1, "the skipped engine leaves no event");
        assert_eq!(stats.events[0].engine, EngineId::Custom("oracle"));
        assert_eq!(stats.engines_tried(), vec!["count_is_7/oracle: proved".to_string()]);
        // The multi-bad entry point aggregates proofs as "portfolio",
        // exactly like the legacy cascade.
        let r = portfolio.check(&g, &CheckOptions::default());
        assert_eq!(r.verdict, Verdict::Proved { engine: "portfolio" });
    }

    /// A per-slot round cap is a handover, not a run suspension: the
    /// capped engine logs a suspension event and the cascade continues
    /// to a conclusive verdict.
    #[test]
    fn slot_budget_hands_over_to_next_engine() {
        let g = counter_aig(4, 9);
        // BMC capped at 2 depths (the bug is at depth 9): it suspends,
        // the BDD engine concludes.
        let portfolio = Portfolio::empty()
            .with_budgeted(Box::new(BmcEngine), 2)
            .with(Box::new(BddUmcEngine));
        let r = portfolio.check(&g, &CheckOptions::default());
        assert!(r.verdict.is_falsified(), "{:?}", r.verdict);
        let rendered = r.stats.engines_tried();
        assert_eq!(rendered[0], "count_is_9/bmc: suspended");
        assert_eq!(rendered[1], "count_is_9/bdd-umc: bad reachable at depth 9");
        assert_eq!(r.stats.events[0].resources.rounds, 2, "the cap bounds the rounds");

        // A capped *BDD* slot yields (no checkpoint is built for a
        // handover the scheduler would discard) and the next engine
        // still concludes — serial and threaded POBDD alike.
        for pobdd_workers in [1usize, 2] {
            let opts = CheckOptions::builder()
                .bdd_only(true)
                .pobdd_workers(pobdd_workers)
                .build();
            let capped = Portfolio::empty()
                .with_budgeted(Box::new(PobddEngine), 3)
                .with(Box::new(BddUmcEngine));
            let r = capped.check(&g, &opts);
            assert!(r.verdict.is_falsified(), "workers={pobdd_workers}: {:?}", r.verdict);
            let rendered = r.stats.engines_tried();
            assert_eq!(rendered[0], "count_is_9/pobdd-umc: suspended");
            assert_eq!(rendered[1], "count_is_9/bdd-umc: bad reachable at depth 9");
        }
    }

    /// Global-budget suspension and resume: verdict, falsification
    /// depth and completed-round count must equal an uninterrupted run.
    #[test]
    fn killed_bdd_umc_resumes_identically() {
        let g = counter_aig(6, 50);
        let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
        let portfolio = Portfolio::default();
        let uninterrupted = portfolio.check(&g, &opts);

        let suspended = portfolio.run_with_budget(&g, &opts, &mut Budget::rounds(20));
        let ck = match suspended {
            PortfolioOutcome::Suspended(ck) => ck,
            PortfolioOutcome::Done(r) => panic!("20 rounds must not conclude: {:?}", r.verdict),
        };
        assert_eq!(ck.state.reach_depth(), Some(20), "suspended after 20 completed rounds");
        assert_eq!(ck.stats.iterations, 20);

        let resumed = portfolio
            .resume(&g, &opts, ck)
            .expect_done("unbudgeted resume concludes");
        assert_eq!(resumed.verdict, uninterrupted.verdict);
        match (&resumed.verdict, &uninterrupted.verdict) {
            (Verdict::Falsified(a), Verdict::Falsified(b)) => {
                assert_eq!(a.len(), b.len(), "falsification depth must survive the kill")
            }
            other => panic!("expected falsifications, got {other:?}"),
        }
        assert_eq!(resumed.stats.iterations, uninterrupted.stats.iterations);
        // The event log shows the interruption: suspended, then the
        // final conclusion from the same engine.
        let rendered = resumed.stats.engines_tried();
        assert!(rendered.contains(&"count_is_50/bdd-umc: suspended".to_string()), "{rendered:?}");
        assert!(
            rendered.contains(&"count_is_50/bdd-umc: bad reachable at depth 50".to_string()),
            "{rendered:?}"
        );
    }

    /// A run can be suspended and resumed repeatedly, and a proof (not
    /// just a falsification) survives the interruptions.
    #[test]
    fn repeated_suspension_still_proves() {
        // Counter + stuck latch: the bad needs both (so COI reduction
        // keeps the counter) but is unreachable (stuck stays 0); the
        // fixpoint takes 2^4 rounds.
        let mut g = Aig::new();
        let qs = add_counter(&mut g, 4);
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let full = count_is(&mut g, &qs, 15);
        let bad = g.and(s, full);
        g.add_bad("never", bad);
        // Preanalysis would conclude this stuck-latch design instantly;
        // this test is about the suspension machinery, so switch it off.
        let opts = CheckOptions::builder()
            .bdd_only(true)
            .pobdd_window_vars(0)
            .preanalysis(false)
            .build();
        let portfolio = Portfolio::default();
        let uninterrupted = portfolio.check(&g, &opts);
        assert!(uninterrupted.verdict.is_proved());

        let mut outcome = portfolio.run_with_budget(&g, &opts, &mut Budget::rounds(3));
        let mut hops = 0;
        let resumed = loop {
            match outcome {
                PortfolioOutcome::Done(r) => break r,
                PortfolioOutcome::Suspended(ck) => {
                    hops += 1;
                    assert!(hops < 100, "resume must make progress");
                    outcome = portfolio.resume_with_budget(&g, &opts, ck, &mut Budget::rounds(3));
                }
            }
        };
        assert!(hops >= 2, "the tiny budget must suspend repeatedly (got {hops})");
        assert_eq!(resumed.verdict, uninterrupted.verdict);
        assert_eq!(resumed.stats.iterations, uninterrupted.stats.iterations);
    }

    /// A pre-cancelled token suspends before the first round, and the
    /// checkpoint still resumes to the right verdict.
    #[test]
    fn cancel_token_suspends_resumably() {
        let g = counter_aig(5, 21);
        let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
        let portfolio = Portfolio::default();
        let token = CancelToken::new();
        token.cancel();
        let mut budget = Budget::unlimited().with_cancel(&token);
        let ck = portfolio
            .run_with_budget(&g, &opts, &mut budget)
            .into_checkpoint()
            .expect("cancelled run suspends");
        assert_eq!(ck.state.reach_depth(), Some(0), "no round ran");
        let resumed = portfolio.resume(&g, &opts, ck).expect_done("resume concludes");
        match resumed.verdict {
            Verdict::Falsified(t) => assert_eq!(t.len(), 22),
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    /// Suspension inside the *SAT* engines checkpoints a cursor: BMC
    /// resumes at its next depth and still finds the bug at the same
    /// depth.
    #[test]
    fn killed_bmc_resumes_at_next_depth() {
        let g = counter_aig(4, 9);
        let opts = CheckOptions::default();
        let portfolio = Portfolio::default();
        let ck = portfolio
            .run_with_budget(&g, &opts, &mut Budget::rounds(4))
            .into_checkpoint()
            .expect("4 rounds cannot reach depth 9");
        assert_eq!(ck.state, EngineCheckpoint::Bmc { next_depth: 4 });
        let resumed = portfolio.resume(&g, &opts, ck).expect_done("resume concludes");
        match resumed.verdict {
            Verdict::Falsified(t) => assert_eq!(t.len(), 10),
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    /// A checkpoint resumed against the wrong portfolio must fail loud
    /// (a reordered policy would silently mis-schedule otherwise).
    #[test]
    #[should_panic(expected = "does not fit slot")]
    fn resume_rejects_mismatched_portfolio() {
        let g = counter_aig(6, 50);
        let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
        let ck = Portfolio::default()
            .run_with_budget(&g, &opts, &mut Budget::rounds(5))
            .into_checkpoint()
            .expect("5 rounds must suspend");
        // Same slot count, different order: slot 2 is now induction.
        let reordered = Portfolio::empty()
            .with(Box::new(BddUmcEngine))
            .with(Box::new(BmcEngine))
            .with(Box::new(InductionEngine))
            .with(Box::new(PobddEngine));
        let _ = reordered.resume(&g, &opts, ck);
    }

    /// A checkpoint resumed against the wrong AIG must fail loud (the
    /// suspended bad index no longer exists → spurious proof).
    #[test]
    #[should_panic(expected = "bad index")]
    fn resume_rejects_mismatched_aig() {
        // Two bads: a stuck latch (proved) then a deep counter value
        // (suspends), so the checkpoint's bad index is 1.
        let mut g = Aig::new();
        let qs = add_counter(&mut g, 5);
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        g.add_bad("never", s);
        let deep = count_is(&mut g, &qs, 21);
        g.add_bad("count_is_21", deep);
        let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
        let portfolio = Portfolio::default();
        let ck = portfolio
            .run_with_budget(&g, &opts, &mut Budget::rounds(10))
            .into_checkpoint()
            .expect("the deep bad suspends");
        let other = counter_aig(4, 9); // one bad only
        let _ = portfolio.resume(&other, &opts, ck);
    }

    /// The vacuity short-circuit: a statically-constant bad concludes
    /// with zero engine invocations — the event log shows a single
    /// zero-round preanalysis entry and the stats report the vacuous
    /// verdict plus the folded-latch count.
    #[test]
    fn preanalysis_concludes_vacuous_bad_without_engines() {
        // bad = stuck0 AND full-count: the sweep pins stuck0 at 0, so
        // the bad is constant false however deep the counter runs.
        let mut g = Aig::new();
        let qs = add_counter(&mut g, 4);
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let full = count_is(&mut g, &qs, 15);
        let bad = g.and(s, full);
        g.add_bad("never", bad);
        let r = Portfolio::default().check(&g, &CheckOptions::default());
        assert_eq!(r.verdict, Verdict::Proved { engine: "portfolio" });
        assert_eq!(r.stats.events.len(), 1, "no engine may run: {:?}", r.stats.events);
        assert_eq!(r.stats.events[0].engine, EngineId::Custom(PREANALYSIS));
        assert_eq!(r.stats.events[0].resources.rounds, 0);
        assert_eq!(r.stats.events[0].resources.sat_conflicts, 0);
        assert_eq!(r.stats.events[0].resources.bdd_allocated, 0);
        assert_eq!(r.stats.engines_tried(), vec!["never/preanalysis: proved".to_string()]);
        assert_eq!(r.stats.preanalysis.vacuous, 1);
        assert_eq!(r.stats.preanalysis.bads_analyzed, 1);
        assert_eq!(r.stats.preanalysis.stuck_latches, 1, "the stuck latch is counted");
        assert_eq!(r.stats.sat_conflicts, 0);
        assert_eq!(r.stats.bdd_allocated, 0);
        assert_eq!(r.stats.iterations, 0);
        // The single-bad entry point attributes the proof to the stage.
        let mut stats = CheckStats::default();
        let verdict =
            Portfolio::default().check_bad(&g, 0, &CheckOptions::default(), &mut stats);
        assert_eq!(verdict, Verdict::Proved { engine: PREANALYSIS });
    }

    /// A constant-**true** bad (under constant-true-or-absent
    /// constraints) is trivially falsified at depth 0, again with zero
    /// engine invocations, and the replayed trace is a real one.
    #[test]
    fn preanalysis_trivially_falsifies_constant_true_bad() {
        let mut g = Aig::new();
        let _x = g.input("x");
        let (l, s) = g.latch("stuck1", true);
        g.set_next(l, s);
        g.add_bad("always", s);
        let r = Portfolio::default().check(&g, &CheckOptions::default());
        match &r.verdict {
            Verdict::Falsified(t) => {
                assert_eq!(t.len(), 1, "depth-0 counterexample");
                assert!(t.replays_on(&g));
            }
            other => panic!("expected falsification, got {other:?}"),
        }
        assert_eq!(r.stats.events.len(), 1);
        assert_eq!(
            r.stats.engines_tried(),
            vec!["always/preanalysis: bad at depth 0".to_string()]
        );
        assert_eq!(r.stats.preanalysis.vacuous, 1);
    }

    /// A constant-false constraint makes every property vacuous: no
    /// valid path exists, so the bad is proved without an engine.
    #[test]
    fn preanalysis_proves_under_constant_false_constraint() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (l, s) = g.latch("stuck0", false);
        g.set_next(l, s);
        let (ql, q) = g.latch("q", false);
        g.set_next(ql, a);
        g.add_bad("q_high", q);
        g.add_constraint("impossible", s);
        let r = Portfolio::default().check(&g, &CheckOptions::default());
        assert_eq!(r.verdict, Verdict::Proved { engine: "portfolio" });
        assert_eq!(r.stats.events.len(), 1);
        assert_eq!(r.stats.events[0].engine, EngineId::Custom(PREANALYSIS));
        assert_eq!(r.stats.preanalysis.vacuous, 1);
    }

    /// When the bad is constant-true but a constraint is *not* statically
    /// constant, preanalysis must NOT fabricate a trace — the engines
    /// pick inputs that satisfy the constraint.
    #[test]
    fn preanalysis_defers_constrained_trivial_bads_to_engines() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (l, s) = g.latch("stuck1", true);
        g.set_next(l, s);
        g.add_bad("always", s);
        g.add_constraint("a_high", a);
        let r = Portfolio::default().check(&g, &CheckOptions::default());
        match &r.verdict {
            Verdict::Falsified(t) => {
                assert!(t.replays_on(&g));
                assert!(t.inputs[0][0], "the constraint forces a=1");
            }
            other => panic!("expected falsification, got {other:?}"),
        }
        assert!(
            r.stats.events.iter().all(|e| e.engine != EngineId::Custom(PREANALYSIS)),
            "no preanalysis conclusion when a constraint is X: {:?}",
            r.stats.events
        );
    }

    /// Folding a stuck latch out of a live property changes neither the
    /// verdict nor the falsification depth nor the iteration counts
    /// relative to preanalysis-off — and on designs with nothing to
    /// fold the whole stats block is identical.
    #[test]
    fn preanalysis_folding_is_verdict_and_depth_neutral() {
        // bad = count_is(9) OR stuck0: the stuck leg folds away, the
        // counter leg is live at depth 9.
        let mut g = Aig::new();
        let qs = add_counter(&mut g, 4);
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let hit = count_is(&mut g, &qs, 9);
        let bad = g.or(hit, s);
        g.add_bad("count_or_stuck", bad);
        let on = Portfolio::default().check(&g, &CheckOptions::default());
        let off = Portfolio::default()
            .check(&g, &CheckOptions::builder().preanalysis(false).build());
        match (&on.verdict, &off.verdict) {
            (Verdict::Falsified(a), Verdict::Falsified(b)) => {
                assert_eq!(a.len(), b.len(), "folding must not move the depth");
                assert_eq!(a.bad_index, b.bad_index);
            }
            other => panic!("expected two falsifications, got {other:?}"),
        }
        assert_eq!(on.stats.iterations, off.stats.iterations);
        assert!(on.stats.preanalysis.stuck_latches >= 1);
        assert!(on.stats.preanalysis.folded_ands >= 1);
        assert_eq!(off.stats.preanalysis, crate::PreanalysisStats::default());

        // Nothing stuck → the identity fast-path: stats byte-identical
        // except the preanalysis counters themselves.
        let clean = counter_aig(4, 9);
        let on = Portfolio::default().check(&clean, &CheckOptions::default());
        let off = Portfolio::default()
            .check(&clean, &CheckOptions::builder().preanalysis(false).build());
        assert_eq!(on.verdict, off.verdict);
        let mut on_stats = on.stats.clone();
        on_stats.preanalysis = crate::PreanalysisStats::default();
        assert_eq!(on_stats, off.stats, "identity fast-path must be byte-identical");
    }

    /// Multi-bad runs resume past already-proved bads: the checkpoint
    /// records the bad index, and the resumed result covers the rest.
    #[test]
    fn multi_bad_resume_continues_from_suspended_bad() {
        // Bad 0: a stuck latch (proved quickly). Bad 1: deep counter
        // value (suspends under a small budget).
        let mut g = Aig::new();
        let qs = add_counter(&mut g, 5);
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        g.add_bad("never", s);
        let deep = count_is(&mut g, &qs, 21);
        g.add_bad("count_is_21", deep);
        let opts = CheckOptions::builder().bdd_only(true).pobdd_window_vars(0).build();
        let portfolio = Portfolio::default();
        let ck = portfolio
            .run_with_budget(&g, &opts, &mut Budget::rounds(10))
            .into_checkpoint()
            .expect("the deep bad suspends");
        assert_eq!(ck.bad_index, 1, "bad 0 proved before the budget tripped");
        let resumed = portfolio.resume(&g, &opts, ck).expect_done("resume concludes");
        match &resumed.verdict {
            Verdict::Falsified(t) => {
                assert_eq!(t.bad_index, 1);
                assert_eq!(t.len(), 22);
            }
            other => panic!("expected falsification, got {other:?}"),
        }
        // The per-bad COI record is not duplicated by the resume.
        assert_eq!(resumed.stats.per_bad_coi.len(), 2);
    }
}
