//! BDD-based unbounded model checking: clustered transition relations,
//! early quantification, forward reachability.
//!
//! Variable order interleaves current and next state: latch `i` gets
//! current variable `2i` and next variable `2i+1`; primary inputs follow
//! after all state variables. Interleaving keeps the current→next rename
//! order-preserving, so renaming is a linear rebuild.

use crate::CheckStats;
use veridic_aig::{Aig, Lit, Var};
use veridic_bdd::{BddManager, FxHashMap, NodeId, OutOfNodes};

/// Outcome of a BDD reachability engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddEngineOutcome {
    /// Bad is unreachable: property proved.
    Proved,
    /// Bad intersects the states reachable in exactly `k` steps.
    FalsifiedAtDepth(usize),
    /// Node quota or iteration limit exhausted.
    ResourceOut,
}

/// A symbolic transition system: per-latch next-state functions, the
/// constraint and bad relations, initial state and quantification cubes.
#[derive(Debug)]
pub struct TransitionSystem {
    /// The manager owning all nodes below.
    pub mgr: BddManager,
    /// `T_i = (next_i ↔ f_i)` conjuncts, clustered.
    pub clusters: Vec<NodeId>,
    /// Early-quantification cube for each cluster (variables whose last
    /// use is that cluster).
    pub cluster_cubes: Vec<NodeId>,
    /// Variables not used by any cluster, quantified up front.
    pub residual_cube: NodeId,
    /// Initial state predicate (over current vars).
    pub init: NodeId,
    /// Constraint predicate (over current + input vars).
    pub constraint: NodeId,
    /// Bad predicate (over current + input vars).
    pub bad: NodeId,
    /// Precomputed `bad ∧ constraint`, the target of reachability tests.
    pub bad_constraint: NodeId,
    /// Rename map next→current.
    pub next_to_cur: Vec<(u32, u32)>,
    num_latches: usize,
    num_inputs: usize,
}

/// Maximum BDD size of a cluster before a new one is started.
const CLUSTER_LIMIT: usize = 2_500;

impl TransitionSystem {
    /// Builds the transition system of `aig` in a fresh manager with the
    /// given node quota.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if construction itself exceeds the quota.
    pub fn build(aig: &Aig, node_quota: usize) -> Result<Self, OutOfNodes> {
        let n = aig.num_latches();
        let mut mgr = BddManager::new(node_quota);
        // var mapping: latch i cur = 2i, next = 2i+1; input j = 2n + j.
        let cur_var = |i: usize| 2 * i as u32;
        let next_var = |i: usize| 2 * i as u32 + 1;
        let input_var = |j: usize| (2 * n + j) as u32;

        // Node → BDD over (cur, input) vars.
        let mut node_bdd: FxHashMap<Var, NodeId> = FxHashMap::default();
        node_bdd.insert(Var(0), NodeId::FALSE);
        for (j, (v, _)) in aig.inputs().iter().enumerate() {
            let b = mgr.var(input_var(j))?;
            node_bdd.insert(*v, b);
        }
        for (i, l) in aig.latches().iter().enumerate() {
            let b = mgr.var(cur_var(i))?;
            node_bdd.insert(l.var, b);
        }
        for v in aig.and_order() {
            let (a, b) = aig.and_fanins(v).expect("AND node");
            let ba = lit_bdd(&mut mgr, &node_bdd, a)?;
            let bb = lit_bdd(&mut mgr, &node_bdd, b)?;
            let r = mgr.and(ba, bb)?;
            node_bdd.insert(v, r);
        }
        let of = |mgr: &mut BddManager, l: Lit| lit_bdd(mgr, &node_bdd, l);

        // Per-latch relations T_i = next_i ↔ f_i, clustered.
        let mut clusters = Vec::new();
        let mut current: Option<NodeId> = None;
        for (i, l) in aig.latches().iter().enumerate() {
            let f = of(&mut mgr, l.next)?;
            let nv = mgr.var(next_var(i))?;
            let t = mgr.xnor(nv, f)?;
            current = Some(match current {
                None => t,
                Some(c) => {
                    let merged = mgr.and(c, t)?;
                    if mgr.size(merged) > CLUSTER_LIMIT {
                        clusters.push(c);
                        t
                    } else {
                        merged
                    }
                }
            });
        }
        if let Some(c) = current {
            clusters.push(c);
        }

        // Constraint and bad.
        let mut constraint = NodeId::TRUE;
        for c in aig.constraints() {
            let b = of(&mut mgr, c.lit)?;
            constraint = mgr.and(constraint, b)?;
        }
        let mut bad = NodeId::FALSE;
        for b in aig.bads() {
            let bb = of(&mut mgr, b.lit)?;
            bad = mgr.or(bad, bb)?;
        }
        let bad_constraint = mgr.and(bad, constraint)?;

        // Initial state cube.
        let mut init = NodeId::TRUE;
        for (i, l) in aig.latches().iter().enumerate().rev() {
            let v = if l.init {
                mgr.var(cur_var(i))?
            } else {
                mgr.nvar(cur_var(i))?
            };
            init = mgr.and(init, v)?;
        }

        // Quantification schedule: a (cur|input) variable is quantified at
        // the last cluster whose support contains it; variables in no
        // cluster go to the residual cube (quantified before cluster 0).
        let quantifiable: Vec<u32> = (0..n)
            .map(cur_var)
            .chain((0..aig.num_inputs()).map(input_var))
            .collect();
        let mut last_use: FxHashMap<u32, usize> = FxHashMap::default();
        for (k, c) in clusters.iter().enumerate() {
            for v in mgr.support(*c) {
                if v % 2 == 0 || v >= 2 * n as u32 {
                    last_use.insert(v, k);
                }
            }
        }
        let mut cluster_vars: Vec<Vec<u32>> = vec![Vec::new(); clusters.len()];
        let mut residual_vars: Vec<u32> = Vec::new();
        for v in quantifiable {
            match last_use.get(&v) {
                Some(&k) => cluster_vars[k].push(v),
                None => residual_vars.push(v),
            }
        }
        let cluster_cubes = cluster_vars
            .into_iter()
            .map(|vs| mgr.cube(&vs))
            .collect::<Result<Vec<_>, _>>()?;
        let residual_cube = mgr.cube(&residual_vars)?;

        let next_to_cur: Vec<(u32, u32)> =
            (0..n).map(|i| (next_var(i), cur_var(i))).collect();

        Ok(TransitionSystem {
            mgr,
            clusters,
            cluster_cubes,
            residual_cube,
            init,
            constraint,
            bad,
            bad_constraint,
            next_to_cur,
            num_latches: n,
            num_inputs: aig.num_inputs(),
        })
    }

    /// Image: states reachable in one constrained step from `s`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the node quota is exhausted.
    pub fn image(&mut self, s: NodeId) -> Result<NodeId, OutOfNodes> {
        let mut acc = self.mgr.and(s, self.constraint)?;
        acc = self.mgr.exists(acc, self.residual_cube)?;
        for k in 0..self.clusters.len() {
            acc = self
                .mgr
                .and_exists(acc, self.clusters[k], self.cluster_cubes[k])?;
        }
        self.mgr.rename(acc, &self.next_to_cur)
    }

    /// True if `s` intersects `bad ∧ constraint` (bad may depend on
    /// inputs, which are quantified existentially). Pure traversal: no
    /// nodes are allocated, so this can neither fail nor eat the quota.
    pub fn intersects_bad(&self, s: NodeId) -> bool {
        self.mgr.intersects(s, self.bad_constraint)
    }

    /// Number of latches (state variables).
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

fn lit_bdd(
    mgr: &mut BddManager,
    node_bdd: &FxHashMap<Var, NodeId>,
    l: Lit,
) -> Result<NodeId, OutOfNodes> {
    let base = node_bdd[&l.var()];
    if l.is_compl() {
        mgr.not(base)
    } else {
        Ok(base)
    }
}

/// Forward-reachability UMC: returns Proved if the bad never intersects
/// the reachable set, the violation depth otherwise.
pub fn bdd_umc(
    aig: &Aig,
    node_quota: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
) -> BddEngineOutcome {
    let mut ts = match TransitionSystem::build(aig, node_quota) {
        Ok(ts) => ts,
        Err(_) => return BddEngineOutcome::ResourceOut,
    };
    let outcome = (|| -> Result<BddEngineOutcome, OutOfNodes> {
        let mut reached = ts.init;
        let mut frontier = ts.init;
        if ts.intersects_bad(frontier) {
            return Ok(BddEngineOutcome::FalsifiedAtDepth(0));
        }
        for depth in 1..=max_iterations {
            let img = ts.image(frontier)?;
            let new = ts.mgr.and_not(img, reached)?;
            stats.iterations = depth;
            if new == NodeId::FALSE {
                return Ok(BddEngineOutcome::Proved);
            }
            if ts.intersects_bad(new) {
                return Ok(BddEngineOutcome::FalsifiedAtDepth(depth));
            }
            reached = ts.mgr.or(reached, new)?;
            frontier = new;
        }
        Ok(BddEngineOutcome::ResourceOut)
    })();
    stats.bdd_nodes = stats.bdd_nodes.max(ts.mgr.num_nodes());
    outcome.unwrap_or(BddEngineOutcome::ResourceOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::Aig;

    fn counter(bits: u32) -> (Aig, Vec<Lit>) {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let lits = qs.iter().map(|(_, q)| *q).collect();
        (g, lits)
    }

    #[test]
    fn reachability_depth_matches_count() {
        let (mut g, qs) = counter(3);
        // bad: counter == 5 (101)
        let t = g.and(qs[0], !qs[1]);
        let bad = g.and(t, qs[2]);
        g.add_bad("five", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(5)
        );
    }

    #[test]
    fn full_space_fixpoint_proves() {
        let (mut g, qs) = counter(3);
        // bad: impossible pattern — q0 & !q0 is constant false; use an
        // extra stuck latch instead.
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let bad = g.and(qs[0], s);
        g.add_bad("never", bad);
        let mut stats = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut stats), BddEngineOutcome::Proved);
        // An 3-bit counter explores 8 states: fixpoint in <= 9 iterations.
        assert!(stats.iterations <= 9);
    }

    #[test]
    fn constraint_restricts_reachability() {
        // Latch loads input; constraint pins input low; bad = latch high.
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, a);
        g.add_constraint("a_low", !a);
        g.add_bad("q_high", q);
        let mut stats = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut stats), BddEngineOutcome::Proved);
    }

    #[test]
    fn quota_exhaustion_reports_resource_out() {
        let (mut g, qs) = counter(16);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 300, 1 << 20, &mut stats),
            BddEngineOutcome::ResourceOut
        );
    }

    #[test]
    fn input_in_bad_is_quantified() {
        // bad = input & latch; latch counts 0,1,0,1...; falsified at depth
        // 1 when the latch first goes high.
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, !q);
        let bad = g.and(a, q);
        g.add_bad("a_and_q", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(1)
        );
    }
}
