//! BDD-based unbounded model checking: clustered transition relations,
//! early quantification, forward reachability.
//!
//! Variable order interleaves current and next state: latch `i` gets
//! current variable `2i` and next variable `2i+1`; primary inputs follow
//! after all state variables. Interleaving keeps the current→next rename
//! order-preserving, so renaming is a linear rebuild.

use crate::checkpoint::ReachCheckpoint;
use crate::engine::Budget;
use crate::CheckStats;
use veridic_aig::{Aig, Lit, Var};
use veridic_bdd::{transfer, BddManager, FxHashMap, NodeId, OutOfNodes};

/// Outcome of a BDD reachability engine.
#[derive(Clone, Debug, PartialEq)]
pub enum BddEngineOutcome {
    /// Bad is unreachable: property proved.
    Proved,
    /// Bad intersects the states reachable in exactly `k` steps.
    FalsifiedAtDepth(usize),
    /// Node quota or iteration limit exhausted.
    ResourceOut,
    /// The cooperative round [`Budget`] stopped the run between rounds;
    /// the checkpoint carries the reached/frontier sets serialized
    /// through [`veridic_bdd::transfer`] so the fixpoint resumes in a
    /// fresh manager. Never returned by the unbudgeted entry points
    /// ([`bdd_umc`], [`crate::pobdd_reach`]).
    Suspended(ReachCheckpoint),
    /// A slot-local round cap stopped the run
    /// ([`Budget::checkpoint_worthwhile`] said no): the scheduler will
    /// hand over to the next engine and discard any state, so no
    /// checkpoint was built — the reached-set export is skipped
    /// entirely. Never returned by the unbudgeted entry points.
    Yielded,
}

/// A transition-system build that exhausted the node quota, carrying the
/// manager's accounting so callers can record honest statistics on the
/// failure path (Table 2/3 used to report 0 nodes for quota-exhausted
/// builds).
#[derive(Clone, Copy, Debug)]
pub struct BuildError {
    /// The underlying quota error.
    pub err: OutOfNodes,
    /// Peak live nodes at the point of failure.
    pub peak_live_nodes: usize,
    /// Total nodes ever allocated (GC-independent).
    pub total_allocated: u64,
}

/// A symbolic transition system: per-latch next-state functions, the
/// constraint and bad relations, initial state and quantification cubes.
///
/// Every field holding a `NodeId` is registered in the manager's root
/// set for the struct's lifetime, so garbage collection under quota
/// pressure only reclaims dead intermediates (old frontiers, image
/// temporaries, superseded accumulators).
#[derive(Debug)]
pub struct TransitionSystem {
    /// The manager owning all nodes below.
    pub mgr: BddManager,
    /// `T_i = (next_i ↔ f_i)` conjuncts, clustered.
    pub clusters: Vec<NodeId>,
    /// Early-quantification cube for each cluster (variables whose last
    /// use is that cluster).
    pub cluster_cubes: Vec<NodeId>,
    /// Variables not used by any cluster, quantified up front.
    pub residual_cube: NodeId,
    /// Initial state predicate (over current vars).
    pub init: NodeId,
    /// Constraint predicate (over current + input vars).
    pub constraint: NodeId,
    /// Bad predicate (over current + input vars).
    pub bad: NodeId,
    /// Precomputed `bad ∧ constraint`, the target of reachability tests.
    pub bad_constraint: NodeId,
    /// Rename map next→current.
    pub next_to_cur: Vec<(u32, u32)>,
    num_latches: usize,
    num_inputs: usize,
}

/// Maximum BDD size of a cluster before a new one is started. Halved
/// when complement edges landed: `size` dropped by roughly 2x for the
/// same logical content, and this keeps the image-step granularity of
/// the tuned non-complemented engine.
const CLUSTER_LIMIT: usize = 1_250;

impl TransitionSystem {
    /// Builds the transition system of `aig` in a fresh manager with the
    /// given node quota. Persistent parts are rooted as they are built,
    /// so construction itself can garbage-collect its dead intermediates
    /// under quota pressure.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] — the quota error plus the manager's node
    /// accounting — if construction exceeds the quota even after GC.
    pub fn build(aig: &Aig, node_quota: usize) -> Result<Self, BuildError> {
        let mut mgr = BddManager::new(node_quota);
        match Self::build_parts(aig, &mut mgr) {
            Ok(parts) => Ok(parts.into_system(mgr, aig)),
            Err(err) => Err(BuildError {
                err,
                peak_live_nodes: mgr.peak_live_nodes(),
                total_allocated: mgr.total_allocated(),
            }),
        }
    }

    fn build_parts(aig: &Aig, mgr: &mut BddManager) -> Result<Parts, OutOfNodes> {
        let n = aig.num_latches();
        // var mapping: latch i cur = 2i, next = 2i+1; input j = 2n + j.
        let cur_var = |i: usize| 2 * i as u32;
        let next_var = |i: usize| 2 * i as u32 + 1;
        let input_var = |j: usize| (2 * n + j) as u32;

        // Node → BDD over (cur, input) vars. Every entry is rooted until
        // the end of construction: these are the values held across
        // allocating calls (and the first protect arms automatic GC).
        let mut node_bdd: FxHashMap<Var, NodeId> = FxHashMap::default();
        node_bdd.insert(Var(0), NodeId::FALSE);
        for (j, (v, _)) in aig.inputs().iter().enumerate() {
            let b = mgr.var(input_var(j))?;
            mgr.protect(b);
            node_bdd.insert(*v, b);
        }
        for (i, l) in aig.latches().iter().enumerate() {
            let b = mgr.var(cur_var(i))?;
            mgr.protect(b);
            node_bdd.insert(l.var, b);
        }
        for v in aig.and_order() {
            let (a, b) = aig.and_fanins(v).expect("AND node");
            let ba = lit_bdd(&node_bdd, a);
            let bb = lit_bdd(&node_bdd, b);
            let r = mgr.and(ba, bb)?;
            mgr.protect(r);
            node_bdd.insert(v, r);
        }

        // Per-latch relations T_i = next_i ↔ f_i, clustered. The running
        // accumulator and the finished clusters stay rooted.
        let mut clusters = Vec::new();
        let mut current: Option<NodeId> = None;
        for (i, l) in aig.latches().iter().enumerate() {
            let f = lit_bdd(&node_bdd, l.next);
            let nv = mgr.var(next_var(i))?;
            let t = mgr.xnor(nv, f)?;
            current = Some(match current {
                None => {
                    mgr.protect(t);
                    t
                }
                Some(c) => {
                    let merged = mgr.and(c, t)?;
                    if mgr.size(merged) > CLUSTER_LIMIT {
                        clusters.push(c); // keeps c's root registration
                        mgr.protect(t);
                        t
                    } else {
                        mgr.reroot(c, merged);
                        merged
                    }
                }
            });
        }
        if let Some(c) = current {
            clusters.push(c);
        }

        // Constraint and bad.
        let mut constraint = NodeId::TRUE;
        for c in aig.constraints() {
            let b = lit_bdd(&node_bdd, c.lit);
            constraint = mgr.and(constraint, b)?;
        }
        mgr.protect(constraint);
        let mut bad = NodeId::FALSE;
        for b in aig.bads() {
            let bb = lit_bdd(&node_bdd, b.lit);
            bad = mgr.or(bad, bb)?;
        }
        mgr.protect(bad);
        let bad_constraint = mgr.and(bad, constraint)?;
        mgr.protect(bad_constraint);

        // Initial state cube.
        let mut init = NodeId::TRUE;
        for (i, l) in aig.latches().iter().enumerate().rev() {
            let v = if l.init {
                mgr.var(cur_var(i))?
            } else {
                mgr.nvar(cur_var(i))?
            };
            let ni = mgr.and(init, v)?;
            mgr.reroot(init, ni);
            init = ni;
        }

        // Quantification schedule: a (cur|input) variable is quantified at
        // the last cluster whose support contains it; variables in no
        // cluster go to the residual cube (quantified before cluster 0).
        let quantifiable: Vec<u32> = (0..n)
            .map(cur_var)
            .chain((0..aig.num_inputs()).map(input_var))
            .collect();
        let mut last_use: FxHashMap<u32, usize> = FxHashMap::default();
        for (k, c) in clusters.iter().enumerate() {
            for v in mgr.support(*c) {
                if v % 2 == 0 || v >= 2 * n as u32 {
                    last_use.insert(v, k);
                }
            }
        }
        let mut cluster_vars: Vec<Vec<u32>> = vec![Vec::new(); clusters.len()];
        let mut residual_vars: Vec<u32> = Vec::new();
        for v in quantifiable {
            match last_use.get(&v) {
                Some(&k) => cluster_vars[k].push(v),
                None => residual_vars.push(v),
            }
        }
        let mut cluster_cubes = Vec::with_capacity(cluster_vars.len());
        for vs in cluster_vars {
            let cb = mgr.cube(&vs)?;
            mgr.protect(cb);
            cluster_cubes.push(cb);
        }
        let residual_cube = mgr.cube(&residual_vars)?;
        mgr.protect(residual_cube);

        // Release the construction temporaries; the returned parts keep
        // their registrations for the manager's lifetime.
        for b in node_bdd.values() {
            mgr.unprotect(*b);
        }

        Ok(Parts {
            clusters,
            cluster_cubes,
            residual_cube,
            init,
            constraint,
            bad,
            bad_constraint,
        })
    }

    /// Image: states reachable in one constrained step from `s`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the node quota is exhausted.
    pub fn image(&mut self, s: NodeId) -> Result<NodeId, OutOfNodes> {
        let mut acc = self.mgr.and(s, self.constraint)?;
        acc = self.mgr.exists(acc, self.residual_cube)?;
        for k in 0..self.clusters.len() {
            acc = self
                .mgr
                .and_exists(acc, self.clusters[k], self.cluster_cubes[k])?;
        }
        self.mgr.rename(acc, &self.next_to_cur)
    }

    /// True if `s` intersects `bad ∧ constraint` (bad may depend on
    /// inputs, which are quantified existentially). Pure traversal: no
    /// nodes are allocated, so this can neither fail nor eat the quota.
    pub fn intersects_bad(&self, s: NodeId) -> bool {
        self.mgr.intersects(s, self.bad_constraint)
    }

    /// Number of latches (state variables).
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

/// The rooted pieces of a transition system, before the manager is moved
/// into the struct.
struct Parts {
    clusters: Vec<NodeId>,
    cluster_cubes: Vec<NodeId>,
    residual_cube: NodeId,
    init: NodeId,
    constraint: NodeId,
    bad: NodeId,
    bad_constraint: NodeId,
}

impl Parts {
    fn into_system(self, mgr: BddManager, aig: &Aig) -> TransitionSystem {
        let n = aig.num_latches();
        let next_to_cur: Vec<(u32, u32)> =
            (0..n).map(|i| (2 * i as u32 + 1, 2 * i as u32)).collect();
        TransitionSystem {
            mgr,
            clusters: self.clusters,
            cluster_cubes: self.cluster_cubes,
            residual_cube: self.residual_cube,
            init: self.init,
            constraint: self.constraint,
            bad: self.bad,
            bad_constraint: self.bad_constraint,
            next_to_cur,
            num_latches: n,
            num_inputs: aig.num_inputs(),
        }
    }
}

/// AIG literal → BDD: with complement edges the complemented literal is
/// a free tag flip, so this neither allocates nor fails.
fn lit_bdd(node_bdd: &FxHashMap<Var, NodeId>, l: Lit) -> NodeId {
    let base = node_bdd[&l.var()];
    if l.is_compl() {
        !base
    } else {
        base
    }
}

/// Forward-reachability UMC: returns Proved if the bad never intersects
/// the reachable set, the violation depth otherwise.
///
/// `reached` and `frontier` are registered as garbage-collection roots,
/// so quota pressure reclaims dead image intermediates and superseded
/// frontiers instead of counting them against the budget. Statistics
/// (peak live nodes, total allocations, quota hits) are recorded on
/// every exit path, including build failure.
pub fn bdd_umc(
    aig: &Aig,
    node_quota: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
) -> BddEngineOutcome {
    bdd_umc_session(aig, node_quota, max_iterations, stats, &mut Budget::unlimited(), None)
}

/// [`bdd_umc`] under a cooperative round [`Budget`], optionally resumed
/// from a [`ReachCheckpoint`] of an earlier suspended run on the same
/// AIG.
///
/// One budget round is consumed per reachability image. When the budget
/// trips *between* rounds, the engine exports its reached and frontier
/// sets through [`veridic_bdd::transfer`] and returns
/// [`BddEngineOutcome::Suspended`]; resuming imports them into a fresh
/// manager and continues at round `depth + 1`, so verdict, falsification
/// depth and the completed-round count in [`CheckStats::iterations`]
/// are identical to an uninterrupted run (manager accounting —
/// allocations, peaks — naturally differs: the fresh manager never
/// built the dead intermediates of the first session).
pub fn bdd_umc_session(
    aig: &Aig,
    node_quota: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> BddEngineOutcome {
    let mut ts = match TransitionSystem::build(aig, node_quota) {
        Ok(ts) => ts,
        Err(e) => {
            stats.bdd_nodes = stats.bdd_nodes.max(e.peak_live_nodes);
            stats.bdd_allocated += e.total_allocated;
            stats.bdd_quota_hits += 1;
            return BddEngineOutcome::ResourceOut;
        }
    };
    let outcome = (|| -> Result<BddEngineOutcome, OutOfNodes> {
        let (mut reached, mut frontier, start_depth) = match resume {
            Some(ck) => {
                assert_eq!(ck.window_vars, 0, "monolithic engine resumed with a POBDD checkpoint");
                assert_eq!(ck.reached.len(), 1, "monolithic checkpoint has one window");
                // Imports arrive rooted — exactly the registration the
                // reached/frontier slots own below.
                let r = transfer::import(&ck.reached[0], &mut ts.mgr)?;
                let f = transfer::import(&ck.frontier[0], &mut ts.mgr)?;
                (r, f, ck.depth)
            }
            None => {
                let reached = ts.init;
                let frontier = ts.init;
                ts.mgr.protect(reached);
                ts.mgr.protect(frontier);
                if ts.intersects_bad(frontier) {
                    return Ok(BddEngineOutcome::FalsifiedAtDepth(0));
                }
                (reached, frontier, 0)
            }
        };
        // `stats.iterations` counts *completed* rounds: a round that
        // concludes the check (fixpoint or falsification) counts, a
        // round aborted by the quota does not — the same convention as
        // `pobdd_reach`, so a quota failure during the depth-d image
        // reports d-1 from both engines (it used to report d-1 here and
        // d there, skewing Tables 2/3 between engines).
        for depth in start_depth + 1..=max_iterations {
            if !budget.tick() {
                if !budget.checkpoint_worthwhile() {
                    return Ok(BddEngineOutcome::Yielded);
                }
                return Ok(BddEngineOutcome::Suspended(ReachCheckpoint {
                    depth: depth - 1,
                    reached: vec![transfer::export(&ts.mgr, reached)],
                    frontier: vec![transfer::export(&ts.mgr, frontier)],
                    window_vars: 0,
                }));
            }
            let img = ts.image(frontier)?;
            let new = ts.mgr.and_not(img, reached)?;
            if new == NodeId::FALSE {
                stats.iterations = depth;
                return Ok(BddEngineOutcome::Proved);
            }
            if ts.intersects_bad(new) {
                stats.iterations = depth;
                return Ok(BddEngineOutcome::FalsifiedAtDepth(depth));
            }
            ts.mgr.protect(new); // becomes the next frontier
            let r = ts.mgr.or(reached, new)?;
            ts.mgr.reroot(reached, r);
            reached = r;
            ts.mgr.unprotect(frontier);
            frontier = new;
            stats.iterations = depth;
        }
        Ok(BddEngineOutcome::ResourceOut)
    })();
    stats.bdd_nodes = stats.bdd_nodes.max(ts.mgr.peak_live_nodes());
    stats.bdd_allocated += ts.mgr.total_allocated();
    match outcome {
        Ok(o) => o,
        Err(_) => {
            stats.bdd_quota_hits += 1;
            BddEngineOutcome::ResourceOut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::Aig;

    fn counter(bits: u32) -> (Aig, Vec<Lit>) {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let lits = qs.iter().map(|(_, q)| *q).collect();
        (g, lits)
    }

    /// The quota-semantics acceptance check: a reachability run whose
    /// total allocations are an order of magnitude beyond the quota —
    /// which therefore exhausted the quota before garbage collection
    /// existed — now completes under that same quota, because the quota
    /// counts *live* nodes and GC reclaims dead image intermediates.
    #[test]
    fn gc_lets_check_complete_under_tight_quota() {
        let (mut g, qs) = counter(10);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let quota = 400;
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, quota, 1 << 20, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(1023)
        );
        assert!(stats.bdd_nodes <= quota, "peak live stays within the quota");
        assert!(
            stats.bdd_allocated > 10 * quota as u64,
            "allocations far beyond the quota prove GC carried the run: {}",
            stats.bdd_allocated
        );
    }

    /// Regression: quota-exhausted builds used to report 0 peak nodes.
    #[test]
    fn quota_exhausted_build_records_stats() {
        let (mut g, qs) = counter(16);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 300, 1 << 20, &mut stats),
            BddEngineOutcome::ResourceOut
        );
        assert!(stats.bdd_nodes > 0, "failure path must record peak live nodes");
        assert!(stats.bdd_allocated > 0);
        assert_eq!(stats.bdd_quota_hits, 1);
    }

    #[test]
    fn reachability_depth_matches_count() {
        let (mut g, qs) = counter(3);
        // bad: counter == 5 (101)
        let t = g.and(qs[0], !qs[1]);
        let bad = g.and(t, qs[2]);
        g.add_bad("five", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(5)
        );
    }

    #[test]
    fn full_space_fixpoint_proves() {
        let (mut g, qs) = counter(3);
        // bad: impossible pattern — q0 & !q0 is constant false; use an
        // extra stuck latch instead.
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let bad = g.and(qs[0], s);
        g.add_bad("never", bad);
        let mut stats = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut stats), BddEngineOutcome::Proved);
        // An 3-bit counter explores 8 states: fixpoint in <= 9 iterations.
        assert!(stats.iterations <= 9);
    }

    #[test]
    fn constraint_restricts_reachability() {
        // Latch loads input; constraint pins input low; bad = latch high.
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, a);
        g.add_constraint("a_low", !a);
        g.add_bad("q_high", q);
        let mut stats = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut stats), BddEngineOutcome::Proved);
    }

    #[test]
    fn quota_exhaustion_reports_resource_out() {
        let (mut g, qs) = counter(16);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 300, 1 << 20, &mut stats),
            BddEngineOutcome::ResourceOut
        );
    }

    #[test]
    fn input_in_bad_is_quantified() {
        // bad = input & latch; latch counts 0,1,0,1...; falsified at depth
        // 1 when the latch first goes high.
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, !q);
        let bad = g.and(a, q);
        g.add_bad("a_and_q", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(1)
        );
    }
}
