//! BDD-based unbounded model checking: clustered transition relations,
//! early quantification, forward reachability.
//!
//! Variable order interleaves current and next state: latch `i` gets
//! current variable `2i` and next variable `2i+1`; primary inputs follow
//! after all state variables. Interleaving keeps the current→next rename
//! order-preserving, so renaming is a linear rebuild.

use crate::checkpoint::ReachCheckpoint;
use crate::engine::Budget;
use crate::pobdd::choose_split_vars;
use crate::{BddWorkerStats, CheckStats};
use std::sync::mpsc::{Receiver, Sender};
use veridic_aig::{Aig, Lit, Var};
use veridic_bdd::transfer::{self, DeltaBdd, ExportedBdd};
use veridic_bdd::{BddManager, FxHashMap, NodeId, OutOfNodes};

/// Outcome of a BDD reachability engine.
#[derive(Clone, Debug, PartialEq)]
pub enum BddEngineOutcome {
    /// Bad is unreachable: property proved.
    Proved,
    /// Bad intersects the states reachable in exactly `k` steps.
    FalsifiedAtDepth(usize),
    /// Node quota or iteration limit exhausted.
    ResourceOut,
    /// The cooperative round [`Budget`] stopped the run between rounds;
    /// the checkpoint carries the reached/frontier sets serialized
    /// through [`veridic_bdd::transfer`] so the fixpoint resumes in a
    /// fresh manager. Never returned by the unbudgeted entry points
    /// ([`bdd_umc`], [`crate::pobdd_reach`]).
    Suspended(ReachCheckpoint),
    /// A slot-local round cap stopped the run
    /// ([`Budget::checkpoint_worthwhile`] said no): the scheduler will
    /// hand over to the next engine and discard any state, so no
    /// checkpoint was built — the reached-set export is skipped
    /// entirely. Never returned by the unbudgeted entry points.
    Yielded,
}

/// A transition-system build that exhausted the node quota, carrying the
/// manager's accounting so callers can record honest statistics on the
/// failure path (Table 2/3 used to report 0 nodes for quota-exhausted
/// builds).
#[derive(Clone, Copy, Debug)]
pub struct BuildError {
    /// The underlying quota error.
    pub err: OutOfNodes,
    /// Peak live nodes at the point of failure.
    pub peak_live_nodes: usize,
    /// Total nodes ever allocated (GC-independent).
    pub total_allocated: u64,
}

/// A symbolic transition system: per-latch next-state functions, the
/// constraint and bad relations, initial state and quantification cubes.
///
/// Every field holding a `NodeId` is registered in the manager's root
/// set for the struct's lifetime, so garbage collection under quota
/// pressure only reclaims dead intermediates (old frontiers, image
/// temporaries, superseded accumulators).
#[derive(Debug)]
pub struct TransitionSystem {
    /// The manager owning all nodes below.
    pub mgr: BddManager,
    /// `T_i = (next_i ↔ f_i)` conjuncts, clustered.
    pub clusters: Vec<NodeId>,
    /// Early-quantification cube for each cluster (variables whose last
    /// use is that cluster).
    pub cluster_cubes: Vec<NodeId>,
    /// Variables not used by any cluster, quantified up front.
    pub residual_cube: NodeId,
    /// Initial state predicate (over current vars).
    pub init: NodeId,
    /// Constraint predicate (over current + input vars).
    pub constraint: NodeId,
    /// Bad predicate (over current + input vars).
    pub bad: NodeId,
    /// Precomputed `bad ∧ constraint`, the target of reachability tests.
    pub bad_constraint: NodeId,
    /// Rename map next→current.
    pub next_to_cur: Vec<(u32, u32)>,
    num_latches: usize,
    num_inputs: usize,
}

/// Maximum BDD size of a cluster before a new one is started. Halved
/// when complement edges landed: `size` dropped by roughly 2x for the
/// same logical content, and this keeps the image-step granularity of
/// the tuned non-complemented engine.
const CLUSTER_LIMIT: usize = 1_250;

impl TransitionSystem {
    /// Builds the transition system of `aig` in a fresh manager with the
    /// given node quota. Persistent parts are rooted as they are built,
    /// so construction itself can garbage-collect its dead intermediates
    /// under quota pressure.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] — the quota error plus the manager's node
    /// accounting — if construction exceeds the quota even after GC.
    pub fn build(aig: &Aig, node_quota: usize) -> Result<Self, BuildError> {
        Self::build_with_order(aig, node_quota, None)
    }

    /// [`TransitionSystem::build`] with the manager's variable order
    /// seeded before any node exists. `order` is a permutation of the
    /// full BDD variable space (see `static_bdd_order`); `None` keeps
    /// the natural interleaved order and is byte-identical to
    /// [`TransitionSystem::build`] — the seeding is an extra call on an
    /// empty manager, never a changed one.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] — the quota error plus the manager's node
    /// accounting — if construction exceeds the quota even after GC.
    pub fn build_with_order(
        aig: &Aig,
        node_quota: usize,
        order: Option<&[u32]>,
    ) -> Result<Self, BuildError> {
        let mut mgr = BddManager::new(node_quota);
        if let Some(order) = order {
            mgr.adopt_order(order);
        }
        match Self::build_parts(aig, &mut mgr) {
            Ok(parts) => Ok(parts.into_system(mgr, aig)),
            Err(err) => Err(BuildError {
                err,
                peak_live_nodes: mgr.peak_live_nodes(),
                total_allocated: mgr.total_allocated(),
            }),
        }
    }

    fn build_parts(aig: &Aig, mgr: &mut BddManager) -> Result<Parts, OutOfNodes> {
        let n = aig.num_latches();
        // var mapping: latch i cur = 2i, next = 2i+1; input j = 2n + j.
        let cur_var = |i: usize| 2 * i as u32;
        let next_var = |i: usize| 2 * i as u32 + 1;
        let input_var = |j: usize| (2 * n + j) as u32;

        // Node → BDD over (cur, input) vars. Every entry is rooted until
        // the end of construction: these are the values held across
        // allocating calls (and the first protect arms automatic GC).
        let mut node_bdd: FxHashMap<Var, NodeId> = FxHashMap::default();
        node_bdd.insert(Var(0), NodeId::FALSE);
        for (j, (v, _)) in aig.inputs().iter().enumerate() {
            let b = mgr.var(input_var(j))?;
            mgr.protect(b);
            node_bdd.insert(*v, b);
        }
        for (i, l) in aig.latches().iter().enumerate() {
            let b = mgr.var(cur_var(i))?;
            mgr.protect(b);
            node_bdd.insert(l.var, b);
        }
        for v in aig.and_order() {
            let (a, b) = aig.and_fanins(v).expect("AND node"); // lint: allow
            let ba = lit_bdd(&node_bdd, a);
            let bb = lit_bdd(&node_bdd, b);
            let r = mgr.and(ba, bb)?;
            mgr.protect(r);
            node_bdd.insert(v, r);
        }

        // Per-latch relations T_i = next_i ↔ f_i, clustered. The running
        // accumulator and the finished clusters stay rooted.
        let mut clusters = Vec::new();
        let mut current: Option<NodeId> = None;
        for (i, l) in aig.latches().iter().enumerate() {
            let f = lit_bdd(&node_bdd, l.next);
            let nv = mgr.var(next_var(i))?;
            let t = mgr.xnor(nv, f)?;
            current = Some(match current {
                None => {
                    mgr.protect(t);
                    t
                }
                Some(c) => {
                    let merged = mgr.and(c, t)?;
                    if mgr.size(merged) > CLUSTER_LIMIT {
                        clusters.push(c); // keeps c's root registration
                        mgr.protect(t);
                        t
                    } else {
                        mgr.reroot(c, merged);
                        merged
                    }
                }
            });
        }
        if let Some(c) = current {
            clusters.push(c);
        }

        // Constraint and bad.
        let mut constraint = NodeId::TRUE;
        for c in aig.constraints() {
            let b = lit_bdd(&node_bdd, c.lit);
            constraint = mgr.and(constraint, b)?;
        }
        mgr.protect(constraint);
        let mut bad = NodeId::FALSE;
        for b in aig.bads() {
            let bb = lit_bdd(&node_bdd, b.lit);
            bad = mgr.or(bad, bb)?;
        }
        mgr.protect(bad);
        let bad_constraint = mgr.and(bad, constraint)?;
        mgr.protect(bad_constraint);

        // Initial state cube.
        let mut init = NodeId::TRUE;
        for (i, l) in aig.latches().iter().enumerate().rev() {
            let v = if l.init {
                mgr.var(cur_var(i))?
            } else {
                mgr.nvar(cur_var(i))?
            };
            let ni = mgr.and(init, v)?;
            mgr.reroot(init, ni);
            init = ni;
        }

        // Quantification schedule: a (cur|input) variable is quantified at
        // the last cluster whose support contains it; variables in no
        // cluster go to the residual cube (quantified before cluster 0).
        let quantifiable: Vec<u32> = (0..n)
            .map(cur_var)
            .chain((0..aig.num_inputs()).map(input_var))
            .collect();
        let mut last_use: FxHashMap<u32, usize> = FxHashMap::default();
        for (k, c) in clusters.iter().enumerate() {
            for v in mgr.support(*c) {
                if v % 2 == 0 || v >= 2 * n as u32 {
                    last_use.insert(v, k);
                }
            }
        }
        let mut cluster_vars: Vec<Vec<u32>> = vec![Vec::new(); clusters.len()];
        let mut residual_vars: Vec<u32> = Vec::new();
        for v in quantifiable {
            match last_use.get(&v) {
                Some(&k) => cluster_vars[k].push(v),
                None => residual_vars.push(v),
            }
        }
        let mut cluster_cubes = Vec::with_capacity(cluster_vars.len());
        for vs in cluster_vars {
            let cb = mgr.cube(&vs)?;
            mgr.protect(cb);
            cluster_cubes.push(cb);
        }
        let residual_cube = mgr.cube(&residual_vars)?;
        mgr.protect(residual_cube);

        // Release the construction temporaries; the returned parts keep
        // their registrations for the manager's lifetime.
        for b in node_bdd.values() {
            mgr.unprotect(*b);
        }

        Ok(Parts {
            clusters,
            cluster_cubes,
            residual_cube,
            init,
            constraint,
            bad,
            bad_constraint,
        })
    }

    /// Image: states reachable in one constrained step from `s`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfNodes`] if the node quota is exhausted.
    pub fn image(&mut self, s: NodeId) -> Result<NodeId, OutOfNodes> {
        let mut acc = self.mgr.and(s, self.constraint)?;
        acc = self.mgr.exists(acc, self.residual_cube)?;
        for k in 0..self.clusters.len() {
            acc = self
                .mgr
                .and_exists(acc, self.clusters[k], self.cluster_cubes[k])?;
        }
        self.mgr.rename(acc, &self.next_to_cur)
    }

    /// True if `s` intersects `bad ∧ constraint` (bad may depend on
    /// inputs, which are quantified existentially). Pure traversal: no
    /// nodes are allocated, so this can neither fail nor eat the quota.
    pub fn intersects_bad(&self, s: NodeId) -> bool {
        self.mgr.intersects(s, self.bad_constraint)
    }

    /// Number of latches (state variables).
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

/// The rooted pieces of a transition system, before the manager is moved
/// into the struct.
struct Parts {
    clusters: Vec<NodeId>,
    cluster_cubes: Vec<NodeId>,
    residual_cube: NodeId,
    init: NodeId,
    constraint: NodeId,
    bad: NodeId,
    bad_constraint: NodeId,
}

impl Parts {
    fn into_system(self, mgr: BddManager, aig: &Aig) -> TransitionSystem {
        let n = aig.num_latches();
        let next_to_cur: Vec<(u32, u32)> =
            (0..n).map(|i| (2 * i as u32 + 1, 2 * i as u32)).collect();
        TransitionSystem {
            mgr,
            clusters: self.clusters,
            cluster_cubes: self.cluster_cubes,
            residual_cube: self.residual_cube,
            init: self.init,
            constraint: self.constraint,
            bad: self.bad,
            bad_constraint: self.bad_constraint,
            next_to_cur,
            num_latches: n,
            num_inputs: aig.num_inputs(),
        }
    }
}

/// AIG literal → BDD: with complement edges the complemented literal is
/// a free tag flip, so this neither allocates nor fails.
fn lit_bdd(node_bdd: &FxHashMap<Var, NodeId>, l: Lit) -> NodeId {
    let base = node_bdd[&l.var()];
    if l.is_compl() {
        !base
    } else {
        base
    }
}

/// Forward-reachability UMC: returns Proved if the bad never intersects
/// the reachable set, the violation depth otherwise.
///
/// `reached` and `frontier` are registered as garbage-collection roots,
/// so quota pressure reclaims dead image intermediates and superseded
/// frontiers instead of counting them against the budget. Statistics
/// (peak live nodes, total allocations, quota hits) are recorded on
/// every exit path, including build failure.
pub fn bdd_umc(
    aig: &Aig,
    node_quota: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
) -> BddEngineOutcome {
    bdd_umc_session(
        aig,
        node_quota,
        max_iterations,
        1,
        false,
        false,
        stats,
        &mut Budget::unlimited(),
        None,
    )
}

/// A FORCE static variable order translated into the BDD variable
/// space, plus the span accounting recorded into
/// [`CheckStats::static_order_span_before`] /
/// [`CheckStats::static_order_span_after`].
pub(crate) struct StaticOrder {
    /// Permutation of the full BDD variable space `0..2n+i`: each
    /// latch's `(2i, 2i+1)` twin stays adjacent (so the interleaved
    /// rename and the dynamic-reorder pair pinning keep working),
    /// placed at the latch slot's FORCE position; inputs follow their
    /// own FORCE positions.
    pub order: Vec<u32>,
    /// Total hyperedge span of the natural order.
    pub span_before: u64,
    /// Total hyperedge span of the adopted order.
    pub span_after: u64,
}

/// Computes the FORCE static order for `aig`
/// (`veridic_aig::structure::force_order`) and translates the
/// latch/input slot permutation into a BDD variable order. Purely
/// structural — a function of the AIG alone, identical for every
/// worker count, lane and window.
pub(crate) fn static_bdd_order(aig: &Aig) -> StaticOrder {
    let fo = veridic_aig::structure::force_order(aig);
    let n = aig.num_latches();
    let mut order = Vec::with_capacity(2 * n + aig.num_inputs());
    for &slot in &fo.slots {
        if (slot as usize) < n {
            order.push(2 * slot);
            order.push(2 * slot + 1);
        } else {
            order.push((2 * n) as u32 + (slot - n as u32));
        }
    }
    StaticOrder { order, span_before: fo.span_before, span_after: fo.span_after }
}

/// Arms in-place dynamic reordering on a manager holding a transition
/// system: every latch's current/next twin `(2i, 2i+1)` is pinned as a
/// 2-block so the interleaved rename stays order-preserving through
/// sifting, and the growth trigger scales with the quota the same way
/// the lane GC threshold does. Verdict-neutral by construction — a
/// reorder changes node placement, never the functions the rooted ids
/// denote.
pub(crate) fn arm_dynamic_reorder(mgr: &mut BddManager, num_latches: usize, node_quota: usize) {
    mgr.set_reorder_pairs((0..num_latches as u32).map(|i| (2 * i, 2 * i + 1)).collect());
    // Fire the first sift while the table is still small (1/32 of the
    // quota): the order learned early on the design's structure rides
    // through any later blowup, and the manager's geometric backoff +
    // quota/16 ceiling keep the total reorder cost bounded — and keep
    // sifting away from memout-bound runs, where a better order only
    // delays the quota death.
    mgr.set_auto_reorder(Some((node_quota / 32).max(1 << 12)));
}

/// [`bdd_umc`] under a cooperative round [`Budget`], optionally resumed
/// from a [`ReachCheckpoint`] of an earlier suspended run on the same
/// AIG.
///
/// One budget round is consumed per reachability image. When the budget
/// trips *between* rounds, the engine exports its reached and frontier
/// sets through [`veridic_bdd::transfer`] (the frontier delta-encoded
/// against the reached export — it is a subset, so the delta is small)
/// and returns [`BddEngineOutcome::Suspended`]; resuming imports them
/// into a fresh manager and continues at round `depth + 1`, so verdict,
/// falsification depth and the completed-round count in
/// [`CheckStats::iterations`] are identical to an uninterrupted run
/// (manager accounting — allocations, peaks — naturally differs: the
/// fresh manager never built the dead intermediates of the first
/// session).
///
/// `image_workers` selects the image strategy: `1` (the default) is the
/// serial engine, unchanged; any other value fans the per-round image
/// out across lane threads (`0` = one per available CPU) as described
/// on `parallel_umc_session` (private) — verdict, depth and iteration count are
/// identical to serial for every worker count, and all manager-level
/// statistics are identical across parallel worker counts.
///
/// `dynamic_reorder` arms automatic in-place variable sifting (see
/// [`veridic_bdd::BddManager::sift`]) on every manager the session
/// creates — the serial manager, the coordinator and each image lane.
/// Verdict, depth and iteration count are unaffected; only node counts
/// and wall-clock move.
///
/// `static_order` seeds every manager the session creates with the
/// FORCE static variable order (see `static_bdd_order`) before any
/// node is built. Also verdict/depth/iteration-neutral; with it off no
/// extra call of any kind is made, so the run is byte-identical to
/// previous releases.
#[allow(clippy::too_many_arguments)]
pub fn bdd_umc_session(
    aig: &Aig,
    node_quota: usize,
    max_iterations: usize,
    image_workers: usize,
    dynamic_reorder: bool,
    static_order: bool,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> BddEngineOutcome {
    let seeded = if static_order {
        let so = static_bdd_order(aig);
        stats.static_order_span_before = so.span_before;
        stats.static_order_span_after = so.span_after;
        Some(so.order)
    } else {
        None
    };
    let order = seeded.as_deref();
    let mut ts = match TransitionSystem::build_with_order(aig, node_quota, order) {
        Ok(ts) => ts,
        Err(e) => {
            stats.bdd_nodes = stats.bdd_nodes.max(e.peak_live_nodes);
            stats.bdd_allocated += e.total_allocated;
            stats.bdd_quota_hits += 1;
            return BddEngineOutcome::ResourceOut;
        }
    };
    if dynamic_reorder {
        let n_latches = ts.num_latches();
        arm_dynamic_reorder(&mut ts.mgr, n_latches, node_quota);
    }
    let workers = effective_image_workers(image_workers);
    if workers > 1 {
        // The lane split is derived from the transition system alone, so
        // the lane structure — and with it every lane manager's op
        // sequence — is independent of the worker count. No entangled
        // variables means no way to partition the state space: fall
        // through to the serial engine.
        let split = choose_split_vars(&ts, IMAGE_LANE_VARS);
        if !split.is_empty() {
            return parallel_umc_session(
                aig,
                ts,
                node_quota,
                max_iterations,
                workers,
                dynamic_reorder,
                order,
                &split,
                stats,
                budget,
                resume,
            );
        }
    }
    let outcome = (|| -> Result<BddEngineOutcome, OutOfNodes> {
        let (mut reached, mut frontier, start_depth) = match session_start(&mut ts, resume)? {
            Some(start) => start,
            None => return Ok(BddEngineOutcome::FalsifiedAtDepth(0)),
        };
        // `stats.iterations` counts *completed* rounds: a round that
        // concludes the check (fixpoint or falsification) counts, a
        // round aborted by the quota does not — the same convention as
        // `pobdd_reach`, so a quota failure during the depth-d image
        // reports d-1 from both engines (it used to report d-1 here and
        // d there, skewing Tables 2/3 between engines).
        for depth in start_depth + 1..=max_iterations {
            if !budget.tick() {
                if !budget.checkpoint_worthwhile() {
                    return Ok(BddEngineOutcome::Yielded);
                }
                return Ok(BddEngineOutcome::Suspended(monolithic_checkpoint(
                    &ts.mgr,
                    depth - 1,
                    reached,
                    frontier,
                )));
            }
            let img = ts.image(frontier)?;
            let new = ts.mgr.and_not(img, reached)?;
            if new == NodeId::FALSE {
                stats.iterations = depth;
                return Ok(BddEngineOutcome::Proved);
            }
            if ts.intersects_bad(new) {
                stats.iterations = depth;
                return Ok(BddEngineOutcome::FalsifiedAtDepth(depth));
            }
            ts.mgr.protect(new); // becomes the next frontier
            let r = ts.mgr.or(reached, new)?;
            ts.mgr.reroot(reached, r);
            reached = r;
            ts.mgr.unprotect(frontier);
            frontier = new;
            stats.iterations = depth;
        }
        Ok(BddEngineOutcome::ResourceOut)
    })();
    stats.bdd_nodes = stats.bdd_nodes.max(ts.mgr.peak_live_nodes());
    stats.bdd_allocated += ts.mgr.total_allocated();
    fold_reorder_stats(stats, &ts.mgr);
    match outcome {
        Ok(o) => o,
        Err(_) => {
            stats.bdd_quota_hits += 1;
            BddEngineOutcome::ResourceOut
        }
    }
}

// ---------------------------------------------------------------------
// Parallel image: disjunctive lane decomposition.
// ---------------------------------------------------------------------

/// Number of lane-splitting variables for the parallel image: the
/// current-state space is partitioned into `2^IMAGE_LANE_VARS` window
/// lanes (fewer when fewer variables are structurally entangled), fixed
/// by the transition system alone — never by the worker count — so
/// every manager's op sequence, and with it all statistics, is
/// worker-count-invariant.
const IMAGE_LANE_VARS: u32 = 2;

/// Folds a manager's lifetime reordering counters into the check's
/// aggregate [`CheckStats`] (also used by the POBDD engine).
pub(crate) fn fold_reorder_stats(stats: &mut CheckStats, mgr: &BddManager) {
    let (runs, before, after) = mgr.reorder_stats();
    stats.reorders += runs;
    stats.reorder_nodes_before += before;
    stats.reorder_nodes_after += after;
}

/// Resolves [`crate::CheckOptions::image_workers`]: `0` means one per
/// available CPU.
fn effective_image_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Shared prologue of the serial and parallel monolithic sessions:
/// import the checkpoint (the frontier through the delta path, against
/// its paired reached export) or root the initial state and run the
/// depth-0 bad check. `Ok(None)` means bad intersects the initial
/// states.
fn session_start(
    ts: &mut TransitionSystem,
    resume: Option<&ReachCheckpoint>,
) -> Result<Option<(NodeId, NodeId, usize)>, OutOfNodes> {
    match resume {
        Some(ck) => {
            assert_eq!(ck.window_vars, 0, "monolithic engine resumed with a POBDD checkpoint");
            assert_eq!(ck.reached.len(), 1, "monolithic checkpoint has one window");
            // Imports arrive rooted — exactly the registration the
            // reached/frontier slots own.
            let r = transfer::import(&ck.reached[0], &mut ts.mgr)?;
            let f = transfer::import_delta(&ck.frontier[0], &ck.reached[0], &mut ts.mgr)?;
            Ok(Some((r, f, ck.depth)))
        }
        None => {
            let init = ts.init;
            ts.mgr.protect(init); // reached slot
            ts.mgr.protect(init); // frontier slot
            if ts.intersects_bad(init) {
                return Ok(None);
            }
            Ok(Some((init, init, 0)))
        }
    }
}

/// Builds the monolithic [`ReachCheckpoint`]: the reached set as a full
/// export, the frontier delta-encoded against it — the frontier is a
/// subset of the reached set, so the delta ships only the nodes the
/// frontier's cone adds over the reached cone.
fn monolithic_checkpoint(
    mgr: &BddManager,
    depth: usize,
    reached: NodeId,
    frontier: NodeId,
) -> ReachCheckpoint {
    let reached_export = transfer::export(mgr, reached);
    let frontier_delta = transfer::export_delta(mgr, frontier, &reached_export);
    ReachCheckpoint {
        depth,
        reached: vec![reached_export],
        frontier: vec![frontier_delta],
        window_vars: 0,
    }
}

/// Coordinator → lane-thread commands for the parallel image.
enum ToLane {
    /// Compute this round's lane images from the broadcast frontier
    /// delta (encoded against the chained baseline both sides maintain).
    Round(DeltaBdd),
    /// Tear down and report per-lane manager accounting.
    Stop,
}

/// Lane-thread → coordinator replies. Every command is answered by
/// exactly one reply (even on quota failure), so the coordinator's
/// barrier is a fixed receive count per phase.
enum FromLane {
    /// Setup finished (or failed: `ok == false`).
    Built { ok: bool },
    /// One `(lane, image export)` pair per owned lane, in ascending
    /// lane order.
    Images { images: Vec<(usize, ExportedBdd)>, ok: bool },
}

/// Monolithic forward reachability with the per-round image fanned out
/// across `workers` lane threads.
///
/// # The determinism contract
///
/// The current-state space is partitioned by window cubes over
/// [`IMAGE_LANE_VARS`] splitting variables (the same most-entangled
/// selection the POBDD engine uses) into `L <= 2^IMAGE_LANE_VARS`
/// *lanes*, fixed by the transition system alone. Since `∃` and `∧`
/// distribute over `∨`, the image decomposes disjunctively:
///
/// ```text
/// image(s) = ⋃_l image(s ∧ w_l)
/// ```
///
/// and each lane runs the *serial* early-quantification schedule — the
/// schedule depends only on the clusters, never on the accumulator, so
/// it stays valid for any conjunct of `s`. Each lane owns a private
/// [`TransitionSystem`]/manager seeded once at session start; lane `l`
/// runs on thread `l mod nthreads`. Per round the coordinator
/// broadcasts the frontier as a [`DeltaBdd`] against a chained baseline
/// (both sides rebase on the same delta, so the baselines agree without
/// ever being shipped), and OR-merges the returned lane images into the
/// main manager in ascending lane order. Consequences:
///
/// * verdict, falsification depth and completed-round count equal the
///   serial engine's for every worker count (same set-level fixpoint,
///   same round structure);
/// * every manager's op sequence is lane- or coordinator-local and
///   worker-count-independent, so *all* manager statistics — peak live
///   nodes, allocations, the per-lane entries in
///   [`CheckStats::worker_bdd`] — are identical across parallel worker
///   counts (serial peak-live naturally differs: the coordinator's
///   manager never builds image intermediates here);
/// * quota exhaustion in any lane aborts the round exactly like a
///   serial mid-image quota failure: the round does not count toward
///   [`CheckStats::iterations`] and the engine reports resource-out.
#[allow(clippy::too_many_arguments)]
fn parallel_umc_session(
    aig: &Aig,
    mut ts: TransitionSystem,
    node_quota: usize,
    max_iterations: usize,
    workers: usize,
    dynamic_reorder: bool,
    order: Option<&[u32]>,
    split: &[u32],
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> BddEngineOutcome {
    let nlanes = 1usize << split.len();
    let nthreads = workers.min(nlanes);
    let (up_tx, up_rx) = std::sync::mpsc::channel::<(usize, FromLane)>();
    let (outcome, lane_stats) = std::thread::scope(|s| {
        let mut to_lanes = Vec::with_capacity(nthreads);
        let mut handles = Vec::with_capacity(nthreads);
        for tid in 0..nthreads {
            let (down_tx, down_rx) = std::sync::mpsc::channel::<ToLane>();
            let up = up_tx.clone();
            to_lanes.push(down_tx);
            handles.push(s.spawn(move || {
                image_lane_worker(
                    aig,
                    tid,
                    nthreads,
                    nlanes,
                    split,
                    node_quota,
                    dynamic_reorder,
                    order,
                    &down_rx,
                    &up,
                )
            }));
        }
        // Only the lane threads hold senders now: if every thread died,
        // the coordinator's recv errors out instead of blocking forever.
        drop(up_tx);
        let outcome = drive_image_rounds(
            &mut ts,
            &to_lanes,
            &up_rx,
            nthreads,
            nlanes,
            max_iterations,
            stats,
            budget,
            resume,
        );
        for tx in &to_lanes {
            let _ = tx.send(ToLane::Stop);
        }
        let mut lane_stats: Vec<(usize, BddWorkerStats)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("image lane worker panicked")) // lint: allow
            .collect();
        lane_stats.sort_unstable_by_key(|(l, _)| *l);
        (outcome, lane_stats)
    });
    stats.bdd_nodes = stats.bdd_nodes.max(ts.mgr.peak_live_nodes());
    stats.bdd_allocated += ts.mgr.total_allocated();
    fold_reorder_stats(stats, &ts.mgr);
    for (_, ws) in &lane_stats {
        stats.bdd_nodes = stats.bdd_nodes.max(ws.peak_live_nodes);
        stats.bdd_allocated += ws.allocated;
        stats.bdd_quota_hits += ws.quota_hit as usize;
        stats.reorders += ws.reorders;
        stats.reorder_nodes_before += ws.reorder_nodes_before;
        stats.reorder_nodes_after += ws.reorder_nodes_after;
    }
    stats.worker_bdd = lane_stats.into_iter().map(|(_, ws)| ws).collect();
    match outcome {
        Ok(o) => o,
        Err(_) => {
            stats.bdd_quota_hits += 1;
            BddEngineOutcome::ResourceOut
        }
    }
}

/// The coordinator's round loop of the parallel image session: the
/// serial fixpoint with `ts.image(frontier)` replaced by the lane
/// fan-out. Errors are main-manager quota failures; lane quota failures
/// come back through the protocol and degrade to resource-out directly
/// (the lane's own accounting records the hit).
#[allow(clippy::too_many_arguments)]
fn drive_image_rounds(
    ts: &mut TransitionSystem,
    to_lanes: &[Sender<ToLane>],
    up_rx: &Receiver<(usize, FromLane)>,
    nthreads: usize,
    nlanes: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> Result<BddEngineOutcome, OutOfNodes> {
    // Build barrier.
    let mut built_ok = true;
    for _ in 0..nthreads {
        let (_, msg) = up_rx.recv().expect("image lane hung up during build"); // lint: allow
        match msg {
            FromLane::Built { ok } => built_ok &= ok,
            _ => unreachable!("build phase answers with Built"),
        }
    }
    if !built_ok {
        return Ok(BddEngineOutcome::ResourceOut);
    }
    let (mut reached, mut frontier, start_depth) = match session_start(ts, resume)? {
        Some(start) => start,
        None => return Ok(BddEngineOutcome::FalsifiedAtDepth(0)),
    };
    // Both sides of the frontier broadcast start from the empty baseline
    // and rebase on the identical delta every round.
    let mut baseline = transfer::export(&ts.mgr, NodeId::FALSE);
    for depth in start_depth + 1..=max_iterations {
        if !budget.tick() {
            if !budget.checkpoint_worthwhile() {
                return Ok(BddEngineOutcome::Yielded);
            }
            return Ok(BddEngineOutcome::Suspended(monolithic_checkpoint(
                &ts.mgr,
                depth - 1,
                reached,
                frontier,
            )));
        }
        let delta = transfer::export_delta(&ts.mgr, frontier, &baseline);
        baseline = delta.rebase(&baseline);
        for tx in to_lanes {
            let _ = tx.send(ToLane::Round(delta.clone()));
        }
        let mut images: Vec<Option<ExportedBdd>> = (0..nlanes).map(|_| None).collect();
        let mut ok = true;
        for _ in 0..nthreads {
            let (_, msg) = up_rx.recv().expect("image lane hung up during images"); // lint: allow
            match msg {
                FromLane::Images { images: imgs, ok: lane_ok } => {
                    ok &= lane_ok;
                    for (l, e) in imgs {
                        images[l] = Some(e);
                    }
                }
                _ => unreachable!("round phase answers with Images"),
            }
        }
        if !ok {
            // A lane hit its quota mid-image: round `depth` did not
            // complete, exactly like a serial mid-image quota failure.
            return Ok(BddEngineOutcome::ResourceOut);
        }
        // Merge in ascending lane order — the fixed order keeps the
        // coordinator's op sequence worker-count-independent.
        let mut img = NodeId::FALSE;
        for e in images.iter().flatten() {
            let part = transfer::import(e, &mut ts.mgr)?; // arrives rooted
            let merged = ts.mgr.or(img, part)?;
            ts.mgr.reroot(img, merged);
            ts.mgr.unprotect(part);
            img = merged;
        }
        let new = ts.mgr.and_not(img, reached)?;
        ts.mgr.unprotect(img);
        if new == NodeId::FALSE {
            stats.iterations = depth;
            return Ok(BddEngineOutcome::Proved);
        }
        if ts.intersects_bad(new) {
            stats.iterations = depth;
            return Ok(BddEngineOutcome::FalsifiedAtDepth(depth));
        }
        ts.mgr.protect(new); // becomes the next frontier
        let r = ts.mgr.or(reached, new)?;
        ts.mgr.reroot(reached, r);
        reached = r;
        ts.mgr.unprotect(frontier);
        frontier = new;
        stats.iterations = depth;
    }
    Ok(BddEngineOutcome::ResourceOut)
}

/// One lane of the parallel image: a private transition system, the
/// lane's window cube, and the chained frontier baseline mirroring the
/// coordinator's.
struct ImageLane {
    ts: TransitionSystem,
    window: NodeId,
    baseline: ExportedBdd,
    lane: usize,
}

impl ImageLane {
    /// One round: rebuild the frontier from the broadcast delta,
    /// restrict it to the lane's window, image it through the serial
    /// early-quantification schedule and export the result (a pure
    /// read, so the unrooted image cannot be collected under it).
    fn round(&mut self, delta: &DeltaBdd) -> Result<ExportedBdd, OutOfNodes> {
        let fr = transfer::import_delta(delta, &self.baseline, &mut self.ts.mgr)?;
        self.baseline = delta.rebase(&self.baseline);
        let s = self.ts.mgr.and(fr, self.window)?;
        self.ts.mgr.reroot(fr, s); // the import's registration moves to s
        if s == NodeId::FALSE {
            return Ok(transfer::export(&self.ts.mgr, NodeId::FALSE));
        }
        let img = self.ts.image(s)?;
        let export = transfer::export(&self.ts.mgr, img);
        self.ts.mgr.unprotect(s);
        Ok(export)
    }

    fn worker_stats(&self, quota_hit: bool) -> BddWorkerStats {
        let (reorders, reorder_nodes_before, reorder_nodes_after) = self.ts.mgr.reorder_stats();
        BddWorkerStats {
            peak_live_nodes: self.ts.mgr.peak_live_nodes(),
            allocated: self.ts.mgr.total_allocated(),
            quota_hit,
            reorders,
            reorder_nodes_before,
            reorder_nodes_after,
        }
    }
}

/// Builds one lane's private transition system and window cube, and
/// arms the GC heuristics: a lane lives across many rounds against the
/// full quota, so collecting on table growth — and aging out cache
/// entries no round has touched in a while — beats thrashing the
/// quota-triggered collect-and-retry path. The heuristic parameters
/// depend only on the quota, keeping lane managers deterministic for
/// any worker count.
fn lane_setup(
    aig: &Aig,
    lane: usize,
    split: &[u32],
    node_quota: usize,
    dynamic_reorder: bool,
    order: Option<&[u32]>,
) -> Result<ImageLane, BddWorkerStats> {
    let mut ts = match TransitionSystem::build_with_order(aig, node_quota, order) {
        Ok(ts) => ts,
        Err(e) => {
            return Err(BddWorkerStats {
                peak_live_nodes: e.peak_live_nodes,
                allocated: e.total_allocated,
                quota_hit: true,
                ..Default::default()
            })
        }
    };
    let mut window = NodeId::TRUE;
    for (bit, var) in split.iter().enumerate() {
        let lit = if lane >> bit & 1 == 1 { ts.mgr.var(*var) } else { ts.mgr.nvar(*var) };
        match lit.and_then(|l| ts.mgr.and(window, l)) {
            Ok(c) => {
                // The reroot chain leaves exactly one registration on
                // the finished cube (terminals need none).
                ts.mgr.reroot(window, c);
                window = c;
            }
            Err(_) => {
                return Err(BddWorkerStats {
                    peak_live_nodes: ts.mgr.peak_live_nodes(),
                    allocated: ts.mgr.total_allocated(),
                    quota_hit: true,
                    ..Default::default()
                })
            }
        }
    }
    ts.mgr.set_gc_growth_threshold(Some((node_quota / 8).max(1 << 12)));
    ts.mgr.set_cache_max_age(Some(8));
    if dynamic_reorder {
        let n_latches = ts.num_latches();
        arm_dynamic_reorder(&mut ts.mgr, n_latches, node_quota);
    }
    let baseline = transfer::export(&ts.mgr, NodeId::FALSE);
    Ok(ImageLane { ts, window, baseline, lane })
}

/// One lane thread: owns lanes `tid, tid + nthreads, …` and answers the
/// round protocol for each in ascending lane order. Panic-guarded like
/// the POBDD workers: a panicking round sends the error-flavored reply
/// and keeps draining until `Stop` so the coordinator's
/// fixed-receive-count barrier never deadlocks, then re-raises through
/// the join.
///
/// A quota failure in one lane never short-circuits its siblings:
/// every owned lane still attempts the build and every round, because
/// each lane's work is a function of the round history alone. That
/// keeps the set of lane executions — and with it every per-lane and
/// aggregate statistic of a quota-death run — identical for every
/// worker count and thread layout.
#[allow(clippy::too_many_arguments)]
fn image_lane_worker(
    aig: &Aig,
    tid: usize,
    nthreads: usize,
    nlanes: usize,
    split: &[u32],
    node_quota: usize,
    dynamic_reorder: bool,
    order: Option<&[u32]>,
    rx: &Receiver<ToLane>,
    tx: &Sender<(usize, FromLane)>,
) -> Vec<(usize, BddWorkerStats)> {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let owned: Vec<usize> = (tid..nlanes).step_by(nthreads).collect();
    let setup = catch_unwind(AssertUnwindSafe(|| {
        let mut lanes = Vec::with_capacity(owned.len());
        let mut failed: Vec<(usize, BddWorkerStats)> = Vec::new();
        for &l in &owned {
            match lane_setup(aig, l, split, node_quota, dynamic_reorder, order) {
                Ok(lane) => lanes.push(lane),
                Err(ws) => failed.push((l, ws)),
            }
        }
        (lanes, failed)
    }));
    let (mut lanes, setup_failed) = match setup {
        Ok(v) => v,
        Err(payload) => {
            let _ = tx.send((tid, FromLane::Built { ok: false }));
            drain_lanes_until_stop(tid, rx, tx);
            resume_unwind(payload);
        }
    };
    if !setup_failed.is_empty() {
        let _ = tx.send((tid, FromLane::Built { ok: false }));
        drain_lanes_until_stop(tid, rx, tx);
        let mut out: Vec<(usize, BddWorkerStats)> =
            lanes.iter().map(|la| (la.lane, la.worker_stats(false))).collect();
        out.extend(setup_failed);
        return out;
    }
    let _ = tx.send((tid, FromLane::Built { ok: true }));
    let mut quota_lanes: Vec<usize> = Vec::new();
    let mut panic_payload = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ToLane::Round(delta) => {
                let round = catch_unwind(AssertUnwindSafe(|| {
                    let mut images = Vec::with_capacity(lanes.len());
                    let mut failed: Vec<usize> = Vec::new();
                    for la in lanes.iter_mut() {
                        match la.round(&delta) {
                            Ok(e) => images.push((la.lane, e)),
                            Err(_) => failed.push(la.lane),
                        }
                    }
                    (images, failed)
                }));
                match round {
                    Ok((images, failed)) if failed.is_empty() => {
                        let _ = tx.send((tid, FromLane::Images { images, ok: true }));
                        continue;
                    }
                    Ok((_, failed)) => quota_lanes = failed,
                    Err(payload) => panic_payload = Some(payload),
                }
                let _ = tx.send((tid, FromLane::Images { images: Vec::new(), ok: false }));
                drain_lanes_until_stop(tid, rx, tx);
                break;
            }
            ToLane::Stop => break,
        }
    }
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    lanes
        .iter()
        .map(|la| (la.lane, la.worker_stats(quota_lanes.contains(&la.lane))))
        .collect()
}

/// After a quota failure the lane thread keeps answering the protocol
/// until `Stop`, so the coordinator's barriers never block on a dead
/// thread.
fn drain_lanes_until_stop(tid: usize, rx: &Receiver<ToLane>, tx: &Sender<(usize, FromLane)>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ToLane::Round(_) => {
                let _ = tx.send((tid, FromLane::Images { images: Vec::new(), ok: false }));
            }
            ToLane::Stop => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::Aig;

    fn counter(bits: u32) -> (Aig, Vec<Lit>) {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let lits = qs.iter().map(|(_, q)| *q).collect();
        (g, lits)
    }

    /// The quota-semantics acceptance check: a reachability run whose
    /// total allocations are an order of magnitude beyond the quota —
    /// which therefore exhausted the quota before garbage collection
    /// existed — now completes under that same quota, because the quota
    /// counts *live* nodes and GC reclaims dead image intermediates.
    #[test]
    fn gc_lets_check_complete_under_tight_quota() {
        let (mut g, qs) = counter(10);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let quota = 400;
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, quota, 1 << 20, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(1023)
        );
        assert!(stats.bdd_nodes <= quota, "peak live stays within the quota");
        assert!(
            stats.bdd_allocated > 10 * quota as u64,
            "allocations far beyond the quota prove GC carried the run: {}",
            stats.bdd_allocated
        );
    }

    /// Regression: quota-exhausted builds used to report 0 peak nodes.
    #[test]
    fn quota_exhausted_build_records_stats() {
        let (mut g, qs) = counter(16);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 300, 1 << 20, &mut stats),
            BddEngineOutcome::ResourceOut
        );
        assert!(stats.bdd_nodes > 0, "failure path must record peak live nodes");
        assert!(stats.bdd_allocated > 0);
        assert_eq!(stats.bdd_quota_hits, 1);
    }

    #[test]
    fn reachability_depth_matches_count() {
        let (mut g, qs) = counter(3);
        // bad: counter == 5 (101)
        let t = g.and(qs[0], !qs[1]);
        let bad = g.and(t, qs[2]);
        g.add_bad("five", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(5)
        );
    }

    #[test]
    fn full_space_fixpoint_proves() {
        let (mut g, qs) = counter(3);
        // bad: impossible pattern — q0 & !q0 is constant false; use an
        // extra stuck latch instead.
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let bad = g.and(qs[0], s);
        g.add_bad("never", bad);
        let mut stats = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut stats), BddEngineOutcome::Proved);
        // An 3-bit counter explores 8 states: fixpoint in <= 9 iterations.
        assert!(stats.iterations <= 9);
    }

    #[test]
    fn constraint_restricts_reachability() {
        // Latch loads input; constraint pins input low; bad = latch high.
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, a);
        g.add_constraint("a_low", !a);
        g.add_bad("q_high", q);
        let mut stats = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut stats), BddEngineOutcome::Proved);
    }

    #[test]
    fn quota_exhaustion_reports_resource_out() {
        let (mut g, qs) = counter(16);
        let bad = g.and_many(qs.iter().copied());
        g.add_bad("all_ones", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 300, 1 << 20, &mut stats),
            BddEngineOutcome::ResourceOut
        );
    }

    /// Maximal-period 16-bit Fibonacci LFSR (taps 16,14,13,11) whose
    /// live working set genuinely outgrows a tight quota mid-run (see
    /// the twin helper in the POBDD tests).
    fn lfsr16() -> Aig {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..16).map(|i| g.latch(format!("s{i}"), i == 0)).collect();
        let fb = [16usize, 14, 13, 11]
            .iter()
            .map(|t| qs[*t - 1].1)
            .reduce(|a, b| g.xor(a, b))
            .unwrap();
        for i in (1..16).rev() {
            g.set_next(qs[i].0, qs[i - 1].1);
        }
        g.set_next(qs[0].0, fb);
        let nz: Vec<_> = qs.iter().map(|(_, q)| !*q).collect();
        let bad = g.and_many(nz);
        g.add_bad("zero", bad);
        g
    }

    /// The lane-parallel image must agree with the serial engine on
    /// verdict, falsification depth and completed-round count for every
    /// worker count — and every manager-level statistic must be
    /// identical across parallel worker counts, because the lane
    /// structure is fixed by the transition system, not by the thread
    /// count.
    #[test]
    fn parallel_image_matches_serial_verdicts() {
        let (mut g, qs) = counter(6);
        // bad: counter == 44
        let hit: Vec<Lit> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| if 44 >> i & 1 == 1 { *q } else { !*q })
            .collect();
        let bad = g.and_many(hit);
        g.add_bad("hit", bad);
        let mut serial = CheckStats::default();
        let base = bdd_umc(&g, 1 << 20, 1000, &mut serial);
        assert_eq!(base, BddEngineOutcome::FalsifiedAtDepth(44));
        let mut parallel: Vec<CheckStats> = Vec::new();
        for workers in [2usize, 3, 0] {
            let mut stats = CheckStats::default();
            let got = bdd_umc_session(
                &g,
                1 << 20,
                1000,
                workers,
                false,
                false,
                &mut stats,
                &mut Budget::unlimited(),
                None,
            );
            assert_eq!(base, got, "workers={workers}");
            assert_eq!(serial.iterations, stats.iterations, "workers={workers}");
            if workers != 0 {
                // `0` resolves to the CPU count, which on a single-core
                // host is the serial path (no lane accounting).
                assert!(!stats.worker_bdd.is_empty(), "lanes must report accounting");
                for ws in &stats.worker_bdd {
                    assert!(ws.peak_live_nodes > 0);
                    assert!(!ws.quota_hit);
                }
                parallel.push(stats);
            }
        }
        for s in &parallel[1..] {
            assert_eq!(parallel[0].bdd_nodes, s.bdd_nodes, "peak live is worker-count-invariant");
            assert_eq!(parallel[0].bdd_allocated, s.bdd_allocated);
            assert_eq!(parallel[0].worker_bdd, s.worker_bdd);
        }
    }

    #[test]
    fn parallel_image_proves_fixpoints() {
        let (mut g, qs) = counter(4);
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let bad = g.and(qs[0], s);
        g.add_bad("never", bad);
        let mut serial = CheckStats::default();
        assert_eq!(bdd_umc(&g, 1 << 20, 100, &mut serial), BddEngineOutcome::Proved);
        for workers in [2usize, 4] {
            let mut stats = CheckStats::default();
            assert_eq!(
                bdd_umc_session(
                    &g,
                    1 << 20,
                    100,
                    workers,
                    false,
                    false,
                    &mut stats,
                    &mut Budget::unlimited(),
                    None,
                ),
                BddEngineOutcome::Proved,
                "workers={workers}"
            );
            assert_eq!(serial.iterations, stats.iterations, "workers={workers}");
        }
    }

    /// PR 4's iteration-count pin, extended to the parallel image: a
    /// quota death mid-image leaves `stats.iterations` at the completed
    /// rounds only, and the whole failure — outcome, round count, peak
    /// accounting, per-lane quota flags — is deterministic across
    /// parallel worker counts.
    #[test]
    fn parallel_quota_death_is_deterministic_mid_image() {
        let g = lfsr16();
        let quota = 1_500;
        let mut base: Option<CheckStats> = None;
        for workers in [2usize, 3, 4] {
            let mut stats = CheckStats::default();
            let got = bdd_umc_session(
                &g,
                quota,
                1 << 20,
                workers,
                false,
                false,
                &mut stats,
                &mut Budget::unlimited(),
                None,
            );
            assert_eq!(got, BddEngineOutcome::ResourceOut, "workers={workers}");
            assert!(stats.iterations > 0, "failure must be mid-run, not at build");
            assert!(stats.bdd_quota_hits >= 1, "workers={workers}");
            match &base {
                None => base = Some(stats),
                Some(b) => {
                    assert_eq!(b.iterations, stats.iterations, "workers={workers}");
                    assert_eq!(b.bdd_nodes, stats.bdd_nodes, "workers={workers}");
                    assert_eq!(b.bdd_quota_hits, stats.bdd_quota_hits, "workers={workers}");
                    assert_eq!(b.worker_bdd, stats.worker_bdd, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn input_in_bad_is_quantified() {
        // bad = input & latch; latch counts 0,1,0,1...; falsified at depth
        // 1 when the latch first goes high.
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, !q);
        let bad = g.and(a, q);
        g.add_bad("a_and_q", bad);
        let mut stats = CheckStats::default();
        assert_eq!(
            bdd_umc(&g, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(1)
        );
    }
}
