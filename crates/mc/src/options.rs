//! Engine budgets and selection knobs, plus the builder that keeps
//! presets from drifting as fields are added.

/// Budgets and engine selection for a property check.
///
/// Construct via [`CheckOptions::builder`] (preferred — new knobs get a
/// default instead of breaking struct literals) or field-by-field from
/// [`CheckOptions::default`]. The fields stay public so existing
/// functional-update call sites (`CheckOptions { bdd_only: true,
/// ..Default::default() }`) keep working.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckOptions {
    /// Maximum BMC unrolling depth.
    pub bmc_depth: usize,
    /// SAT conflict budget for each SAT engine call.
    pub sat_conflicts: u64,
    /// Maximum k for k-induction.
    pub induction_depth: usize,
    /// Add simple-path (loop-free) constraints to induction steps.
    pub simple_path: bool,
    /// BDD node quota (**live** nodes; the garbage collector reclaims
    /// dead intermediates before this budget is charged).
    pub bdd_nodes: usize,
    /// Maximum forward-reachability iterations.
    pub max_iterations: usize,
    /// Number of POBDD window variables (2^k partitions); 0 disables the
    /// POBDD fallback.
    pub pobdd_window_vars: u32,
    /// Worker threads for the POBDD engine: each window partition's
    /// fixpoint runs in its own thread with its own BDD manager,
    /// exchanging frontiers between synchronous rounds (verdicts and
    /// depths are worker-count-independent; see
    /// [`crate::pobdd_reach`]). `0` = one per available CPU. The
    /// default of `1` keeps the engine serial so it composes with
    /// campaign-level parallelism (`CampaignConfig::workers` in
    /// `veridic-core`) without oversubscribing; raise it for single
    /// hard properties.
    pub pobdd_workers: usize,
    /// Worker threads for the monolithic BDD engine's image computation:
    /// each round's image fans out across fixed state-space lanes, one
    /// private BDD manager per lane, with frontiers broadcast through
    /// the transfer layer's delta encoding (verdicts, depths, iteration
    /// counts match serial for every worker count; see
    /// `veridic_mc::bdd_umc_session`). `0` = one per available CPU. The
    /// default of `1` keeps the engine serial — byte-identical stats to
    /// the pre-parallel engine — so it composes with campaign-level
    /// parallelism without oversubscribing.
    pub image_workers: usize,
    /// Enable dynamic variable reordering in the BDD engines: each BDD
    /// manager (serial, per-lane, per-window) arms an automatic
    /// in-place sifting pass that fires when the live node count has
    /// grown by an engine-chosen threshold since the last reorder.
    /// Verdicts, falsification depths and iteration counts are
    /// identical with this on or off — only node counts and wall-clock
    /// move (see `veridic_bdd::BddManager::sift`). Off by default: for
    /// models whose natural order is already good, sifting is pure
    /// overhead.
    pub dynamic_reorder: bool,
    /// Seed both BDD engines' managers with the FORCE static variable
    /// order (`veridic_aig::structure::force_order`) before the first
    /// image: the latch/input slot order that minimizes hyperedge span
    /// over the AND/next-state structure, translated so each latch's
    /// current/next pair stays adjacent. Purely structural — computed
    /// once per property cone from the AIG alone, identical for every
    /// worker count, and composable with `dynamic_reorder` (sifting
    /// starts from the seeded order instead of the natural one).
    /// Verdicts, depths and iteration counts are unaffected; only node
    /// counts and wall-clock move. Off by default: with this off the
    /// engines are byte-identical to previous releases.
    pub static_order: bool,
    /// Skip the SAT engines (BDD-only portfolio).
    pub bdd_only: bool,
    /// Skip the BDD engines (SAT-only portfolio).
    pub sat_only: bool,
    /// Run the static pre-analysis stage before any engine: a ternary
    /// constant sweep over each bad's COI-reduced cone
    /// (`veridic_aig::analyze`). Statically-constant bads and
    /// constraints conclude with **zero** engine invocations;
    /// sequentially-stuck latches are folded out of the AIG every
    /// engine sees. On designs with nothing to fold the stage is an
    /// identity pass — verdicts, depths, iteration counts and event
    /// logs are byte-identical to running with this off. On by
    /// default: the sweep is linear in the cone and the fold only ever
    /// shrinks the state space.
    pub preanalysis: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            bmc_depth: 30,
            sat_conflicts: 200_000,
            // Stereotype properties are k<=3 inductive by construction;
            // hold-capable integrity properties are not k-inductive for
            // ANY k (see veridic-core docs) — iterating far past the
            // inductive horizon only burns quadratic simple-path clauses
            // before the BDD engines take over.
            induction_depth: 6,
            simple_path: true,
            // Recalibrated for live-node quota semantics: with complement
            // edges + GC a live node packs roughly twice the logical work
            // of the old ever-allocated unit, so 2M live ~= the old 4M.
            bdd_nodes: 1 << 21,
            max_iterations: 10_000,
            pobdd_window_vars: 2,
            pobdd_workers: 1,
            image_workers: 1,
            dynamic_reorder: false,
            static_order: false,
            bdd_only: false,
            sat_only: false,
            preanalysis: true,
        }
    }
}

impl CheckOptions {
    /// A builder seeded with [`CheckOptions::default`]: override only
    /// the knobs that matter and every field added later inherits its
    /// default instead of breaking the call site.
    pub fn builder() -> CheckOptionsBuilder {
        CheckOptionsBuilder { opts: CheckOptions::default() }
    }

    /// A deliberately tiny budget, used to demonstrate and test the
    /// resource-out → partition flow of Fig. 7.
    ///
    /// Expressed through the builder so the preset tracks the default
    /// for everything it does not explicitly tighten — it used to be a
    /// full struct literal, which silently missed the live-node quota
    /// recalibration (2 000 ever-allocated units ≈ 1 000 live
    /// complement-edge nodes) and had to be hand-patched for every new
    /// field (`pobdd_workers`).
    pub fn tiny_budget() -> Self {
        CheckOptions::builder()
            .bmc_depth(4)
            .sat_conflicts(200)
            .induction_depth(2)
            .simple_path(false)
            .bdd_nodes(1_000)
            .max_iterations(64)
            .pobdd_window_vars(0)
            .build()
    }

    /// A stable 64-bit fingerprint of every budget and selection knob
    /// (FNV-1a over the fields in declaration order), identical across
    /// processes and runs.
    ///
    /// Persistent checkpoint headers bind to this: a checkpoint taken
    /// under one set of options must refuse to resume under another,
    /// because budgets and engine selection shape the run's event log
    /// and round boundaries, not just its speed. Any new field changes
    /// the fingerprint of configurations that set it away from the old
    /// behavior — which is exactly when an old checkpoint stops being
    /// comparable.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut word = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        word(self.bmc_depth as u64);
        word(self.sat_conflicts);
        word(self.induction_depth as u64);
        word(u64::from(self.simple_path));
        word(self.bdd_nodes as u64);
        word(self.max_iterations as u64);
        word(u64::from(self.pobdd_window_vars));
        word(self.pobdd_workers as u64);
        word(self.image_workers as u64);
        word(u64::from(self.dynamic_reorder));
        word(u64::from(self.static_order));
        word(u64::from(self.bdd_only));
        word(u64::from(self.sat_only));
        word(u64::from(self.preanalysis));
        h
    }
}

/// Builder for [`CheckOptions`]; see [`CheckOptions::builder`].
///
/// ```
/// use veridic_mc::CheckOptions;
///
/// let opts = CheckOptions::builder()
///     .bmc_depth(10)
///     .pobdd_workers(2)
///     .build();
/// assert_eq!(opts.bmc_depth, 10);
/// assert_eq!(opts.sat_conflicts, CheckOptions::default().sat_conflicts);
/// ```
#[derive(Clone, Debug)]
pub struct CheckOptionsBuilder {
    opts: CheckOptions,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $field(mut self, value: $ty) -> Self {
                self.opts.$field = value;
                self
            }
        )*
    };
}

impl CheckOptionsBuilder {
    builder_setters! {
        /// Sets [`CheckOptions::bmc_depth`].
        bmc_depth: usize,
        /// Sets [`CheckOptions::sat_conflicts`].
        sat_conflicts: u64,
        /// Sets [`CheckOptions::induction_depth`].
        induction_depth: usize,
        /// Sets [`CheckOptions::simple_path`].
        simple_path: bool,
        /// Sets [`CheckOptions::bdd_nodes`].
        bdd_nodes: usize,
        /// Sets [`CheckOptions::max_iterations`].
        max_iterations: usize,
        /// Sets [`CheckOptions::pobdd_window_vars`].
        pobdd_window_vars: u32,
        /// Sets [`CheckOptions::pobdd_workers`].
        pobdd_workers: usize,
        /// Sets [`CheckOptions::image_workers`].
        image_workers: usize,
        /// Sets [`CheckOptions::dynamic_reorder`].
        dynamic_reorder: bool,
        /// Sets [`CheckOptions::static_order`].
        static_order: bool,
        /// Sets [`CheckOptions::bdd_only`].
        bdd_only: bool,
        /// Sets [`CheckOptions::sat_only`].
        sat_only: bool,
        /// Sets [`CheckOptions::preanalysis`].
        preanalysis: bool,
    }

    /// Finishes the builder.
    pub fn build(self) -> CheckOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_starts_from_default() {
        assert_eq!(CheckOptions::builder().build(), CheckOptions::default());
    }

    #[test]
    fn builder_overrides_only_named_fields() {
        let opts = CheckOptions::builder().bdd_nodes(42).sat_only(true).build();
        assert_eq!(opts.bdd_nodes, 42);
        assert!(opts.sat_only);
        let d = CheckOptions::default();
        assert_eq!(opts.bmc_depth, d.bmc_depth);
        assert_eq!(opts.pobdd_workers, d.pobdd_workers);
    }

    /// The drift regression: every field `tiny_budget` does not
    /// explicitly tighten must equal the default — in particular the
    /// fields added after the preset was written (`pobdd_workers`) and
    /// any future ones (the builder guarantees it structurally, this
    /// pins the explicit list).
    #[test]
    fn tiny_budget_tracks_default_for_untouched_fields() {
        let tiny = CheckOptions::tiny_budget();
        let d = CheckOptions::default();
        assert_eq!(tiny.pobdd_workers, d.pobdd_workers);
        assert_eq!(tiny.image_workers, d.image_workers);
        assert_eq!(tiny.dynamic_reorder, d.dynamic_reorder);
        assert_eq!(tiny.static_order, d.static_order);
        assert!(!d.static_order, "static-order seeding defaults off");
        assert_eq!(tiny.bdd_only, d.bdd_only);
        assert_eq!(tiny.sat_only, d.sat_only);
        assert_eq!(tiny.preanalysis, d.preanalysis);
        assert!(d.preanalysis, "the static pre-analysis stage defaults on");
        // And the recalibrated live-node quota: half the historical
        // 2 000 ever-allocated units, mirroring the 1<<22 → 1<<21
        // default recalibration.
        assert_eq!(tiny.bdd_nodes, 1_000);
    }
}
