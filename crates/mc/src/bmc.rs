//! SAT-based bounded model checking and k-induction.

use crate::engine::Budget;
use crate::{CheckStats, Trace};
use veridic_aig::Aig;
use veridic_sat::{CnfBuilder, Lit as SLit, SolveResult, Solver};

/// Outcome of a BMC run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmcOutcome {
    /// A counterexample was found.
    Falsified(Trace),
    /// No counterexample up to the depth bound.
    NoCounterexample,
    /// The conflict budget ran out.
    ResourceOut,
    /// The cooperative round [`Budget`] stopped the run before this
    /// depth was queried; resume with `min_depth = next_depth` (the
    /// solver re-encodes the earlier frames deterministically but does
    /// not re-query them). Never returned by [`bmc_check`], which runs
    /// unbudgeted.
    Suspended {
        /// First depth the resumed run should query.
        next_depth: usize,
    },
}

/// Outcome of a k-induction run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InductionOutcome {
    /// Proved at the contained induction depth.
    Proved(usize),
    /// Not k-inductive up to the depth bound (property may still hold).
    Unknown,
    /// The conflict budget ran out.
    ResourceOut,
    /// The cooperative round [`Budget`] stopped the run before this k
    /// was attempted; resume from `next_k`. Never returned by
    /// [`induction_check`], which runs unbudgeted.
    Suspended {
        /// First induction depth the resumed run should attempt.
        next_k: usize,
    },
}

/// Bounded model checking of all bads of `aig` between depths
/// `min_depth..=max_depth` (cycle indices: a violation "at depth k" fires
/// in cycle k of a k+1-cycle trace).
///
/// Returns on the first (shallowest) counterexample.
pub fn bmc_check(
    aig: &Aig,
    min_depth: usize,
    max_depth: usize,
    conflict_budget: u64,
    stats: &mut CheckStats,
) -> BmcOutcome {
    bmc_check_budgeted(aig, min_depth, max_depth, conflict_budget, stats, &mut Budget::unlimited())
}

/// [`bmc_check`] under a cooperative round [`Budget`]: one budget round
/// is consumed per depth actually queried (depths below `min_depth` are
/// encoded for free). When the budget trips, the run suspends with the
/// next depth as its checkpoint.
pub fn bmc_check_budgeted(
    aig: &Aig,
    min_depth: usize,
    max_depth: usize,
    conflict_budget: u64,
    stats: &mut CheckStats,
    budget: &mut Budget,
) -> BmcOutcome {
    let mut solver = Solver::new();
    let base_conflicts = 0;
    solver.set_conflict_budget(Some(conflict_budget));
    let mut frames = Vec::new();
    {
        let mut cb = CnfBuilder::new(&mut solver);
        let f0 = cb.encode_frame(aig, None);
        cb.assert_initial(aig, &f0);
        cb.assert_constraints(aig, &f0);
        frames.push(f0);
    }
    for k in 0..=max_depth {
        while frames.len() <= k {
            let prev_next: Vec<SLit> = frames.last().unwrap().next_state.clone(); // lint: allow
            let mut cb = CnfBuilder::new(&mut solver);
            let f = cb.encode_frame(aig, Some(&prev_next));
            cb.assert_constraints(aig, &f);
            frames.push(f);
        }
        if k < min_depth {
            continue;
        }
        if !budget.tick() {
            stats.sat_conflicts += solver.num_conflicts() - base_conflicts;
            return BmcOutcome::Suspended { next_depth: k };
        }
        // bad_k: OR of all bads in frame k, via a selector literal.
        let frame = &frames[k];
        let bad_lits: Vec<SLit> = aig.bads().iter().map(|b| frame.lit(b.lit)).collect();
        let sel = SLit::pos(solver.new_var());
        // sel -> (b1 | b2 | ...): clause (!sel, b1, b2, ...)
        let mut clause = vec![!sel];
        clause.extend(bad_lits.iter().copied());
        solver.add_clause(&clause);
        match solver.solve(&[sel]) {
            SolveResult::Sat => {
                // Which bad fired?
                let bad_index = bad_lits
                    .iter()
                    .position(|l| solver.value(l.var()).map(|v| v ^ l.is_neg()) == Some(true))
                    .expect("some bad literal is true in the model"); // lint: allow
                let mut inputs = Vec::with_capacity(k + 1);
                for frame in frames.iter().take(k + 1) {
                    let row: Vec<bool> = frame
                        .inputs
                        .iter()
                        .map(|l| {
                            solver
                                .value(l.var())
                                .map(|v| v ^ l.is_neg())
                                .unwrap_or(false)
                        })
                        .collect();
                    inputs.push(row);
                }
                stats.sat_conflicts += solver.num_conflicts() - base_conflicts;
                return BmcOutcome::Falsified(Trace { inputs, bad_index });
            }
            SolveResult::Unsat => {
                // Block this depth permanently (helps later queries).
                solver.add_clause(&[!sel]);
            }
            SolveResult::Unknown => {
                stats.sat_conflicts += solver.num_conflicts() - base_conflicts;
                return BmcOutcome::ResourceOut;
            }
        }
    }
    stats.sat_conflicts += solver.num_conflicts() - base_conflicts;
    BmcOutcome::NoCounterexample
}

/// k-induction: proves `never bad` if, assuming no bad in `k` consecutive
/// constraint-satisfying cycles from an arbitrary state, no bad can occur
/// in the next cycle — together with a BMC base case the caller is
/// expected to have run to at least the same depth.
///
/// `simple_path` adds loop-free (all-states-distinct) constraints, which
/// makes the method complete for large enough `k` at quadratic clause
/// cost.
pub fn induction_check(
    aig: &Aig,
    max_k: usize,
    simple_path: bool,
    conflict_budget: u64,
    stats: &mut CheckStats,
) -> InductionOutcome {
    induction_check_budgeted(
        aig,
        1,
        max_k,
        simple_path,
        conflict_budget,
        stats,
        &mut Budget::unlimited(),
    )
}

/// [`induction_check`] under a cooperative round [`Budget`], starting
/// from `min_k` (a resumed run's checkpoint): one budget round per k
/// attempted. When the budget trips, the run suspends with the next k.
#[allow(clippy::too_many_arguments)]
pub fn induction_check_budgeted(
    aig: &Aig,
    min_k: usize,
    max_k: usize,
    simple_path: bool,
    conflict_budget: u64,
    stats: &mut CheckStats,
    budget: &mut Budget,
) -> InductionOutcome {
    for k in min_k.max(1)..=max_k {
        if !budget.tick() {
            return InductionOutcome::Suspended { next_k: k };
        }
        let mut solver = Solver::new();
        solver.set_conflict_budget(Some(conflict_budget));
        // Frames 0..=k from an arbitrary initial state.
        let mut frames = Vec::new();
        {
            let mut cb = CnfBuilder::new(&mut solver);
            let f0 = cb.encode_frame(aig, None);
            cb.assert_constraints(aig, &f0);
            frames.push(f0);
        }
        for _ in 0..k {
            let prev_next: Vec<SLit> = frames.last().unwrap().next_state.clone(); // lint: allow
            let mut cb = CnfBuilder::new(&mut solver);
            let f = cb.encode_frame(aig, Some(&prev_next));
            cb.assert_constraints(aig, &f);
            frames.push(f);
        }
        // No bad in frames 0..k.
        for frame in frames.iter().take(k) {
            for b in aig.bads() {
                solver.add_clause(&[!frame.lit(b.lit)]);
            }
        }
        // Simple path: all frame state vectors pairwise distinct.
        if simple_path && aig.num_latches() > 0 {
            let state_lits: Vec<Vec<SLit>> = frames
                .iter()
                .map(|f| {
                    aig.latches()
                        .iter()
                        .map(|l| f.lit(veridic_aig::Lit::new(l.var, false)))
                        .collect()
                })
                .collect();
            for i in 0..state_lits.len() {
                for j in i + 1..state_lits.len() {
                    // diff_ij: OR over bits of (s_i[b] != s_j[b]).
                    let mut diff_clause = Vec::new();
                    for (&x, &y) in state_lits[i].iter().zip(&state_lits[j]) {
                        let d = SLit::pos(solver.new_var());
                        // d -> (x != y): (!d, x, y), (!d, !x, !y)
                        solver.add_clause(&[!d, x, y]);
                        solver.add_clause(&[!d, !x, !y]);
                        diff_clause.push(d);
                    }
                    solver.add_clause(&diff_clause);
                }
            }
        }
        // Bad at frame k?
        let frame = &frames[k];
        let bad_lits: Vec<SLit> = aig.bads().iter().map(|b| frame.lit(b.lit)).collect();
        let mut clause = Vec::new();
        clause.extend(bad_lits.iter().copied());
        let sel = SLit::pos(solver.new_var());
        let mut cl = vec![!sel];
        cl.extend(clause);
        solver.add_clause(&cl);
        let res = solver.solve(&[sel]);
        stats.sat_conflicts += solver.num_conflicts();
        match res {
            SolveResult::Unsat => return InductionOutcome::Proved(k),
            SolveResult::Sat => continue, // not k-inductive; try larger k
            SolveResult::Unknown => return InductionOutcome::ResourceOut,
        }
    }
    InductionOutcome::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::Aig;

    fn toggle() -> Aig {
        let mut g = Aig::new();
        let (id, q) = g.latch("q", false);
        g.set_next(id, !q);
        g.add_bad("q_and_next", q); // q is true every odd cycle
        g
    }

    #[test]
    fn bmc_finds_shallow_bug() {
        let g = toggle();
        let mut stats = CheckStats::default();
        match bmc_check(&g, 0, 5, 1_000_000, &mut stats) {
            BmcOutcome::Falsified(t) => {
                assert_eq!(t.len(), 2, "q first true in cycle 1");
                assert!(t.replays_on(&g));
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn bmc_min_depth_skips_shallow() {
        // Force extraction at exactly depth 3 (q true at odd depths).
        let g = toggle();
        let mut stats = CheckStats::default();
        match bmc_check(&g, 3, 3, 1_000_000, &mut stats) {
            BmcOutcome::Falsified(t) => assert_eq!(t.len(), 4),
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn bmc_clean_design_reports_none() {
        let mut g = Aig::new();
        let (id, q) = g.latch("q", false);
        g.set_next(id, q);
        g.add_bad("never", q);
        let mut stats = CheckStats::default();
        assert_eq!(
            bmc_check(&g, 0, 10, 1_000_000, &mut stats),
            BmcOutcome::NoCounterexample
        );
    }

    #[test]
    fn induction_proves_stuck_latch() {
        let mut g = Aig::new();
        let (id, q) = g.latch("q", false);
        g.set_next(id, q);
        g.add_bad("never", q);
        let mut stats = CheckStats::default();
        match induction_check(&g, 5, true, 1_000_000, &mut stats) {
            InductionOutcome::Proved(k) => assert_eq!(k, 1),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn induction_needs_simple_path_for_counters() {
        // 3-bit counter that wraps at 6 (never reaches 7): plain induction
        // fails at small k, simple-path proves it.
        let mut g = Aig::new();
        let qs: Vec<_> = (0..3).map(|i| g.latch(format!("c{i}"), false)).collect();
        let (q0, q1, q2) = (qs[0].1, qs[1].1, qs[2].1);
        // at5 = q2 & !q1 & q0 (value 5) -> wrap to 0
        let n01 = g.and(q2, !q1);
        let at5 = g.and(n01, q0);
        let mut carry = veridic_aig::Lit::TRUE;
        let mut nexts = Vec::new();
        for (_, q) in &qs {
            let inc = g.xor(*q, carry);
            carry = g.and(*q, carry);
            nexts.push(inc);
        }
        for (i, (id, _)) in qs.iter().enumerate() {
            let nx = g.and(nexts[i], !at5);
            g.set_next(*id, nx);
        }
        // bad: value 7
        let b01 = g.and(q0, q1);
        let bad = g.and(b01, q2);
        g.add_bad("seven", bad);
        let mut stats = CheckStats::default();
        // With simple path it proves within k <= 8.
        match induction_check(&g, 8, true, 1_000_000, &mut stats) {
            InductionOutcome::Proved(_) => {}
            other => panic!("expected proof with simple-path, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = toggle();
        let mut stats = CheckStats::default();
        // One conflict is not enough for... actually toggling is easy; use
        // a pigeonhole-flavoured instance via many latches. Simplest: the
        // budget applies to the solver as a whole — use 0 conflicts and a
        // bad needing search.
        let mut g2 = Aig::new();
        let ins: Vec<_> = (0..12).map(|i| g2.input(format!("x{i}"))).collect();
        // bad: exactly-one-ish structure that needs some search: parity
        let mut parity = veridic_aig::Lit::FALSE;
        for l in &ins {
            parity = g2.xor(parity, *l);
        }
        let (id, q) = g2.latch("q", false);
        g2.set_next(id, parity);
        g2.add_bad("parity_high", q);
        let _ = g;
        let out = bmc_check(&g2, 0, 3, 0, &mut stats);
        // With a zero budget the solver gives up immediately unless the
        // instance is solved by pure propagation.
        assert!(
            matches!(out, BmcOutcome::ResourceOut | BmcOutcome::Falsified(_)),
            "got {out:?}"
        );
    }
}
