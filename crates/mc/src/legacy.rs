//! The pre-portfolio engine cascade, preserved verbatim as a test
//! oracle.
//!
//! This module is `#[doc(hidden)]` and exists for one purpose: the
//! equality tests that pin `Portfolio::default()` to the historical
//! `check()` behavior — verdicts, statistics and rendered engine
//! strings — compare against *this* code, not against the portfolio
//! re-implementation of itself. Do not use it in new code; it will be
//! deleted once the redesign has soaked.

use crate::{bdd_engine, bmc, pobdd, BadCoiStats, CheckOptions, CheckStats, Trace, Verdict};
use bdd_engine::BddEngineOutcome;
use veridic_aig::Aig;

/// Result of the legacy cascade: verdict, stats (with empty `events`),
/// and the stringly-typed engine log the portfolio's
/// [`crate::CheckStats::engines_tried`] must reproduce byte-for-byte.
#[derive(Clone, Debug)]
pub struct LegacyResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Statistics (the `events` field stays empty here).
    pub stats: CheckStats,
    /// The historical `engines_tried` strings.
    pub engines_tried: Vec<String>,
}

/// The pre-redesign `check()`: every bad separately, first failure
/// wins, hard-coded BMC → induction → BDD UMC → POBDD cascade.
pub fn check(aig: &Aig, opts: &CheckOptions) -> LegacyResult {
    let mut stats = CheckStats::default();
    let mut engines_tried = Vec::new();
    for bad_index in 0..aig.bads().len() {
        let result = check_one(aig, bad_index, opts, &mut stats, &mut engines_tried);
        match result {
            Verdict::Proved { .. } => continue,
            other => return LegacyResult { verdict: other, stats, engines_tried },
        }
    }
    LegacyResult { verdict: Verdict::Proved { engine: "portfolio" }, stats, engines_tried }
}

/// The pre-redesign `check_one`, with the engine log split out of the
/// stats (the field it used to live in is now the typed event list).
pub fn check_one(
    aig: &Aig,
    bad_index: usize,
    opts: &CheckOptions,
    stats: &mut CheckStats,
    engines_tried: &mut Vec<String>,
) -> Verdict {
    // Cone of influence: bad + all constraints (constraints must keep
    // their meaning on every path).
    let bad = aig.bads()[bad_index].lit;
    let mut roots = vec![bad];
    roots.extend(aig.constraints().iter().map(|c| c.lit));
    let coi = aig.extract_coi(&roots);
    let mut sub = coi.aig;
    let bad_name = aig.bads()[bad_index].name.clone();
    sub.add_bad(bad_name.clone(), coi.roots[0]);
    for (i, c) in aig.constraints().iter().enumerate() {
        sub.add_constraint(c.name.clone(), coi.roots[1 + i]);
    }
    stats.coi_latches = stats.coi_latches.max(sub.num_latches());
    stats.coi_ands = stats.coi_ands.max(sub.num_ands());
    stats.per_bad_coi.push(BadCoiStats {
        bad: bad_name.clone(),
        latches: sub.num_latches(),
        ands: sub.num_ands(),
    });

    // Map a trace on the reduced AIG back to the full input space.
    let expand_trace = |t: Trace| -> Trace {
        let mut full = vec![vec![false; aig.num_inputs()]; t.inputs.len()];
        for (old_var, new_var) in &coi.input_map {
            let old_idx = aig.input_index(*old_var).expect("input var");
            let new_idx = sub.input_index(*new_var).expect("mapped input var");
            for (dst, src) in full.iter_mut().zip(&t.inputs) {
                dst[old_idx] = src[new_idx];
            }
        }
        Trace { inputs: full, bad_index }
    };

    let mut reasons: Vec<String> = Vec::new();

    if !opts.bdd_only {
        match bmc::bmc_check(&sub, 0, opts.bmc_depth, opts.sat_conflicts, stats) {
            bmc::BmcOutcome::Falsified(t) => {
                let full = expand_trace(Trace { inputs: t.inputs, bad_index });
                assert!(full.replays_on(aig), "BMC counterexample failed replay");
                engines_tried.push(format!("{bad_name}/bmc: falsified"));
                return Verdict::Falsified(full);
            }
            bmc::BmcOutcome::NoCounterexample => {
                engines_tried.push(format!("{bad_name}/bmc: clean to depth {}", opts.bmc_depth));
            }
            bmc::BmcOutcome::ResourceOut => {
                engines_tried.push(format!("{bad_name}/bmc: resource-out"));
                reasons.push(format!("BMC conflict budget ({})", opts.sat_conflicts));
            }
            bmc::BmcOutcome::Suspended { .. } => {
                unreachable!("unbudgeted BMC cannot suspend")
            }
        }
        match bmc::induction_check(
            &sub,
            opts.induction_depth,
            opts.simple_path,
            opts.sat_conflicts,
            stats,
        ) {
            bmc::InductionOutcome::Proved(k) => {
                engines_tried.push(format!("{bad_name}/induction: proved at k={k}"));
                return Verdict::Proved { engine: "bmc-induction" };
            }
            bmc::InductionOutcome::Unknown => {
                engines_tried.push(format!("{bad_name}/induction: inconclusive"));
            }
            bmc::InductionOutcome::ResourceOut => {
                engines_tried.push(format!("{bad_name}/induction: resource-out"));
                reasons.push("induction conflict budget".into());
            }
            bmc::InductionOutcome::Suspended { .. } => {
                unreachable!("unbudgeted induction cannot suspend")
            }
        }
    }

    if !opts.sat_only {
        match bdd_engine::bdd_umc(&sub, opts.bdd_nodes, opts.max_iterations, stats) {
            BddEngineOutcome::Proved => {
                engines_tried.push(format!("{bad_name}/bdd-umc: proved"));
                return Verdict::Proved { engine: "bdd-umc" };
            }
            BddEngineOutcome::FalsifiedAtDepth(k) => {
                engines_tried.push(format!("{bad_name}/bdd-umc: bad reachable at depth {k}"));
                // Extract the trace with a depth-pinned BMC run.
                match bmc::bmc_check(&sub, k, k, u64::MAX, stats) {
                    bmc::BmcOutcome::Falsified(t) => {
                        let full = expand_trace(Trace { inputs: t.inputs, bad_index });
                        assert!(full.replays_on(aig), "BDD counterexample failed replay");
                        return Verdict::Falsified(full);
                    }
                    other => panic!(
                        "BDD engine reported depth-{k} violation but BMC disagrees: {other:?}"
                    ),
                }
            }
            BddEngineOutcome::ResourceOut => {
                engines_tried.push(format!("{bad_name}/bdd-umc: resource-out"));
                reasons.push(format!("BDD node quota ({})", opts.bdd_nodes));
            }
            BddEngineOutcome::Suspended(_) | BddEngineOutcome::Yielded => {
                unreachable!("unbudgeted BDD UMC cannot suspend")
            }
        }
        if opts.pobdd_window_vars > 0 {
            match pobdd::pobdd_reach(
                &sub,
                opts.pobdd_window_vars,
                opts.pobdd_workers,
                opts.bdd_nodes,
                opts.max_iterations,
                stats,
            ) {
                BddEngineOutcome::Proved => {
                    engines_tried.push(format!("{bad_name}/pobdd-umc: proved"));
                    return Verdict::Proved { engine: "pobdd-umc" };
                }
                BddEngineOutcome::FalsifiedAtDepth(k) => {
                    engines_tried.push(format!("{bad_name}/pobdd-umc: bad at depth {k}"));
                    match bmc::bmc_check(&sub, k, k, u64::MAX, stats) {
                        bmc::BmcOutcome::Falsified(t) => {
                            let full = expand_trace(Trace { inputs: t.inputs, bad_index });
                            assert!(full.replays_on(aig), "POBDD counterexample failed replay");
                            return Verdict::Falsified(full);
                        }
                        other => panic!(
                            "POBDD reported depth-{k} violation but BMC disagrees: {other:?}"
                        ),
                    }
                }
                BddEngineOutcome::ResourceOut => {
                    engines_tried.push(format!("{bad_name}/pobdd-umc: resource-out"));
                    reasons.push("POBDD node quota".into());
                }
                BddEngineOutcome::Suspended(_) | BddEngineOutcome::Yielded => {
                    unreachable!("unbudgeted POBDD cannot suspend")
                }
            }
        }
    }

    Verdict::ResourceOut {
        reason: if reasons.is_empty() {
            "no engine concluded within its budget".to_string()
        } else {
            reasons.join("; ")
        },
    }
}
