//! The typed engine abstraction of the verification portfolio: the
//! [`Engine`] trait the four built-in engines implement, the
//! cooperative [`Budget`]/[`CancelToken`] threaded through every engine
//! loop, and the structured [`EngineEvent`] log that replaced the
//! stringly-typed `engines_tried` vector.

use crate::checkpoint::EngineCheckpoint;
use crate::{CheckOptions, CheckStats, Trace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use veridic_aig::Aig;

/// Identity of a portfolio engine. The built-in four cover the paper's
/// tool mix; custom [`Engine`] implementations use [`EngineId::Custom`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineId {
    /// SAT bounded model checking (falsification).
    Bmc,
    /// SAT k-induction (proof).
    Induction,
    /// Monolithic BDD forward reachability (proof/falsification).
    BddUmc,
    /// Partitioned-OBDD reachability (proof/falsification).
    PobddUmc,
    /// A user-supplied engine; the string is its stable display name.
    Custom(&'static str),
}

impl EngineId {
    /// The short name used in event renderings (`"bmc"`, `"bdd-umc"`…).
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineId::Bmc => "bmc",
            EngineId::Induction => "induction",
            EngineId::BddUmc => "bdd-umc",
            EngineId::PobddUmc => "pobdd-umc",
            EngineId::Custom(name) => name,
        }
    }

    /// The name a [`crate::Verdict::Proved`] carries when this engine
    /// concludes (the historical strings: induction proofs are
    /// attributed to `"bmc-induction"`).
    pub fn proved_name(&self) -> &'static str {
        match self {
            EngineId::Bmc => "bmc",
            EngineId::Induction => "bmc-induction",
            EngineId::BddUmc => "bdd-umc",
            EngineId::PobddUmc => "pobdd-umc",
            EngineId::Custom(name) => name,
        }
    }

    /// The inverse of [`EngineId::as_str`] for the built-in engines
    /// (plus the [`crate::PREANALYSIS`] pseudo-engine); `None` for
    /// anything else. Deserializers use this to rebuild an `EngineId`
    /// from a persisted name without leaking a fresh `'static` string
    /// for the common cases.
    pub fn from_name(name: &str) -> Option<EngineId> {
        match name {
            "bmc" => Some(EngineId::Bmc),
            "induction" => Some(EngineId::Induction),
            "bdd-umc" => Some(EngineId::BddUmc),
            "pobdd-umc" => Some(EngineId::PobddUmc),
            crate::PREANALYSIS => Some(EngineId::Custom(crate::PREANALYSIS)),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared cancellation flag: cloneable, `Send`, flipped once. Hand a
/// clone to [`Budget::with_cancel`] and call [`CancelToken::cancel`]
/// from anywhere (a signal handler, a watchdog thread, a test) to make
/// every engine loop holding the paired budget stop at its next tick —
/// the BDD engines answer by checkpointing their fixpoint state.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; irreversible.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cooperative resource budget threaded into every engine loop.
///
/// The unit is one **engine round**: a BMC depth solved, an induction
/// k attempted, a reachability image computed. Engines call
/// [`Budget::tick`] before starting a round; a `false` answer means
/// "stop now" — SAT engines suspend with their next depth/k, BDD
/// engines serialize their reached/frontier sets through the
/// `veridic_bdd::transfer` layer so the run can resume mid-fixpoint
/// (see `Portfolio::resume`).
///
/// [`Budget::unlimited`] never says stop; it is what the compatibility
/// shims use, so un-budgeted runs behave exactly like the pre-portfolio
/// cascade.
#[derive(Clone, Debug)]
pub struct Budget {
    rounds_left: Option<u64>,
    cancel: Option<CancelToken>,
    used: u64,
    /// For a [`Budget::child`]: the parent's remaining rounds at
    /// creation (`None` = parent unlimited). Lets
    /// [`Budget::checkpoint_worthwhile`] tell a run-wide trip from a
    /// slot-cap-only trip.
    parent_left: Option<u64>,
    is_child: bool,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No round limit, no cancellation.
    pub fn unlimited() -> Self {
        Budget { rounds_left: None, cancel: None, used: 0, parent_left: None, is_child: false }
    }

    /// At most `n` engine rounds across the run.
    pub fn rounds(n: u64) -> Self {
        Budget { rounds_left: Some(n), cancel: None, used: 0, parent_left: None, is_child: false }
    }

    /// Attaches a cancellation token (checked at every tick).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// True if the next [`Budget::tick`] would refuse.
    pub fn is_exhausted(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || self.rounds_left == Some(0)
    }

    /// Consumes one round. Returns `false` — without consuming — once
    /// the budget is exhausted or the paired token cancelled; the
    /// caller must then stop (suspending if it can checkpoint).
    pub fn tick(&mut self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        if let Some(r) = &mut self.rounds_left {
            *r -= 1;
        }
        self.used += 1;
        true
    }

    /// Rounds consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// A child budget capped at `cap` rounds (on top of whatever this
    /// budget has left), sharing the cancellation token. The scheduler
    /// uses this to give each portfolio slot its own round allowance;
    /// charge the child's consumption back with [`Budget::charge`].
    pub fn child(&self, cap: Option<u64>) -> Budget {
        let rounds_left = match (self.rounds_left, cap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        Budget {
            rounds_left,
            cancel: self.cancel.clone(),
            used: 0,
            parent_left: self.rounds_left,
            is_child: true,
        }
    }

    /// After a refused [`Budget::tick`]: is a *resumable* checkpoint
    /// worth building? `true` when the run as a whole stopped (the
    /// cancel token fired, or a run-wide round budget is spent —
    /// including the parent budget of a [`Budget::child`]); `false`
    /// when only a per-slot round cap tripped, in which case the
    /// scheduler hands over to the next engine and would discard the
    /// checkpoint anyway — the BDD engines use this to skip the
    /// transfer-layer export of their reached sets entirely.
    pub fn checkpoint_worthwhile(&self) -> bool {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return true;
        }
        if self.is_child {
            self.parent_left.is_some_and(|p| self.used >= p)
        } else {
            true
        }
    }

    /// Deducts `rounds` from this budget (saturating), accounting for
    /// work a child budget performed.
    pub fn charge(&mut self, rounds: u64) {
        if let Some(r) = &mut self.rounds_left {
            *r = r.saturating_sub(rounds);
        }
        self.used += rounds;
    }
}

/// Everything an [`Engine`] sees for one run: the cone-of-influence
/// reduced AIG (bad 0 is the property under check), the budgets, the
/// mutable statistics sink, and — when resuming — the checkpoint to
/// continue from.
pub struct EngineCtx<'a> {
    /// The COI-reduced AIG: exactly one bad (index 0) plus the original
    /// constraints.
    pub aig: &'a Aig,
    /// Name of the bad output under check (for attribution).
    pub bad_name: &'a str,
    /// The configured budgets and knobs.
    pub opts: &'a CheckOptions,
    /// The cooperative round budget for this engine run (already the
    /// merge of the portfolio-wide budget and the slot's cap).
    pub budget: &'a mut Budget,
    /// Statistics sink (shared across the whole check).
    pub stats: &'a mut CheckStats,
    /// A checkpoint from a previous [`EngineOutcome::Suspended`] of the
    /// *same* engine on the *same* AIG, if this run is a resume.
    pub resume: Option<&'a EngineCheckpoint>,
}

/// What one engine run concluded.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineOutcome {
    /// Property proved. `k` is the induction depth when the engine is
    /// k-induction, `None` otherwise.
    Proved {
        /// Induction depth of the proof, if the method has one.
        k: Option<usize>,
    },
    /// A concrete counterexample on the ctx's (reduced) AIG.
    Falsified(Trace),
    /// The bad is reachable at exactly this depth but the engine does
    /// not produce input traces (the BDD engines); the scheduler
    /// extracts the trace with a depth-pinned BMC run.
    FalsifiedAtDepth(usize),
    /// The engine finished without concluding (BMC clean to its depth
    /// bound, induction not k-inductive within its k bound).
    Inconclusive,
    /// A per-engine resource (conflicts, nodes, iterations) ran out;
    /// the reason is the human-readable account the portfolio verdict
    /// aggregates.
    ResourceOut {
        /// What ran out, e.g. `"BDD node quota (2097152)"`.
        reason: String,
    },
    /// The cooperative [`Budget`] said stop; the checkpoint resumes the
    /// run where it left off.
    Suspended(EngineCheckpoint),
    /// The budget said stop but only a slot-local round cap tripped
    /// ([`Budget::checkpoint_worthwhile`] returned `false`): the
    /// scheduler hands over to the next engine, so the engine skipped
    /// building a checkpoint. Engines whose checkpoints are cheap
    /// cursors (the SAT engines) may return
    /// [`EngineOutcome::Suspended`] instead; the scheduler treats both
    /// as a handover when the run-wide budget still has rounds.
    Yielded,
}

/// A verification engine the [`crate::Portfolio`] can schedule.
///
/// Implementations must be `Send + Sync`: one portfolio instance is
/// shared by reference across campaign worker threads.
///
/// The contract mirrors the paper's tool portfolio: an engine is given
/// a single-bad COI-reduced AIG and budgets, runs until it concludes or
/// a budget trips, and reports a typed [`EngineOutcome`]. Engines never
/// push events — attribution (bad name, resource deltas) is the
/// scheduler's job, which is what keeps the event log uniform across
/// engine implementations.
pub trait Engine: Send + Sync {
    /// Stable identity for events and verdict attribution.
    fn id(&self) -> EngineId;

    /// Structural capability check: can this engine meaningfully run on
    /// `aig` at all? The scheduler skips (without an event) engines
    /// that answer `false`. The built-in engines accept everything —
    /// this hook exists for custom engines with narrower domains
    /// (combinational-only, single-latch, …).
    fn supports(&self, aig: &Aig) -> bool;

    /// Configuration gate: is this engine enabled under `opts`? This is
    /// where the historical `bdd_only`/`sat_only`/`pobdd_window_vars`
    /// switches live, so `Portfolio::default()` reproduces the legacy
    /// cascade for every option combination.
    fn enabled(&self, _opts: &CheckOptions) -> bool {
        true
    }

    /// Runs the engine until it concludes, exhausts a per-engine
    /// resource, or the ctx budget trips.
    fn run(&self, ctx: &mut EngineCtx<'_>) -> EngineOutcome;
}

/// Resource snapshot attached to an [`EngineEvent`]: the deltas of the
/// check's statistics attributable to that engine run. Deterministic
/// for a fixed input (no wall clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventResources {
    /// SAT conflicts this run added.
    pub sat_conflicts: u64,
    /// BDD nodes this run allocated.
    pub bdd_allocated: u64,
    /// Peak live BDD nodes observed by the end of this run (a running
    /// maximum over the check, not a per-run figure).
    pub bdd_peak_live: usize,
    /// Budget rounds this run consumed.
    pub rounds: u64,
}

/// How an engine run ended, as recorded in the event log.
///
/// [`EngineEvent::render`] maps these back to the exact legacy
/// `engines_tried` strings, which is what keeps the Table 2/3 text
/// byte-identical across the API redesign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventOutcome {
    /// A counterexample was produced (and replayed).
    Falsified,
    /// BMC exhausted its depth bound without a counterexample.
    CleanToDepth(usize),
    /// Induction proved at this k.
    ProvedAtK(usize),
    /// The engine finished inconclusively.
    Inconclusive,
    /// A BDD engine proved the fixpoint bad-free.
    Proved,
    /// A BDD engine found the bad reachable at this depth.
    FalsifiedAtDepth(usize),
    /// A per-engine resource ran out.
    ResourceOut,
    /// The cooperative budget suspended the run (resumable).
    Suspended,
}

/// One entry of the typed engine log: which engine ran for which bad
/// output, how it ended, and what it consumed. Replaces the
/// stringly-typed `engines_tried: Vec<String>`; the legacy strings are
/// one [`EngineEvent::render`] away.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineEvent {
    /// Name of the bad output the engine ran for.
    pub bad: String,
    /// The engine.
    pub engine: EngineId,
    /// How the run ended.
    pub outcome: EventOutcome,
    /// Stat deltas attributable to the run.
    pub resources: EventResources,
}

impl EngineEvent {
    /// Renders the exact legacy `engines_tried` string for this event
    /// (`"<bad>/<engine>: <outcome>"`), preserving the historical
    /// per-engine phrasing: the monolithic BDD engine said `"bad
    /// reachable at depth k"` where the POBDD engine said `"bad at
    /// depth k"`.
    pub fn render(&self) -> String {
        let engine = self.engine.as_str();
        let bad = &self.bad;
        match &self.outcome {
            EventOutcome::Falsified => format!("{bad}/{engine}: falsified"),
            EventOutcome::CleanToDepth(d) => format!("{bad}/{engine}: clean to depth {d}"),
            EventOutcome::ProvedAtK(k) => format!("{bad}/{engine}: proved at k={k}"),
            EventOutcome::Inconclusive => format!("{bad}/{engine}: inconclusive"),
            EventOutcome::Proved => format!("{bad}/{engine}: proved"),
            EventOutcome::FalsifiedAtDepth(k) => match self.engine {
                EngineId::BddUmc => format!("{bad}/{engine}: bad reachable at depth {k}"),
                _ => format!("{bad}/{engine}: bad at depth {k}"),
            },
            EventOutcome::ResourceOut => format!("{bad}/{engine}: resource-out"),
            EventOutcome::Suspended => format!("{bad}/{engine}: suspended"),
        }
    }
}

impl std::fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_rounds_tick_down() {
        let mut b = Budget::rounds(2);
        assert!(b.tick());
        assert!(b.tick());
        assert!(!b.tick(), "third tick must refuse");
        assert!(b.is_exhausted());
        assert_eq!(b.used(), 2);
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let mut b = Budget::unlimited();
        for _ in 0..1000 {
            assert!(b.tick());
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.used(), 1000);
    }

    #[test]
    fn cancel_token_stops_all_holders() {
        let token = CancelToken::new();
        let mut a = Budget::unlimited().with_cancel(&token);
        let mut b = Budget::rounds(10).with_cancel(&token);
        assert!(a.tick() && b.tick());
        token.cancel();
        assert!(!a.tick() && !b.tick());
    }

    #[test]
    fn checkpoint_worthwhile_distinguishes_trip_causes() {
        // Slot cap binds, parent has rounds left: not worthwhile.
        let parent = Budget::rounds(10);
        let mut child = parent.child(Some(2));
        while child.tick() {}
        assert!(!child.checkpoint_worthwhile(), "slot-cap trip is a handover");
        // Parent budget binds: worthwhile.
        let parent = Budget::rounds(2);
        let mut child = parent.child(Some(10));
        while child.tick() {}
        assert!(child.checkpoint_worthwhile(), "run-wide trip must checkpoint");
        // Child of an unlimited parent with a slot cap: handover.
        let parent = Budget::unlimited();
        let mut child = parent.child(Some(2));
        while child.tick() {}
        assert!(!child.checkpoint_worthwhile());
        // Cancellation always checkpoints, cap or not.
        let token = CancelToken::new();
        let parent = Budget::unlimited().with_cancel(&token);
        let mut child = parent.child(Some(2));
        token.cancel();
        assert!(!child.tick());
        assert!(child.checkpoint_worthwhile());
        // A non-child budget is the run budget: its trip checkpoints.
        let mut own = Budget::rounds(1);
        while own.tick() {}
        assert!(own.checkpoint_worthwhile());
    }

    #[test]
    fn child_budget_merges_caps_and_charges_back() {
        let mut parent = Budget::rounds(10);
        let mut child = parent.child(Some(3));
        assert!(child.tick() && child.tick() && child.tick());
        assert!(!child.tick(), "slot cap must bind");
        parent.charge(child.used());
        assert_eq!(parent.used(), 3);
        let wide = parent.child(Some(100));
        assert_eq!(wide.rounds_left, Some(7), "parent remainder must bind");
    }

    #[test]
    fn render_matches_legacy_strings() {
        let ev = |engine, outcome| EngineEvent {
            bad: "q_high".into(),
            engine,
            outcome,
            resources: EventResources::default(),
        };
        assert_eq!(ev(EngineId::Bmc, EventOutcome::Falsified).render(), "q_high/bmc: falsified");
        assert_eq!(
            ev(EngineId::Bmc, EventOutcome::CleanToDepth(30)).render(),
            "q_high/bmc: clean to depth 30"
        );
        assert_eq!(
            ev(EngineId::Induction, EventOutcome::ProvedAtK(2)).render(),
            "q_high/induction: proved at k=2"
        );
        assert_eq!(
            ev(EngineId::BddUmc, EventOutcome::FalsifiedAtDepth(9)).render(),
            "q_high/bdd-umc: bad reachable at depth 9"
        );
        assert_eq!(
            ev(EngineId::PobddUmc, EventOutcome::FalsifiedAtDepth(9)).render(),
            "q_high/pobdd-umc: bad at depth 9"
        );
        assert_eq!(
            ev(EngineId::PobddUmc, EventOutcome::ResourceOut).render(),
            "q_high/pobdd-umc: resource-out"
        );
    }
}
