//! Partitioned-OBDD reachability — the paper's in-house engine
//! \[Jain, IWLS 2004\]: the state space is split by window functions
//! (cubes over chosen state variables) and reachability fixpoints run per
//! partition with cross-partition frontier exchange. Each partition's
//! reached-set BDD stays smaller than the monolithic one, postponing node
//! blow-up.

use crate::bdd_engine::{BddEngineOutcome, TransitionSystem};
use crate::CheckStats;
use veridic_aig::Aig;
use veridic_bdd::{NodeId, OutOfNodes};

/// Partitioned forward reachability with `window_vars` splitting
/// variables (2^k windows).
///
/// Splitting variables are the current-state variables with the highest
/// occurrence count across transition-relation clusters — a cheap proxy
/// for "most entangled", which is where partitioning pays off.
pub fn pobdd_reach(
    aig: &Aig,
    window_vars: u32,
    node_quota: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
) -> BddEngineOutcome {
    let mut ts = match TransitionSystem::build(aig, node_quota) {
        Ok(ts) => ts,
        Err(e) => {
            // Quota-exhausted builds used to report 0 nodes in the
            // Table 2/3 stats; record the manager's accounting and the
            // quota hit on this exit path too.
            stats.bdd_nodes = stats.bdd_nodes.max(e.peak_live_nodes);
            stats.bdd_allocated += e.total_allocated;
            stats.bdd_quota_hits += 1;
            return BddEngineOutcome::ResourceOut;
        }
    };
    let outcome = run(&mut ts, window_vars, max_iterations, stats);
    stats.bdd_nodes = stats.bdd_nodes.max(ts.mgr.peak_live_nodes());
    stats.bdd_allocated += ts.mgr.total_allocated();
    match outcome {
        Ok(o) => o,
        Err(_) => {
            stats.bdd_quota_hits += 1;
            BddEngineOutcome::ResourceOut
        }
    }
}

fn run(
    ts: &mut TransitionSystem,
    window_vars: u32,
    max_iterations: usize,
    stats: &mut CheckStats,
) -> Result<BddEngineOutcome, OutOfNodes> {
    let split = choose_split_vars(ts, window_vars);
    let k = split.len() as u32;
    let nparts = 1usize << k;

    // Window cubes: one per assignment of the split variables. The
    // cubes, reached sets and frontiers below are all GC roots — only
    // image intermediates and superseded per-partition sets are
    // collectable under quota pressure.
    let mut windows = Vec::with_capacity(nparts);
    for w in 0..nparts {
        let mut cube = NodeId::TRUE;
        for (bit, var) in split.iter().enumerate() {
            let lit = if w >> bit & 1 == 1 {
                ts.mgr.var(*var)?
            } else {
                ts.mgr.nvar(*var)?
            };
            let c = ts.mgr.and(cube, lit)?;
            ts.mgr.reroot(cube, c);
            cube = c;
        }
        windows.push(cube);
    }

    // Per-partition reached sets and frontiers.
    let mut reached = vec![NodeId::FALSE; nparts];
    let mut frontier = vec![NodeId::FALSE; nparts];
    for w in 0..nparts {
        let part = ts.mgr.and(ts.init, windows[w])?;
        ts.mgr.protect(part); // reached slot
        ts.mgr.protect(part); // frontier slot
        reached[w] = part;
        frontier[w] = part;
        if part != NodeId::FALSE && ts.intersects_bad(part) {
            return Ok(BddEngineOutcome::FalsifiedAtDepth(0));
        }
    }

    // Synchronous rounds: depth is global, so falsification depths agree
    // with the monolithic engine.
    for depth in 1..=max_iterations {
        stats.iterations = depth;
        let mut new_frontier = vec![NodeId::FALSE; nparts];
        let mut any_new = false;
        for &fr in &frontier {
            if fr == NodeId::FALSE {
                continue;
            }
            let img = ts.image(fr)?;
            ts.mgr.protect(img); // held across the whole window loop
            // Distribute the image across windows.
            for (l, window) in windows.iter().enumerate() {
                let part = ts.mgr.and(img, *window)?;
                if part == NodeId::FALSE {
                    continue;
                }
                let fresh = ts.mgr.and_not(part, reached[l])?;
                if fresh == NodeId::FALSE {
                    continue;
                }
                if ts.intersects_bad(fresh) {
                    return Ok(BddEngineOutcome::FalsifiedAtDepth(depth));
                }
                let r = ts.mgr.or(reached[l], fresh)?;
                ts.mgr.reroot(reached[l], r);
                reached[l] = r;
                let nf = ts.mgr.or(new_frontier[l], fresh)?;
                ts.mgr.reroot(new_frontier[l], nf);
                new_frontier[l] = nf;
                any_new = true;
            }
            ts.mgr.unprotect(img);
        }
        if !any_new {
            return Ok(BddEngineOutcome::Proved);
        }
        for &fr in &frontier {
            ts.mgr.unprotect(fr);
        }
        frontier = new_frontier;
    }
    Ok(BddEngineOutcome::ResourceOut)
}

/// Picks the current-state variables that occur in the most clusters.
fn choose_split_vars(ts: &TransitionSystem, want: u32) -> Vec<u32> {
    let n = ts.num_latches() as u32;
    let mut counts: Vec<(u32, usize)> = (0..n).map(|i| (2 * i, 0)).collect();
    for c in &ts.clusters {
        for v in ts.mgr.support(*c) {
            if v % 2 == 0 && v < 2 * n {
                counts[(v / 2) as usize].1 += 1;
            }
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
        .into_iter()
        .take(want.min(n) as usize)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::{Aig, Lit};
    use crate::bdd_engine::bdd_umc;

    fn counter_with_bad(bits: u32, bad_at: u64) -> Aig {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, (_, q))| if bad_at >> i & 1 == 1 { *q } else { !*q })
            .collect();
        let bad = g.and_many(hit);
        g.add_bad("hit", bad);
        g
    }

    #[test]
    fn pobdd_agrees_with_monolithic_on_depth() {
        for bad_at in [1u64, 6, 11] {
            let g = counter_with_bad(4, bad_at);
            let mut s1 = CheckStats::default();
            let mut s2 = CheckStats::default();
            let mono = bdd_umc(&g, 1 << 20, 1000, &mut s1);
            let part = pobdd_reach(&g, 2, 1 << 20, 1000, &mut s2);
            assert_eq!(mono, part, "bad_at={bad_at}");
        }
    }

    #[test]
    fn pobdd_proves_unreachable() {
        let mut g = counter_with_bad(4, 3);
        // Replace bad with an unreachable one: stuck latch.
        let (l, s) = g.latch("stuck", false);
        g.set_next(l, s);
        let mut g2 = Aig::new();
        // Rebuild cleanly: counter + stuck latch bad.
        let qs: Vec<_> = (0..4).map(|i| g2.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g2.xor(*q, carry);
            carry = g2.and(*q, carry);
            g2.set_next(*id, next);
        }
        let (l2, s2) = g2.latch("stuck", false);
        g2.set_next(l2, s2);
        g2.add_bad("never", s2);
        let _ = (g, l, s);
        let mut stats = CheckStats::default();
        assert_eq!(
            pobdd_reach(&g2, 2, 1 << 20, 1000, &mut stats),
            BddEngineOutcome::Proved
        );
    }

    /// Regression: `pobdd_reach` returned early on a quota-exhausted
    /// `TransitionSystem::build` without recording peak `bdd_nodes`, so
    /// Table 2/3 stats showed 0 nodes for exactly the runs that hit the
    /// quota hardest.
    #[test]
    fn quota_exhausted_build_records_stats() {
        let g = counter_with_bad(16, (1 << 16) - 1);
        let mut stats = CheckStats::default();
        assert_eq!(
            pobdd_reach(&g, 2, 300, 1 << 20, &mut stats),
            BddEngineOutcome::ResourceOut
        );
        assert!(stats.bdd_nodes > 0, "failure path must record peak live nodes");
        assert!(stats.bdd_allocated > 0);
        assert_eq!(stats.bdd_quota_hits, 1);
    }

    #[test]
    fn window_count_exceeding_latches_is_clamped() {
        let g = counter_with_bad(2, 3);
        let mut stats = CheckStats::default();
        // 6 window vars requested, only 2 latches exist.
        assert_eq!(
            pobdd_reach(&g, 6, 1 << 20, 1000, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(3)
        );
    }
}
