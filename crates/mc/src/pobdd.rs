//! Partitioned-OBDD reachability — the paper's in-house engine
//! \[Jain, IWLS 2004\]: the state space is split by window functions
//! (cubes over chosen state variables) and reachability fixpoints run per
//! partition with cross-partition frontier exchange. Each partition's
//! reached-set BDD stays smaller than the monolithic one, postponing node
//! blow-up.
//!
//! With `workers > 1` the window partitions additionally fan out across
//! threads: every worker owns a deterministic subset of the windows and
//! a private [`TransitionSystem`]/manager built from the shared AIG, and
//! frontiers cross worker boundaries between synchronous rounds through
//! the [`veridic_bdd::transfer`] layer. Verdicts, falsification depths
//! and iteration counts are identical to the serial engine for any
//! worker count (see the determinism notes on [`pobdd_reach`]).

use crate::bdd_engine::{BddEngineOutcome, TransitionSystem};
use crate::checkpoint::ReachCheckpoint;
use crate::engine::Budget;
use crate::{BddWorkerStats, CheckStats};
use std::sync::mpsc::{Receiver, Sender};
use veridic_aig::Aig;
use veridic_bdd::transfer::{self, DeltaBdd, ExportedBdd};
use veridic_bdd::{NodeId, OutOfNodes};

/// Partitioned forward reachability with `window_vars` splitting
/// variables (up to 2^k windows) across `workers` threads (`0` = one
/// per available CPU, `1` = serial in the calling thread).
///
/// Splitting variables are the current-state variables with the highest
/// occurrence count across transition-relation clusters — a cheap proxy
/// for "most entangled", which is where partitioning pays off.
/// Variables that occur in *no* cluster are never selected: a
/// zero-occurrence split variable would double the window count (and
/// the thread fan-out) with zero reached-set-size benefit, so the
/// effective window count is clamped to 2^(entangled variables) even
/// when `window_vars` asks for more.
///
/// # Determinism
///
/// Rounds are globally synchronous: depth `d` ends only when every
/// window's depth-`d` image has been distributed and absorbed, so the
/// outcome, the falsification depth and [`CheckStats::iterations`] are
/// the same for any worker count — threads change *where* each window's
/// fixpoint runs, never *what* a round computes. The per-window bad
/// checks commute (the set of states first reached at depth `d` is
/// schedule-independent), and a falsifying round always reports its own
/// depth. The one caveat is quota exhaustion: each worker's manager
/// gets the full `node_quota`, so a run that exhausts the quota under
/// one worker layout may fit under another; runs that conclude within
/// quota agree everywhere. Per-worker manager accounting lands in
/// [`CheckStats::worker_bdd`].
pub fn pobdd_reach(
    aig: &Aig,
    window_vars: u32,
    workers: usize,
    node_quota: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
) -> BddEngineOutcome {
    pobdd_reach_session(
        aig,
        window_vars,
        workers,
        node_quota,
        max_iterations,
        false,
        false,
        stats,
        &mut Budget::unlimited(),
        None,
    )
}

/// [`pobdd_reach`] under a cooperative round [`Budget`], optionally
/// resumed from a [`ReachCheckpoint`] of an earlier suspended run on
/// the same AIG.
///
/// One budget round is consumed per global reachability round. When the
/// budget trips between rounds, every window's reached and frontier set
/// is exported through [`veridic_bdd::transfer`] (the threaded engine
/// collects its workers' owned windows through the same round protocol)
/// and the run suspends. Resume re-derives the identical window split
/// from the AIG, imports the per-window sets, and continues at the next
/// round — with any worker count: rounds are globally synchronous, so a
/// checkpoint taken under one worker layout resumes under another with
/// the same verdict, depth and completed-round count.
///
/// `dynamic_reorder` arms automatic in-place variable sifting (see
/// [`veridic_bdd::BddManager::sift`]) on every manager the session
/// creates — the serial manager or each window worker's. Verdict,
/// depth and iteration count are unaffected; only node counts and
/// wall-clock move.
///
/// `static_order` seeds every manager the session creates with the
/// FORCE static variable order (see
/// [`veridic_aig::structure::force_order`]) before its transition
/// system is built — computed once from the AIG, identical across
/// workers, and composable with `dynamic_reorder` (sifting starts from
/// the seeded order). Like reordering, it moves only node counts and
/// wall-clock, never verdicts, depths or iteration counts.
#[allow(clippy::too_many_arguments)]
pub fn pobdd_reach_session(
    aig: &Aig,
    window_vars: u32,
    workers: usize,
    node_quota: usize,
    max_iterations: usize,
    dynamic_reorder: bool,
    static_order: bool,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> BddEngineOutcome {
    if let Some(ck) = resume {
        assert_eq!(
            ck.window_vars, window_vars,
            "POBDD resumed with a checkpoint from a different window split"
        );
    }
    let seeded = if static_order {
        let so = crate::bdd_engine::static_bdd_order(aig);
        stats.static_order_span_before = so.span_before;
        stats.static_order_span_after = so.span_after;
        Some(so.order)
    } else {
        None
    };
    let order = seeded.as_deref();
    let workers = effective_workers(workers, window_vars, aig);
    if workers <= 1 {
        serial_reach(
            aig,
            window_vars,
            node_quota,
            max_iterations,
            dynamic_reorder,
            order,
            stats,
            budget,
            resume,
        )
    } else {
        parallel_reach(
            aig,
            window_vars,
            workers,
            node_quota,
            max_iterations,
            dynamic_reorder,
            order,
            stats,
            budget,
            resume,
        )
    }
}

/// Resolves the requested worker count: `0` means one per available
/// CPU, and the result is clamped to an upper bound on the window count
/// (`2^min(window_vars, structurally entangled latches)`) so spawning a
/// worker that cannot possibly own a window is avoided without building
/// any BDDs. The bound uses the *structural* entanglement count — BDD
/// support is a subset of structural support — so in rare cases where
/// semantic cancellation drops further split variables a worker can
/// still end up owning no windows; it then builds its transition system
/// once and idles through the barriers.
fn effective_workers(requested: usize, window_vars: u32, aig: &Aig) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    if requested <= 1 {
        return 1;
    }
    // Cap the shift well below usize bits; 2^16 windows is already far
    // beyond any sensible fan-out.
    let entangled = structurally_entangled_latches(aig) as u32;
    let max_parts = 1usize << window_vars.min(entangled).min(16);
    requested.clamp(1, max_parts)
}

/// Number of latches whose output appears in the combinational cone of
/// some latch's next-state function — a cheap structural upper bound on
/// the variables [`choose_split_vars`] can select (its cluster-support
/// counts see the BDD support, a subset of the structural one). Costs
/// one AIG walk, no BDDs.
fn structurally_entangled_latches(aig: &Aig) -> usize {
    use veridic_aig::hash::FxHashSet;
    let latch_vars: FxHashSet<veridic_aig::Var> =
        aig.latches().iter().map(|l| l.var).collect();
    let mut seen: FxHashSet<veridic_aig::Var> = FxHashSet::default();
    let mut entangled: FxHashSet<veridic_aig::Var> = FxHashSet::default();
    let mut stack: Vec<veridic_aig::Var> =
        aig.latches().iter().map(|l| l.next.var()).collect();
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        if latch_vars.contains(&v) {
            entangled.insert(v);
            continue; // cones stop at state variables
        }
        if let Some((a, b)) = aig.and_fanins(v) {
            stack.push(a.var());
            stack.push(b.var());
        }
    }
    entangled.len()
}

// ---------------------------------------------------------------------
// Serial engine (one manager, all windows).
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn serial_reach(
    aig: &Aig,
    window_vars: u32,
    node_quota: usize,
    max_iterations: usize,
    dynamic_reorder: bool,
    order: Option<&[u32]>,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> BddEngineOutcome {
    let mut ts = match TransitionSystem::build_with_order(aig, node_quota, order) {
        Ok(ts) => ts,
        Err(e) => {
            // Quota-exhausted builds used to report 0 nodes in the
            // Table 2/3 stats; record the manager's accounting and the
            // quota hit on this exit path too.
            stats.bdd_nodes = stats.bdd_nodes.max(e.peak_live_nodes);
            stats.bdd_allocated += e.total_allocated;
            stats.bdd_quota_hits += 1;
            stats.worker_bdd = vec![BddWorkerStats {
                peak_live_nodes: e.peak_live_nodes,
                allocated: e.total_allocated,
                quota_hit: true,
                ..Default::default()
            }];
            return BddEngineOutcome::ResourceOut;
        }
    };
    if dynamic_reorder {
        let n_latches = ts.num_latches();
        crate::bdd_engine::arm_dynamic_reorder(&mut ts.mgr, n_latches, node_quota);
    }
    let outcome = serial_run(&mut ts, window_vars, max_iterations, stats, budget, resume);
    stats.bdd_nodes = stats.bdd_nodes.max(ts.mgr.peak_live_nodes());
    stats.bdd_allocated += ts.mgr.total_allocated();
    crate::bdd_engine::fold_reorder_stats(stats, &ts.mgr);
    let (reorders, reorder_nodes_before, reorder_nodes_after) = ts.mgr.reorder_stats();
    stats.worker_bdd = vec![BddWorkerStats {
        peak_live_nodes: ts.mgr.peak_live_nodes(),
        allocated: ts.mgr.total_allocated(),
        quota_hit: outcome.is_err(),
        reorders,
        reorder_nodes_before,
        reorder_nodes_after,
    }];
    match outcome {
        Ok(o) => o,
        Err(_) => {
            stats.bdd_quota_hits += 1;
            BddEngineOutcome::ResourceOut
        }
    }
}

fn serial_run(
    ts: &mut TransitionSystem,
    window_vars: u32,
    max_iterations: usize,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> Result<BddEngineOutcome, OutOfNodes> {
    let split = choose_split_vars(ts, window_vars);
    let windows = build_windows(ts, &split)?;
    let nparts = windows.len();

    // Per-partition reached sets and frontiers.
    let mut reached = vec![NodeId::FALSE; nparts];
    let mut frontier = vec![NodeId::FALSE; nparts];
    let start_depth = match resume {
        Some(ck) => {
            assert_eq!(
                ck.reached.len(),
                nparts,
                "checkpoint window count must match the re-derived split"
            );
            for w in 0..nparts {
                // Each import arrives rooted: exactly the registration
                // the reached/frontier slot owns.
                reached[w] = transfer::import(&ck.reached[w], &mut ts.mgr)?;
                frontier[w] =
                    transfer::import_delta(&ck.frontier[w], &ck.reached[w], &mut ts.mgr)?;
            }
            ck.depth
        }
        None => {
            for w in 0..nparts {
                let part = ts.mgr.and(ts.init, windows[w])?;
                ts.mgr.protect(part); // reached slot
                ts.mgr.protect(part); // frontier slot
                reached[w] = part;
                frontier[w] = part;
                if part != NodeId::FALSE && ts.intersects_bad(part) {
                    return Ok(BddEngineOutcome::FalsifiedAtDepth(0));
                }
            }
            0
        }
    };

    // Synchronous rounds: depth is global, so falsification depths agree
    // with the monolithic engine. `stats.iterations` counts *completed*
    // rounds (a round that concludes the check counts as completed, a
    // round aborted by the quota does not) — the same convention as
    // `bdd_umc`, so Tables 2/3 agree between engines on every exit path.
    for depth in start_depth + 1..=max_iterations {
        if !budget.tick() {
            if !budget.checkpoint_worthwhile() {
                return Ok(BddEngineOutcome::Yielded);
            }
            let reached_exports: Vec<ExportedBdd> =
                reached.iter().map(|&n| transfer::export(&ts.mgr, n)).collect();
            let frontier_deltas = frontier
                .iter()
                .zip(&reached_exports)
                .map(|(&f, base)| transfer::export_delta(&ts.mgr, f, base))
                .collect();
            return Ok(BddEngineOutcome::Suspended(ReachCheckpoint {
                depth: depth - 1,
                reached: reached_exports,
                frontier: frontier_deltas,
                window_vars,
            }));
        }
        let mut new_frontier = vec![NodeId::FALSE; nparts];
        let mut any_new = false;
        for &fr in &frontier {
            if fr == NodeId::FALSE {
                continue;
            }
            let img = ts.image(fr)?;
            ts.mgr.protect(img); // held across the whole window loop
            // Distribute the image across windows.
            for (l, window) in windows.iter().enumerate() {
                let part = ts.mgr.and(img, *window)?;
                if part == NodeId::FALSE {
                    continue;
                }
                let fresh = ts.mgr.and_not(part, reached[l])?;
                if fresh == NodeId::FALSE {
                    continue;
                }
                if ts.intersects_bad(fresh) {
                    stats.iterations = depth; // the concluding round counts
                    return Ok(BddEngineOutcome::FalsifiedAtDepth(depth));
                }
                let r = ts.mgr.or(reached[l], fresh)?;
                ts.mgr.reroot(reached[l], r);
                reached[l] = r;
                let nf = ts.mgr.or(new_frontier[l], fresh)?;
                ts.mgr.reroot(new_frontier[l], nf);
                new_frontier[l] = nf;
                any_new = true;
            }
            ts.mgr.unprotect(img);
        }
        stats.iterations = depth; // round completed
        if !any_new {
            return Ok(BddEngineOutcome::Proved);
        }
        for &fr in &frontier {
            ts.mgr.unprotect(fr);
        }
        frontier = new_frontier;
    }
    Ok(BddEngineOutcome::ResourceOut)
}

/// Builds one window cube per assignment of the split variables. The
/// cubes are protected in the manager (they are held for the whole
/// run); the caller owns those registrations.
fn build_windows(ts: &mut TransitionSystem, split: &[u32]) -> Result<Vec<NodeId>, OutOfNodes> {
    let nparts = 1usize << split.len();
    let mut windows = Vec::with_capacity(nparts);
    for w in 0..nparts {
        let mut cube = NodeId::TRUE;
        for (bit, var) in split.iter().enumerate() {
            let lit = if w >> bit & 1 == 1 {
                ts.mgr.var(*var)?
            } else {
                ts.mgr.nvar(*var)?
            };
            let c = ts.mgr.and(cube, lit)?;
            // The reroot chain leaves exactly one registration on the
            // finished cube (and none on the TRUE cube of an empty
            // split, which as a terminal needs none).
            ts.mgr.reroot(cube, c);
            cube = c;
        }
        windows.push(cube);
    }
    Ok(windows)
}

/// Picks the current-state variables that occur in the most clusters.
///
/// Zero-occurrence variables are dropped even when that yields fewer
/// than `want` split variables: a variable no cluster mentions cannot
/// shrink any partition's reached set, and each padded variable would
/// double the window count for nothing (regression-tested in
/// `zero_occurrence_vars_are_not_split_on`).
pub(crate) fn choose_split_vars(ts: &TransitionSystem, want: u32) -> Vec<u32> {
    let n = ts.num_latches() as u32;
    let mut counts: Vec<(u32, usize)> = (0..n).map(|i| (2 * i, 0)).collect();
    for c in &ts.clusters {
        for v in ts.mgr.support(*c) {
            if v % 2 == 0 && v < 2 * n {
                counts[(v / 2) as usize].1 += 1;
            }
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
        .into_iter()
        .filter(|(_, count)| *count > 0)
        .take(want.min(n) as usize)
        .map(|(v, _)| v)
        .collect()
}

// ---------------------------------------------------------------------
// Threaded engine (one manager per worker, windows partitioned).
// ---------------------------------------------------------------------

/// A frontier piece crossing a worker boundary: image of window `src`
/// restricted to window `dst`, serialized for the destination manager.
type RemotePiece = (usize, usize, ExportedBdd); // (dst, src, piece)

/// One window's checkpoint piece: `(window, reached, frontier)` — the
/// frontier delta-encoded against the same window's reached export.
type CheckpointPiece = (usize, ExportedBdd, DeltaBdd);

/// Coordinator → worker commands, one round at a time.
enum ToWorker {
    /// Compute this round's images for every owned window and ship the
    /// remote-destined pieces up.
    Round,
    /// Absorb the routed pieces (pre-sorted by `(dst, src)`) into the
    /// owned reached sets/frontiers and report the round status.
    Absorb(Vec<RemotePiece>),
    /// Export the owned windows' reached/frontier sets (the budget
    /// suspended the run between rounds).
    Checkpoint,
    /// Tear down and report final manager accounting.
    Stop,
}

/// Worker → coordinator phase reports. Every command is answered by
/// exactly one report (even on quota failure), so the coordinator's
/// barrier is a fixed receive count per phase.
enum FromWorker {
    /// Setup done. `owner` is the worker's window→worker assignment —
    /// every worker derives the identical map from its identically
    /// built transition system, and the coordinator adopts the first
    /// successful worker's copy for routing.
    Built { falsified0: bool, ok: bool, owner: Vec<usize> },
    Images { remote: Vec<RemotePiece>, ok: bool },
    Absorbed { any_new: bool, falsified: bool, ok: bool },
    Checkpointed { pieces: Vec<CheckpointPiece>, ok: bool },
}

#[allow(clippy::too_many_arguments)]
fn parallel_reach(
    aig: &Aig,
    window_vars: u32,
    workers: usize,
    node_quota: usize,
    max_iterations: usize,
    dynamic_reorder: bool,
    order: Option<&[u32]>,
    stats: &mut CheckStats,
    budget: &mut Budget,
    resume: Option<&ReachCheckpoint>,
) -> BddEngineOutcome {
    let (up_tx, up_rx) = std::sync::mpsc::channel::<(usize, FromWorker)>();
    let outcome = std::thread::scope(|s| {
        let mut to_workers = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for wid in 0..workers {
            let (down_tx, down_rx) = std::sync::mpsc::channel::<ToWorker>();
            let up = up_tx.clone();
            to_workers.push(down_tx);
            handles.push(s.spawn(move || {
                window_worker(
                    aig,
                    wid,
                    workers,
                    window_vars,
                    node_quota,
                    dynamic_reorder,
                    order,
                    resume,
                    &down_rx,
                    &up,
                )
            }));
        }
        // Only the workers hold senders now: if every worker died, the
        // coordinator's recv errors out instead of blocking forever.
        drop(up_tx);
        let start_depth = resume.map_or(0, |ck| ck.depth);
        let outcome = drive_rounds(
            &to_workers,
            &up_rx,
            workers,
            max_iterations,
            stats,
            budget,
            start_depth,
            window_vars,
        );
        for tx in &to_workers {
            let _ = tx.send(ToWorker::Stop);
        }
        let worker_stats: Vec<BddWorkerStats> = handles
            .into_iter()
            .map(|h| h.join().expect("pobdd worker panicked")) // lint: allow
            .collect();
        for ws in &worker_stats {
            stats.bdd_nodes = stats.bdd_nodes.max(ws.peak_live_nodes);
            stats.bdd_allocated += ws.allocated;
            stats.bdd_quota_hits += ws.quota_hit as usize;
            stats.reorders += ws.reorders;
            stats.reorder_nodes_before += ws.reorder_nodes_before;
            stats.reorder_nodes_after += ws.reorder_nodes_after;
        }
        stats.worker_bdd = worker_stats;
        outcome
    });
    outcome
}

/// The coordinator's round loop: broadcast a command, await one report
/// per worker, reduce. Falsification takes precedence over quota
/// failure in a mixed round — a found intersection with bad is sound
/// regardless of what other workers ran out of.
#[allow(clippy::too_many_arguments)]
fn drive_rounds(
    to_workers: &[Sender<ToWorker>],
    up_rx: &Receiver<(usize, FromWorker)>,
    workers: usize,
    max_iterations: usize,
    stats: &mut CheckStats,
    budget: &mut Budget,
    start_depth: usize,
    window_vars: u32,
) -> BddEngineOutcome {
    // Build barrier. The window→worker map (identical from every
    // worker) is adopted for piece routing.
    let mut ok = true;
    let mut falsified = false;
    let mut owner: Vec<usize> = Vec::new();
    for _ in 0..workers {
        let (_, msg) = up_rx.recv().expect("pobdd worker hung up during build"); // lint: allow
        match msg {
            FromWorker::Built { falsified0, ok: worker_ok, owner: map } => {
                ok &= worker_ok;
                falsified |= falsified0;
                if owner.is_empty() {
                    owner = map;
                }
            }
            _ => unreachable!("build phase answers with Built"),
        }
    }
    if falsified {
        return BddEngineOutcome::FalsifiedAtDepth(0);
    }
    if !ok {
        return BddEngineOutcome::ResourceOut;
    }

    for depth in start_depth + 1..=max_iterations {
        if !budget.tick() {
            if !budget.checkpoint_worthwhile() {
                // Slot-cap handover: the scheduler discards any state,
                // so skip the whole worker checkpoint protocol phase.
                return BddEngineOutcome::Yielded;
            }
            return checkpoint_workers(to_workers, up_rx, workers, depth - 1, window_vars);
        }
        // Phase A: images. Collect every worker's remote-destined pieces.
        for tx in to_workers {
            let _ = tx.send(ToWorker::Round);
        }
        let mut all_remote: Vec<Vec<RemotePiece>> = (0..workers).map(|_| Vec::new()).collect();
        let mut ok = true;
        for _ in 0..workers {
            let (wid, msg) = up_rx.recv().expect("pobdd worker hung up during images"); // lint: allow
            match msg {
                FromWorker::Images { remote, ok: worker_ok } => {
                    ok &= worker_ok;
                    all_remote[wid] = remote;
                }
                _ => unreachable!("image phase answers with Images"),
            }
        }
        if !ok {
            return BddEngineOutcome::ResourceOut;
        }
        // Route by the shared window→worker map (a longest-processing-
        // time bin-pack over window cost estimates; see
        // `assign_windows_lpt`). Sort each worker's inbox by (dst, src)
        // so absorption order — and therefore node allocation — is
        // schedule-independent.
        let mut inbox: Vec<Vec<RemotePiece>> = (0..workers).map(|_| Vec::new()).collect();
        for pieces in all_remote {
            for piece in pieces {
                inbox[owner[piece.0]].push(piece);
            }
        }
        for (wid, mut pieces) in inbox.into_iter().enumerate() {
            pieces.sort_unstable_by_key(|(dst, src, _)| (*dst, *src));
            let _ = to_workers[wid].send(ToWorker::Absorb(pieces));
        }
        // Phase B: absorb reports.
        let mut ok = true;
        let mut falsified = false;
        let mut any_new = false;
        for _ in 0..workers {
            let (_, msg) = up_rx.recv().expect("pobdd worker hung up during absorb"); // lint: allow
            match msg {
                FromWorker::Absorbed { any_new: new, falsified: f, ok: worker_ok } => {
                    any_new |= new;
                    falsified |= f;
                    ok &= worker_ok;
                }
                _ => unreachable!("absorb phase answers with Absorbed"),
            }
        }
        if falsified {
            stats.iterations = depth; // the concluding round counts
            return BddEngineOutcome::FalsifiedAtDepth(depth);
        }
        if !ok {
            return BddEngineOutcome::ResourceOut; // round d not completed
        }
        stats.iterations = depth; // round completed
        if !any_new {
            return BddEngineOutcome::Proved;
        }
    }
    BddEngineOutcome::ResourceOut
}

/// Collects every worker's owned-window exports into one
/// [`ReachCheckpoint`] after the budget suspended the run. If any
/// worker cannot checkpoint (it died on a quota failure earlier), the
/// run degrades to a plain resource-out — a partial checkpoint would
/// resume unsoundly.
fn checkpoint_workers(
    to_workers: &[Sender<ToWorker>],
    up_rx: &Receiver<(usize, FromWorker)>,
    workers: usize,
    depth: usize,
    window_vars: u32,
) -> BddEngineOutcome {
    for tx in to_workers {
        let _ = tx.send(ToWorker::Checkpoint);
    }
    let mut all_pieces: Vec<CheckpointPiece> = Vec::new();
    let mut ok = true;
    for _ in 0..workers {
        let (_, msg) = up_rx.recv().expect("pobdd worker hung up during checkpoint"); // lint: allow
        match msg {
            FromWorker::Checkpointed { pieces, ok: worker_ok } => {
                ok &= worker_ok;
                all_pieces.extend(pieces);
            }
            _ => unreachable!("checkpoint phase answers with Checkpointed"),
        }
    }
    if !ok {
        return BddEngineOutcome::ResourceOut;
    }
    all_pieces.sort_unstable_by_key(|(w, _, _)| *w);
    let nparts = all_pieces.len();
    debug_assert!(all_pieces.iter().enumerate().all(|(i, (w, _, _))| i == *w));
    let mut reached = Vec::with_capacity(nparts);
    let mut frontier = Vec::with_capacity(nparts);
    for (_, r, f) in all_pieces {
        reached.push(r);
        frontier.push(f);
    }
    BddEngineOutcome::Suspended(ReachCheckpoint { depth, reached, frontier, window_vars })
}

/// Per-worker state for the threaded engine: a private transition
/// system plus the reached/frontier slots of the owned windows.
struct WindowWorker {
    ts: TransitionSystem,
    /// All window cubes (every worker can slice an image by any window).
    windows: Vec<NodeId>,
    /// Window indices this worker owns (per the shared LPT assignment).
    owned: Vec<usize>,
    /// Window → owning worker, identical across workers (each derives
    /// it from the same costs; see [`assign_windows_lpt`]).
    owner: Vec<usize>,
    wid: usize,
    reached: Vec<NodeId>,
    frontier: Vec<NodeId>,
    /// Own-destined pieces of the current round, held between the image
    /// and absorb phases (each protected).
    local_pieces: Vec<(usize, usize, NodeId)>, // (dst, src, part)
}

#[allow(clippy::too_many_arguments)]
fn window_worker(
    aig: &Aig,
    wid: usize,
    workers: usize,
    window_vars: u32,
    node_quota: usize,
    dynamic_reorder: bool,
    order: Option<&[u32]>,
    resume: Option<&ReachCheckpoint>,
    rx: &Receiver<ToWorker>,
    tx: &Sender<(usize, FromWorker)>,
) -> BddWorkerStats {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    // Every phase is panic-guarded: a panicking worker would otherwise
    // deadlock the coordinator's fixed-receive-count barrier (its reply
    // never arrives, and the other workers' live senders keep `recv`
    // from erroring out). On a panic the worker sends the error-flavored
    // reply, keeps the protocol alive until `Stop`, and only then
    // re-raises, so the bug surfaces through the coordinator's join
    // instead of hanging the check.
    let setup = catch_unwind(AssertUnwindSafe(|| {
        let mut ts =
            TransitionSystem::build_with_order(aig, node_quota, order).map_err(|e| BddWorkerStats {
            peak_live_nodes: e.peak_live_nodes,
            allocated: e.total_allocated,
            quota_hit: true,
            ..Default::default()
        })?;
        if dynamic_reorder {
            let n_latches = ts.num_latches();
            crate::bdd_engine::arm_dynamic_reorder(&mut ts.mgr, n_latches, node_quota);
        }
        worker_setup(ts, wid, workers, window_vars, resume)
    }));
    let mut state = match setup {
        Ok(Ok(state)) => state,
        Ok(Err(stats)) => {
            let _ = tx.send((
                wid,
                FromWorker::Built { falsified0: false, ok: false, owner: Vec::new() },
            ));
            drain_until_stop(wid, rx, tx);
            return stats;
        }
        Err(payload) => {
            let _ = tx.send((
                wid,
                FromWorker::Built { falsified0: false, ok: false, owner: Vec::new() },
            ));
            drain_until_stop(wid, rx, tx);
            resume_unwind(payload);
        }
    };
    let mut quota_hit = false;
    // A resumed run's depth-0 check already happened in the original
    // session; re-checking the imported frontier would double-report.
    let falsified0 = resume.is_none() && state.init_intersects_bad();
    let _ = tx.send((
        wid,
        FromWorker::Built { falsified0, ok: true, owner: state.owner.clone() },
    ));
    let mut panic_payload = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ToWorker::Round => {
                match catch_unwind(AssertUnwindSafe(|| state.images())) {
                    Ok(Ok(remote)) => {
                        let _ = tx.send((wid, FromWorker::Images { remote, ok: true }));
                        continue;
                    }
                    Ok(Err(_)) => quota_hit = true,
                    Err(payload) => panic_payload = Some(payload),
                }
                let _ = tx.send((wid, FromWorker::Images { remote: Vec::new(), ok: false }));
                drain_until_stop(wid, rx, tx);
                break;
            }
            ToWorker::Absorb(pieces) => {
                match catch_unwind(AssertUnwindSafe(|| state.absorb(pieces))) {
                    Ok(Ok((any_new, falsified))) => {
                        let _ =
                            tx.send((wid, FromWorker::Absorbed { any_new, falsified, ok: true }));
                        continue;
                    }
                    Ok(Err(_)) => quota_hit = true,
                    Err(payload) => panic_payload = Some(payload),
                }
                let _ = tx.send((
                    wid,
                    FromWorker::Absorbed { any_new: false, falsified: false, ok: false },
                ));
                drain_until_stop(wid, rx, tx);
                break;
            }
            ToWorker::Checkpoint => {
                // Pure export: allocates nothing, cannot fail.
                let pieces = state.checkpoint_pieces();
                let _ = tx.send((wid, FromWorker::Checkpointed { pieces, ok: true }));
            }
            ToWorker::Stop => break,
        }
    }
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    let (reorders, reorder_nodes_before, reorder_nodes_after) = state.ts.mgr.reorder_stats();
    BddWorkerStats {
        peak_live_nodes: state.ts.mgr.peak_live_nodes(),
        allocated: state.ts.mgr.total_allocated(),
        quota_hit,
        reorders,
        reorder_nodes_before,
        reorder_nodes_after,
    }
}

/// After a quota failure the worker keeps answering the protocol (every
/// command gets its error-flavored report) until `Stop`, so the
/// coordinator's fixed-count barriers never block on a dead worker.
fn drain_until_stop(wid: usize, rx: &Receiver<ToWorker>, tx: &Sender<(usize, FromWorker)>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ToWorker::Round => {
                let _ = tx.send((wid, FromWorker::Images { remote: Vec::new(), ok: false }));
            }
            ToWorker::Absorb(_) => {
                let _ = tx.send((
                    wid,
                    FromWorker::Absorbed { any_new: false, falsified: false, ok: false },
                ));
            }
            ToWorker::Checkpoint => {
                let _ = tx.send((wid, FromWorker::Checkpointed { pieces: Vec::new(), ok: false }));
            }
            ToWorker::Stop => break,
        }
    }
}

/// Estimated per-window load: for each window cube, the node count
/// every transition-relation cluster retains when the split variables
/// are fixed to the window's polarity ([`veridic_bdd::BddManager::size_restricted`]
/// — a pure traversal, no allocation). Windows that kill most of a
/// cluster's nodes are cheap; windows that keep a cluster intact pay
/// its full image cost every round. Deterministic for a given
/// transition system, so every worker computes the identical vector.
fn window_costs(ts: &TransitionSystem, split: &[u32], nparts: usize) -> Vec<u64> {
    (0..nparts)
        .map(|w| {
            let fixed = |v: u32| -> Option<bool> {
                split.iter().position(|&s| s == v).map(|bit| w >> bit & 1 == 1)
            };
            ts.clusters
                .iter()
                .map(|c| ts.mgr.size_restricted(*c, &fixed) as u64)
                .sum()
        })
        .collect()
}

/// Longest-processing-time greedy bin-pack: windows sorted by cost
/// (descending, ties by window index) are assigned one at a time to the
/// least-loaded worker (ties to the lowest id). Replaces the old static
/// round-robin (`w % workers`), which put the heaviest windows on the
/// same worker whenever costs were skewed by position.
///
/// Fully deterministic, so every worker derives the identical map with
/// no coordination; with all costs positive and at least as many
/// windows as workers, every worker receives at least one window.
/// Returns the window→worker map.
fn assign_windows_lpt(costs: &[u64], workers: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_unstable_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    let mut owner = vec![0usize; costs.len()];
    let mut load = vec![0u64; workers];
    for w in order {
        let wid = (0..workers).min_by_key(|&i| (load[i], i)).expect("workers >= 1"); // lint: allow
        load[wid] += costs[w];
        owner[w] = wid;
    }
    owner
}

/// Builds one worker's window/reached/frontier state. On quota failure
/// the transition system is consumed and its final accounting returned
/// so the worker can report honest per-worker stats.
fn worker_setup(
    mut ts: TransitionSystem,
    wid: usize,
    workers: usize,
    window_vars: u32,
    resume: Option<&ReachCheckpoint>,
) -> Result<WindowWorker, BddWorkerStats> {
    let fail = |ts: &TransitionSystem| {
        let (reorders, reorder_nodes_before, reorder_nodes_after) = ts.mgr.reorder_stats();
        BddWorkerStats {
            peak_live_nodes: ts.mgr.peak_live_nodes(),
            allocated: ts.mgr.total_allocated(),
            quota_hit: true,
            reorders,
            reorder_nodes_before,
            reorder_nodes_after,
        }
    };
    // Every worker derives the identical split, costs and assignment
    // from its identically built transition system — no coordination
    // needed.
    let split = choose_split_vars(&ts, window_vars);
    let windows = match build_windows(&mut ts, &split) {
        Ok(w) => w,
        Err(_) => return Err(fail(&ts)),
    };
    let nparts = windows.len();
    let owner = assign_windows_lpt(&window_costs(&ts, &split, nparts), workers);
    let owned: Vec<usize> = (0..nparts).filter(|&w| owner[w] == wid).collect();
    let mut reached = vec![NodeId::FALSE; nparts];
    let mut frontier = vec![NodeId::FALSE; nparts];
    match resume {
        Some(ck) => {
            assert_eq!(
                ck.reached.len(),
                nparts,
                "checkpoint window count must match the re-derived split"
            );
            for &w in &owned {
                // Imports arrive rooted — one registration per slot.
                let r = match transfer::import(&ck.reached[w], &mut ts.mgr) {
                    Ok(r) => r,
                    Err(_) => return Err(fail(&ts)),
                };
                let f = match transfer::import_delta(&ck.frontier[w], &ck.reached[w], &mut ts.mgr)
                {
                    Ok(f) => f,
                    Err(_) => return Err(fail(&ts)),
                };
                reached[w] = r;
                frontier[w] = f;
            }
        }
        None => {
            for &w in &owned {
                let part = match ts.mgr.and(ts.init, windows[w]) {
                    Ok(p) => p,
                    Err(_) => return Err(fail(&ts)),
                };
                ts.mgr.protect(part); // reached slot
                ts.mgr.protect(part); // frontier slot
                reached[w] = part;
                frontier[w] = part;
            }
        }
    }
    Ok(WindowWorker {
        ts,
        windows,
        owned,
        owner,
        wid,
        reached,
        frontier,
        local_pieces: Vec::new(),
    })
}

impl WindowWorker {
    fn init_intersects_bad(&self) -> bool {
        self.owned
            .iter()
            .any(|&w| self.frontier[w] != NodeId::FALSE && self.ts.intersects_bad(self.frontier[w]))
    }

    /// Phase A of a round: image every owned window's frontier and slice
    /// it by all windows. Own-destined pieces stay local (protected);
    /// pieces for other workers are exported immediately — before any
    /// further allocation could trigger a collection — and shipped up.
    fn images(&mut self) -> Result<Vec<RemotePiece>, OutOfNodes> {
        let mut remote = Vec::new();
        for &w in &self.owned {
            let fr = self.frontier[w];
            if fr == NodeId::FALSE {
                continue;
            }
            let img = self.ts.image(fr)?;
            self.ts.mgr.protect(img); // held across the whole window loop
            for (dst, window) in self.windows.iter().enumerate() {
                let part = self.ts.mgr.and(img, *window)?;
                if part == NodeId::FALSE {
                    continue;
                }
                if self.owner[dst] == self.wid {
                    self.ts.mgr.protect(part); // held until the absorb phase
                    self.local_pieces.push((dst, w, part));
                } else {
                    remote.push((dst, w, transfer::export(&self.ts.mgr, part)));
                }
            }
            self.ts.mgr.unprotect(img);
        }
        Ok(remote)
    }

    /// Phase B: merge the round's local and imported pieces — sorted by
    /// `(dst, src)` so allocation order is schedule-independent — into
    /// the owned reached sets, checking each fresh set against bad.
    fn absorb(&mut self, remote: Vec<RemotePiece>) -> Result<(bool, bool), OutOfNodes> {
        let mut items: Vec<(usize, usize, NodeId)> = std::mem::take(&mut self.local_pieces);
        for (dst, src, exported) in &remote {
            let part = transfer::import(exported, &mut self.ts.mgr)?; // arrives rooted
            items.push((*dst, *src, part));
        }
        items.sort_unstable_by_key(|(dst, src, _)| (*dst, *src));
        let mut new_frontier = vec![NodeId::FALSE; self.windows.len()];
        let mut any_new = false;
        for (dst, _src, part) in items {
            let fresh = self.ts.mgr.and_not(part, self.reached[dst])?;
            self.ts.mgr.unprotect(part); // release the piece's root
            if fresh == NodeId::FALSE {
                continue;
            }
            if self.ts.intersects_bad(fresh) {
                return Ok((any_new, true));
            }
            let r = self.ts.mgr.or(self.reached[dst], fresh)?;
            self.ts.mgr.reroot(self.reached[dst], r);
            self.reached[dst] = r;
            let nf = self.ts.mgr.or(new_frontier[dst], fresh)?;
            self.ts.mgr.reroot(new_frontier[dst], nf);
            new_frontier[dst] = nf;
            any_new = true;
        }
        for &w in &self.owned {
            self.ts.mgr.unprotect(self.frontier[w]);
            self.frontier[w] = new_frontier[w];
        }
        Ok((any_new, false))
    }

    /// Exports the owned windows' reached/frontier sets for a
    /// [`ReachCheckpoint`]. Pure read — no allocation, cannot fail.
    fn checkpoint_pieces(&self) -> Vec<CheckpointPiece> {
        self.owned
            .iter()
            .map(|&w| {
                let reached = transfer::export(&self.ts.mgr, self.reached[w]);
                let frontier = transfer::export_delta(&self.ts.mgr, self.frontier[w], &reached);
                (w, reached, frontier)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::{Aig, Lit};
    use crate::bdd_engine::bdd_umc;

    fn counter_with_bad(bits: u32, bad_at: u64) -> Aig {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, (_, q))| if bad_at >> i & 1 == 1 { *q } else { !*q })
            .collect();
        let bad = g.and_many(hit);
        g.add_bad("hit", bad);
        g
    }

    #[test]
    fn pobdd_agrees_with_monolithic_on_depth() {
        for bad_at in [1u64, 6, 11] {
            let g = counter_with_bad(4, bad_at);
            let mut s1 = CheckStats::default();
            let mut s2 = CheckStats::default();
            let mono = bdd_umc(&g, 1 << 20, 1000, &mut s1);
            let part = pobdd_reach(&g, 2, 1, 1 << 20, 1000, &mut s2);
            assert_eq!(mono, part, "bad_at={bad_at}");
            assert_eq!(s1.iterations, s2.iterations, "bad_at={bad_at}");
        }
    }

    #[test]
    fn threaded_pobdd_matches_serial_verdicts() {
        for bad_at in [0u64, 5, 9, 14] {
            let g = counter_with_bad(4, bad_at);
            let mut serial = CheckStats::default();
            let base = pobdd_reach(&g, 2, 1, 1 << 20, 1000, &mut serial);
            for workers in [2usize, 3, 4, 0] {
                let mut stats = CheckStats::default();
                let got = pobdd_reach(&g, 2, workers, 1 << 20, 1000, &mut stats);
                assert_eq!(base, got, "bad_at={bad_at} workers={workers}");
                assert_eq!(
                    serial.iterations, stats.iterations,
                    "iteration counts must agree at bad_at={bad_at} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn threaded_pobdd_records_per_worker_stats() {
        let g = counter_with_bad(4, 9);
        let mut stats = CheckStats::default();
        let outcome = pobdd_reach(&g, 2, 2, 1 << 20, 1000, &mut stats);
        assert_eq!(outcome, BddEngineOutcome::FalsifiedAtDepth(9));
        assert_eq!(stats.worker_bdd.len(), 2, "one entry per worker");
        for (i, ws) in stats.worker_bdd.iter().enumerate() {
            assert!(ws.peak_live_nodes > 0, "worker {i} must report a peak");
            assert!(ws.allocated > 0, "worker {i} must report allocations");
            assert!(!ws.quota_hit);
            assert!(stats.bdd_nodes >= ws.peak_live_nodes);
        }
        assert_eq!(
            stats.bdd_allocated,
            stats.worker_bdd.iter().map(|w| w.allocated).sum::<u64>()
        );
    }

    #[test]
    fn pobdd_proves_unreachable() {
        let mut g2 = Aig::new();
        // Counter + stuck latch bad.
        let qs: Vec<_> = (0..4).map(|i| g2.latch(format!("c{i}"), false)).collect();
        let mut carry = Lit::TRUE;
        for (id, q) in &qs {
            let next = g2.xor(*q, carry);
            carry = g2.and(*q, carry);
            g2.set_next(*id, next);
        }
        let (l2, s2) = g2.latch("stuck", false);
        g2.set_next(l2, s2);
        g2.add_bad("never", s2);
        for workers in [1usize, 2] {
            let mut stats = CheckStats::default();
            assert_eq!(
                pobdd_reach(&g2, 2, workers, 1 << 20, 1000, &mut stats),
                BddEngineOutcome::Proved,
                "workers={workers}"
            );
        }
    }

    /// Regression: `pobdd_reach` returned early on a quota-exhausted
    /// `TransitionSystem::build` without recording peak `bdd_nodes`, so
    /// Table 2/3 stats showed 0 nodes for exactly the runs that hit the
    /// quota hardest.
    #[test]
    fn quota_exhausted_build_records_stats() {
        let g = counter_with_bad(16, (1 << 16) - 1);
        for workers in [1usize, 2] {
            let mut stats = CheckStats::default();
            assert_eq!(
                pobdd_reach(&g, 2, workers, 300, 1 << 20, &mut stats),
                BddEngineOutcome::ResourceOut,
                "workers={workers}"
            );
            assert!(stats.bdd_nodes > 0, "failure path must record peak live nodes");
            assert!(stats.bdd_allocated > 0);
            assert!(stats.bdd_quota_hits >= 1);
            assert!(stats.worker_bdd.iter().any(|w| w.quota_hit));
        }
    }

    #[test]
    fn window_count_exceeding_latches_is_clamped() {
        let g = counter_with_bad(2, 3);
        let mut stats = CheckStats::default();
        // 6 window vars requested, only 2 latches exist.
        assert_eq!(
            pobdd_reach(&g, 6, 1, 1 << 20, 1000, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(3)
        );
    }

    /// Regression: `choose_split_vars` used to pad the split with
    /// variables that occur in zero clusters whenever `window_vars`
    /// exceeded the number of entangled variables — each useless split
    /// variable doubled the window count (and now the thread fan-out)
    /// with zero reached-set-size benefit.
    #[test]
    fn zero_occurrence_vars_are_not_split_on() {
        // Latch a loads an input (its current var occurs in no cluster);
        // latch b toggles against another input. Only b's current var is
        // entangled, so a 2-var split request must clamp to 1 variable
        // (2 windows, not 4).
        let mut g = Aig::new();
        let i1 = g.input("i1");
        let i2 = g.input("i2");
        let (la, _qa) = g.latch("a", false);
        g.set_next(la, i1);
        let (lb, qb) = g.latch("b", false);
        let nb = g.xor(qb, i2);
        g.set_next(lb, nb);
        g.add_bad("b_high", qb);
        let ts = TransitionSystem::build(&g, 1 << 16).unwrap();
        let split = choose_split_vars(&ts, 2);
        assert_eq!(split, vec![2], "only latch b's current var is entangled");
        // And the engine still concludes correctly with the clamp.
        let mut stats = CheckStats::default();
        assert_eq!(
            pobdd_reach(&g, 2, 1, 1 << 20, 100, &mut stats),
            BddEngineOutcome::FalsifiedAtDepth(1)
        );
    }

    /// Maximal-period 16-bit Fibonacci LFSR (taps 16,14,13,11), seeded
    /// with a single one bit. Its reached set after d rounds is d
    /// pseudo-random states whose BDD grows with d, so the **live**
    /// working set genuinely outgrows a tight quota mid-run — unlike a
    /// counter, whose reached set stays small and sails through under
    /// garbage collection.
    fn lfsr16() -> Aig {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..16).map(|i| g.latch(format!("s{i}"), i == 0)).collect();
        let fb = [16usize, 14, 13, 11]
            .iter()
            .map(|t| qs[*t - 1].1)
            .reduce(|a, b| g.xor(a, b))
            .unwrap();
        for i in (1..16).rev() {
            g.set_next(qs[i].0, qs[i - 1].1);
        }
        g.set_next(qs[0].0, fb);
        // Bad: the all-zero state, unreachable from a nonzero seed.
        let nz: Vec<_> = qs.iter().map(|(_, q)| !*q).collect();
        let bad = g.and_many(nz);
        g.add_bad("zero", bad);
        g
    }

    /// The LPT bin-pack itself: heaviest window first, always onto the
    /// least-loaded worker, deterministic tie-breaks (lower window
    /// index sorts first, lower worker id wins load ties).
    #[test]
    fn lpt_assignment_balances_skewed_costs() {
        // One dominant window: it gets a worker to itself, the three
        // small ones share the other — round-robin would have paired
        // the giant with a small one and idled half of worker 1.
        assert_eq!(assign_windows_lpt(&[10, 1, 1, 1], 2), vec![0, 1, 1, 1]);
        // Two heavies split across workers, lighter ones balance.
        assert_eq!(assign_windows_lpt(&[8, 7, 3, 2], 2), vec![0, 1, 1, 0]);
        // Uniform costs degenerate to round-robin-like fairness: every
        // worker gets two of the four windows.
        let owner = assign_windows_lpt(&[5, 5, 5, 5], 2);
        assert_eq!(owner.iter().filter(|&&w| w == 0).count(), 2);
        assert_eq!(owner.iter().filter(|&&w| w == 1).count(), 2);
        // With positive costs and nparts >= workers, nobody idles.
        let owner = assign_windows_lpt(&[9, 1, 1, 1, 1, 1, 1, 1], 3);
        for wid in 0..3 {
            assert!(owner.contains(&wid), "worker {wid} must own a window");
        }
        // Determinism: same input, same output.
        assert_eq!(assign_windows_lpt(&[8, 7, 3, 2], 2), assign_windows_lpt(&[8, 7, 3, 2], 2));
    }

    /// Window costs come from the pure-read restricted-size walk and
    /// must be positive and deterministic.
    #[test]
    fn window_costs_are_positive_and_deterministic() {
        let g = counter_with_bad(4, 9);
        let ts = TransitionSystem::build(&g, 1 << 16).unwrap();
        let split = choose_split_vars(&ts, 2);
        let nparts = 1 << split.len();
        let c1 = window_costs(&ts, &split, nparts);
        let c2 = window_costs(&ts, &split, nparts);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), nparts);
        assert!(c1.iter().all(|&c| c > 0), "every window keeps at least the terminals: {c1:?}");
    }

    /// The load-balancing regression pin: with the LPT assignment the
    /// threaded engine still reports verdicts, depths and iteration
    /// counts identical to serial on a design with deliberately skewed
    /// windows (an LFSR's windows differ in reached-set growth), for
    /// every worker count.
    #[test]
    fn lpt_threaded_engine_stays_serial_identical() {
        let g = lfsr16();
        let mut serial = CheckStats::default();
        let base = pobdd_reach(&g, 2, 1, 1 << 20, 40, &mut serial);
        for workers in [2usize, 3, 4] {
            let mut stats = CheckStats::default();
            let got = pobdd_reach(&g, 2, workers, 1 << 20, 40, &mut stats);
            assert_eq!(base, got, "workers={workers}");
            assert_eq!(serial.iterations, stats.iterations, "workers={workers}");
        }
    }

    /// Kill-at-round-k → resume equality for the POBDD engine, serial
    /// and threaded: the resumed run must reach the identical outcome,
    /// falsification depth and completed-round count, and a checkpoint
    /// taken under one worker layout must resume under another.
    #[test]
    fn suspended_pobdd_resumes_identically() {
        use crate::engine::Budget;
        let g = counter_with_bad(5, 19);
        let mut full = CheckStats::default();
        let uninterrupted = pobdd_reach(&g, 2, 1, 1 << 20, 1000, &mut full);
        assert_eq!(uninterrupted, BddEngineOutcome::FalsifiedAtDepth(19));
        assert_eq!(full.iterations, 19);

        for (kill_workers, resume_workers) in [(1usize, 1usize), (2, 2), (1, 3), (2, 1)] {
            let mut s1 = CheckStats::default();
            let mut budget = Budget::rounds(7);
            let suspended = pobdd_reach_session(
                &g, 2, kill_workers, 1 << 20, 1000, false, false, &mut s1, &mut budget, None,
            );
            let ck = match suspended {
                BddEngineOutcome::Suspended(ck) => ck,
                other => panic!("7 rounds must suspend, got {other:?}"),
            };
            assert_eq!(ck.depth, 7, "kill_workers={kill_workers}");
            assert_eq!(ck.reached.len(), 4, "2 window vars -> 4 windows");
            let mut s2 = CheckStats::default();
            let resumed = pobdd_reach_session(
                &g,
                2,
                resume_workers,
                1 << 20,
                1000,
                false,
                false,
                &mut s2,
                &mut Budget::unlimited(),
                Some(&ck),
            );
            assert_eq!(
                resumed, uninterrupted,
                "kill={kill_workers} resume={resume_workers}"
            );
            assert_eq!(
                s2.iterations, full.iterations,
                "completed-round count must survive the kill (kill={kill_workers} resume={resume_workers})"
            );
        }
    }

    /// Regression for the cross-engine iteration-count off-by-one:
    /// `bdd_umc` used to set `stats.iterations` only after a round's
    /// image succeeded while `pobdd_reach` set it at the round's
    /// *start*, so a quota failure during the image at depth d reported
    /// d-1 from one engine and d from the other in Tables 2/3. With
    /// zero split variables the partitioned engine degenerates to the
    /// monolithic algorithm (one TRUE window, identical op sequence),
    /// so both engines fail at the same point and must report the same
    /// completed-round count.
    #[test]
    fn iteration_counts_agree_between_engines_on_quota_failure() {
        let g = lfsr16();
        for quota in [1500usize, 2000] {
            let mut s1 = CheckStats::default();
            let mut s2 = CheckStats::default();
            let mono = bdd_umc(&g, quota, 1 << 20, &mut s1);
            let part = pobdd_reach(&g, 0, 1, quota, 1 << 20, &mut s2);
            assert_eq!(mono, BddEngineOutcome::ResourceOut, "quota={quota}");
            assert_eq!(part, BddEngineOutcome::ResourceOut, "quota={quota}");
            assert!(s1.iterations > 0, "failure must be mid-run, not at build");
            assert_eq!(
                s1.iterations, s2.iterations,
                "engines must count completed rounds identically at quota={quota}"
            );
        }
    }
}
