//! # veridic-mc
//!
//! Model-checking engines over And-Inverter Graphs, scheduled by a
//! first-class **engine portfolio**:
//!
//! * **SAT BMC** — bounded unrolling for fast falsification and
//!   counterexample extraction (the "commercial tool" role).
//! * **k-induction** — SAT-based unbounded proof with simple-path
//!   strengthening.
//! * **BDD UMC** — forward symbolic reachability with clustered
//!   transition relations and early quantification (unbounded proof).
//! * **POBDD UMC** — partitioned-OBDD reachability, the reproduction of
//!   the paper's in-house engine \[Jain, IWLS 2004\].
//!
//! Each engine implements the [`Engine`] trait; a [`Portfolio`] owns an
//! ordered, per-engine-budgeted policy over them. The default policy is
//! the paper's cascade (BMC → induction → BDD UMC → POBDD), and the
//! flat [`check`]/[`check_one`] entry points are thin shims over it.
//! Every engine loop cooperates with a [`Budget`]/[`CancelToken`], and
//! the BDD engines checkpoint their fixpoint state through
//! `veridic_bdd::transfer` so a suspended run resumes
//! ([`Portfolio::resume`]) with identical verdicts.
//!
//! All engines run under **deterministic resource budgets** (BDD node
//! quotas, SAT conflict quotas, depth limits). Exhausting a budget yields
//! [`Verdict::ResourceOut`] — the reproducible analogue of the paper's
//! model-checker "time-out" that motivates divide-and-conquer property
//! partitioning (Fig. 7).
//!
//! Every [`Verdict::Falsified`] trace is **replayed on the AIG simulator**
//! before being returned; a trace that does not actually violate the
//! property is a checker bug and panics.
//!
//! ```
//! use veridic_aig::Aig;
//! use veridic_mc::{CheckOptions, Portfolio, Verdict};
//!
//! // A latch that is never true: proving `never q` succeeds.
//! let mut aig = Aig::new();
//! let (id, q) = aig.latch("q", false);
//! aig.set_next(id, q);
//! aig.add_bad("q_high", q);
//! let opts = CheckOptions::builder().pobdd_workers(1).build();
//! let result = Portfolio::default().check(&aig, &opts);
//! assert!(matches!(result.verdict, Verdict::Proved { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd_engine;
mod bmc;
mod checkpoint;
mod engine;
mod options;
mod pobdd;
mod portfolio;

pub use bdd_engine::{bdd_umc, bdd_umc_session, BddEngineOutcome, BuildError, TransitionSystem};
pub use bmc::{
    bmc_check, bmc_check_budgeted, induction_check, induction_check_budgeted, BmcOutcome,
    InductionOutcome,
};
pub use checkpoint::{EngineCheckpoint, ReachCheckpoint};
pub use engine::{
    Budget, CancelToken, Engine, EngineCtx, EngineEvent, EngineId, EngineOutcome, EventOutcome,
    EventResources,
};
pub use options::{CheckOptions, CheckOptionsBuilder};
pub use pobdd::{pobdd_reach, pobdd_reach_session};
pub use portfolio::{
    BddUmcEngine, BmcEngine, InductionEngine, PobddEngine, Portfolio, PortfolioOutcome,
    RunCheckpoint, PREANALYSIS,
};

use veridic_aig::Aig;

/// A counterexample trace: per-cycle primary-input assignments starting
/// from the initial state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// `inputs[k][i]` is input `i`'s value in cycle `k` (indexed like
    /// [`Aig::inputs`]).
    pub inputs: Vec<Vec<bool>>,
    /// Index of the violated bad in [`Aig::bads`].
    pub bad_index: usize,
}

impl Trace {
    /// Length in cycles.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True if the trace has no cycles.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Replays the trace on `aig`; returns true iff the bad fires in the
    /// final cycle and every constraint holds in every cycle.
    pub fn replays_on(&self, aig: &Aig) -> bool {
        let reports = aig.simulate(&self.inputs);
        let Some(last) = reports.last() else {
            return false;
        };
        reports.iter().all(|r| r.constraints_ok) && last.bads[self.bad_index]
    }
}

/// The verdict of a property check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on all reachable states.
    Proved {
        /// Engine that concluded ("bmc-induction", "bdd-umc", "pobdd-umc").
        engine: &'static str,
    },
    /// The property is violated; a replayed counterexample is attached.
    Falsified(Trace),
    /// Every configured engine exhausted its budget.
    ResourceOut {
        /// Human-readable account of what ran out.
        reason: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved { .. })
    }

    /// True for [`Verdict::Falsified`].
    pub fn is_falsified(&self) -> bool {
        matches!(self, Verdict::Falsified(_))
    }
}

/// Per-worker BDD manager accounting for the threaded POBDD engine
/// (one entry per worker thread, in worker-index order).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddWorkerStats {
    /// The worker manager's live-node high-water mark.
    pub peak_live_nodes: usize,
    /// Total nodes the worker's manager ever allocated.
    pub allocated: u64,
    /// True if this worker's manager exhausted its quota.
    pub quota_hit: bool,
    /// Dynamic reordering passes this worker's manager ran (zero unless
    /// [`CheckOptions::dynamic_reorder`] is on).
    pub reorders: u64,
    /// Σ live nodes immediately before each of this worker's passes.
    pub reorder_nodes_before: u64,
    /// Σ live nodes immediately after each of this worker's passes.
    pub reorder_nodes_after: u64,
}

/// Statistics of the static pre-analysis stage
/// ([`CheckOptions::preanalysis`]): how many bads it swept, what it
/// folded, and how many properties it concluded without an engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreanalysisStats {
    /// Bads the ternary sweep ran on (every checked bad when the stage
    /// is enabled; resumed bads are not double-counted).
    pub bads_analyzed: usize,
    /// Sequentially-stuck latches found (summed over bads; a latch in
    /// several bad cones counts once per cone, like the COI stats).
    pub stuck_latches: usize,
    /// AND nodes eliminated by constant folding (summed over bads).
    pub folded_ands: usize,
    /// Bads concluded statically — vacuous proofs and trivial
    /// falsifications — with **zero** engine invocations.
    pub vacuous: usize,
}

/// Cone-of-influence size of one checked bad, recorded per bad so
/// multi-bad checks don't smear (the summary fields used to be
/// overwritten by whichever bad was checked last).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadCoiStats {
    /// Name of the bad (from [`Aig::bads`]).
    pub bad: String,
    /// Latches in this bad's cone of influence.
    pub latches: usize,
    /// ANDs in this bad's cone of influence.
    pub ands: usize,
}

/// Per-check statistics for reporting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckStats {
    /// The typed engine log: every engine attempt, in schedule order,
    /// with its bad-output attribution, outcome and resource deltas.
    /// Replaces the old stringly-typed `engines_tried: Vec<String>`
    /// field; the legacy strings are [`CheckStats::engines_tried`]
    /// away.
    pub events: Vec<EngineEvent>,
    /// AIG latches after cone-of-influence reduction: the **maximum**
    /// over all checked bads (see [`CheckStats::per_bad_coi`] for the
    /// per-bad breakdown).
    pub coi_latches: usize,
    /// AIG ANDs after COI (maximum over all checked bads).
    pub coi_ands: usize,
    /// Per-bad COI sizes, in check order.
    pub per_bad_coi: Vec<BadCoiStats>,
    /// What the static pre-analysis stage swept, folded and concluded
    /// (all zero when [`CheckOptions::preanalysis`] is off).
    pub preanalysis: PreanalysisStats,
    /// Peak **live** BDD nodes (if a BDD engine ran): the garbage
    /// collector's high-water mark, recorded on every exit path
    /// including quota-exhausted transition-system builds.
    pub bdd_nodes: usize,
    /// Total BDD nodes ever allocated across BDD engine runs
    /// (GC-independent; `bdd_allocated > bdd_nodes` measures how much
    /// garbage collection reclaimed).
    pub bdd_allocated: u64,
    /// Number of times a BDD engine hit the node quota (build or run).
    pub bdd_quota_hits: usize,
    /// Total SAT conflicts (across all SAT calls).
    pub sat_conflicts: u64,
    /// Reachability rounds **completed** by the concluding BDD engine.
    /// A round that concludes the check (fixpoint or falsification)
    /// counts as completed; a round aborted by the node quota does not
    /// — both engines follow this convention, so a quota failure during
    /// the depth-d image reports d-1 everywhere.
    pub iterations: usize,
    /// Per-worker manager accounting of the most recent partitioned-OBDD
    /// run (replaced wholesale each run; empty if the POBDD engine never
    /// ran). One entry per worker thread, in worker-index order; the
    /// serial engine reports a single entry.
    pub worker_bdd: Vec<BddWorkerStats>,
    /// Dynamic reordering passes run across all BDD managers (zero
    /// unless [`CheckOptions::dynamic_reorder`] is on and a trigger
    /// fired).
    pub reorders: u64,
    /// Σ live nodes immediately before each reordering pass (paired
    /// with [`CheckStats::reorder_nodes_after`]: the ratio is the
    /// average shrink sifting bought).
    pub reorder_nodes_before: u64,
    /// Σ live nodes immediately after each reordering pass.
    pub reorder_nodes_after: u64,
    /// Total hyperedge span of the natural variable order, recorded by
    /// the FORCE static-order pass ([`CheckOptions::static_order`]).
    /// Zero when the pass is off — the pass makes no calls at all then,
    /// keeping off-runs byte-identical to previous releases.
    pub static_order_span_before: u64,
    /// Total hyperedge span of the adopted FORCE order (paired with
    /// [`CheckStats::static_order_span_before`]: the ratio is the
    /// locality the static order bought before the first image).
    pub static_order_span_after: u64,
}

impl CheckStats {
    /// Renders the event log as the historical `engines_tried` strings
    /// (`"<bad>/<engine>: <outcome>"`, in schedule order) — the exact
    /// text Tables 2/3 and the Fig. 7 demos have always printed.
    pub fn engines_tried(&self) -> Vec<String> {
        self.events.iter().map(EngineEvent::render).collect()
    }
}

/// The result of [`check`]: verdict plus statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Statistics.
    pub stats: CheckStats,
}

/// Checks every bad of `aig` (each separately; first failure wins) under
/// the given budgets.
///
/// A thin compatibility shim over [`Portfolio::check`] with the default
/// policy — COI reduction → BMC (falsification) → k-induction (proof) →
/// BDD forward UMC → POBDD UMC. Engines that exhaust their budget hand
/// over to the next; if all do, the result is [`Verdict::ResourceOut`].
/// Prefer holding a [`Portfolio`] when checking many properties (the
/// policy is built once) or when budgets/checkpoints are needed.
///
/// # Panics
///
/// Panics if an engine returns a counterexample that does not replay on
/// the AIG (a checker bug, never a property of the design).
pub fn check(aig: &Aig, opts: &CheckOptions) -> CheckResult {
    Portfolio::default().check(aig, opts)
}

/// Checks a single bad (by index into [`Aig::bads`]).
///
/// A thin compatibility shim over [`Portfolio::check_bad`] with the
/// default policy; see [`check`] for the cascade and panics.
pub fn check_one(
    aig: &Aig,
    bad_index: usize,
    opts: &CheckOptions,
    stats: &mut CheckStats,
) -> Verdict {
    Portfolio::default().check_bad(aig, bad_index, opts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_aig::Aig;

    /// n-bit counter with a bad at a given count value.
    fn counter_aig(bits: u32, bad_at: u64) -> Aig {
        let mut g = Aig::new();
        let qs: Vec<_> = (0..bits).map(|i| g.latch(format!("c{i}"), false)).collect();
        let mut carry = veridic_aig::Lit::TRUE;
        for (id, q) in &qs {
            let next = g.xor(*q, carry);
            carry = g.and(*q, carry);
            g.set_next(*id, next);
        }
        let hit: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, (_, q))| if bad_at >> i & 1 == 1 { *q } else { !*q })
            .collect();
        let bad = g.and_many(hit);
        g.add_bad(format!("count_is_{bad_at}"), bad);
        g
    }

    #[test]
    fn counter_reaches_its_values() {
        // 4-bit counter reaches 9 at depth 9.
        let g = counter_aig(4, 9);
        let r = check(&g, &CheckOptions::default());
        match r.verdict {
            Verdict::Falsified(t) => assert_eq!(t.len(), 10, "count 9 first true in cycle 9"),
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_bad_is_proved() {
        let mut g = Aig::new();
        let (l0, q0) = g.latch("b0", false);
        g.set_next(l0, !q0);
        let (l1, q1) = g.latch("b1", false);
        let n1 = g.xor(q1, q0);
        g.set_next(l1, n1);
        let (l2, q2) = g.latch("stuck", false);
        g.set_next(l2, q2); // stays 0
        g.add_bad("stuck_high", q2);
        let r = check(&g, &CheckOptions::default());
        assert!(matches!(r.verdict, Verdict::Proved { .. }), "{r:?}");
    }

    #[test]
    fn constraints_block_counterexamples() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, a);
        g.add_bad("q_high", q);
        g.add_constraint("a_low", !a);
        let r = check(&g, &CheckOptions::default());
        assert!(matches!(r.verdict, Verdict::Proved { .. }), "{r:?}");
        // Without the constraint it must be falsified at depth 1.
        let mut g2 = Aig::new();
        let a = g2.input("a");
        let (id, q) = g2.latch("q", false);
        g2.set_next(id, a);
        g2.add_bad("q_high", q);
        let r2 = check(&g2, &CheckOptions::default());
        match r2.verdict {
            Verdict::Falsified(t) => {
                assert_eq!(t.len(), 2);
                assert!(t.inputs[0][0], "input must be driven high in cycle 0");
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn tiny_budget_resources_out_on_wide_counter() {
        // A 24-bit counter needs 2^24-1 steps to reach all-ones: both BMC
        // (depth 4) and the BDD engine (64 iterations) run out.
        let g = counter_aig(24, (1 << 24) - 1);
        let r = check(&g, &CheckOptions::tiny_budget());
        assert!(matches!(r.verdict, Verdict::ResourceOut { .. }), "{r:?}");
    }

    #[test]
    fn engines_agree_on_verdicts() {
        for bad_at in [0u64, 3, 7, 12] {
            let g = counter_aig(4, bad_at);
            let sat = check(&g, &CheckOptions { sat_only: true, ..Default::default() });
            let bdd = check(&g, &CheckOptions { bdd_only: true, ..Default::default() });
            match (&sat.verdict, &bdd.verdict) {
                (Verdict::Falsified(a), Verdict::Falsified(b)) => {
                    assert_eq!(a.len(), b.len(), "cex depth must agree at bad_at={bad_at}");
                }
                (a, b) => panic!("disagreement at bad_at={bad_at}: {a:?} vs {b:?}"),
            }
        }
    }

    /// Regression: `check()` used to overwrite `coi_latches`/`coi_ands`
    /// per bad (last checked wins) and left `engines_tried` entries
    /// unattributed, so a multi-bad property's stats described whichever
    /// bad happened to be checked last. The fix records per-bad COI
    /// sizes, max-aggregates the summary, and prefixes engine entries
    /// with the bad name.
    #[test]
    fn multi_bad_stats_are_attributed_per_bad() {
        // Bad 0: a 3-latch false shift register (3-latch cone, proved).
        // Bad 1: a single stuck latch (1-latch cone, proved).
        let mut g = Aig::new();
        let (a0, q0) = g.latch("a0", false);
        g.set_next(a0, q0); // stuck false
        let (a1, q1) = g.latch("a1", false);
        g.set_next(a1, q0);
        let (a2, q2) = g.latch("a2", false);
        g.set_next(a2, q1);
        g.add_bad("chain_high", q2);
        let (s, qs) = g.latch("stuck", false);
        g.set_next(s, qs);
        g.add_bad("stuck_high", qs);
        let r = check(&g, &CheckOptions::default());
        assert!(matches!(r.verdict, Verdict::Proved { .. }), "{:?}", r.verdict);
        // Per-bad COI breakdown, in check order.
        assert_eq!(r.stats.per_bad_coi.len(), 2);
        assert_eq!(r.stats.per_bad_coi[0].bad, "chain_high");
        assert_eq!(r.stats.per_bad_coi[0].latches, 3);
        assert_eq!(r.stats.per_bad_coi[1].bad, "stuck_high");
        assert_eq!(r.stats.per_bad_coi[1].latches, 1);
        // Summary is the max over bads — the old code reported the last
        // checked bad's 1-latch cone here.
        assert_eq!(r.stats.coi_latches, 3);
        // Engine attempts are attributed to their bad — both in the
        // typed event log and in its legacy rendering.
        assert!(!r.stats.events.is_empty());
        for ev in &r.stats.events {
            assert!(
                ev.bad == "chain_high" || ev.bad == "stuck_high",
                "unattributed engine event: {ev:?}"
            );
        }
        let rendered = r.stats.engines_tried();
        for e in &rendered {
            assert!(
                e.starts_with("chain_high/") || e.starts_with("stuck_high/"),
                "unattributed engine entry: {e}"
            );
        }
        assert!(rendered.iter().any(|e| e.starts_with("chain_high/")));
        assert!(rendered.iter().any(|e| e.starts_with("stuck_high/")));
    }

    #[test]
    fn multi_bad_check_reports_first_failure() {
        let mut g = counter_aig(3, 7);
        // Add a second, unreachable bad: count 7 with bit pattern... use a
        // stuck latch.
        let (l, q) = g.latch("never", false);
        g.set_next(l, q);
        g.add_bad("never_high", q);
        let r = check(&g, &CheckOptions::default());
        match r.verdict {
            Verdict::Falsified(t) => assert_eq!(t.bad_index, 0),
            other => panic!("expected falsification, got {other:?}"),
        }
    }
}
