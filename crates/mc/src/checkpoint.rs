//! Resumable engine state: what a suspended engine hands the scheduler
//! so a later [`crate::Portfolio::resume`] can continue the run.
//!
//! The SAT engines checkpoint a cursor (their solver state is rebuilt
//! deterministically on resume); the BDD engines serialize their
//! reached/frontier sets through [`veridic_bdd::transfer`]'s
//! level-ordered export — the checkpoint owns no manager references, is
//! `Send`, and imports into a *fresh* manager, so a killed reachability
//! run resumes mid-fixpoint with an identical verdict, falsification
//! depth and completed-round count.

use veridic_bdd::transfer::{DeltaBdd, ExportedBdd};

/// Mid-fixpoint state of a BDD reachability engine (monolithic or
/// partitioned): per-window reached and frontier sets at the end of a
/// completed round, in the transfer layer's manager-independent format.
///
/// The monolithic engine has exactly one window; the POBDD engine one
/// entry per window cube, indexed like its window list (which is
/// deterministically re-derived from the AIG on resume).
///
/// The frontier is a subset of the reached set by construction (it is
/// the states first reached in the last completed round), so its cone
/// heavily overlaps the reached cone — each window's frontier is
/// therefore stored as a [`DeltaBdd`] against the *same window's*
/// `reached` export, shipping only the handful of nodes the frontier
/// adds. Resume rebuilds it with
/// [`veridic_bdd::transfer::import_delta`] over the paired baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct ReachCheckpoint {
    /// Completed reachability rounds at suspension (the next round to
    /// run is `depth + 1`).
    pub depth: usize,
    /// Per-window reached sets.
    pub reached: Vec<ExportedBdd>,
    /// Per-window frontiers, delta-encoded against the same window's
    /// `reached` export.
    pub frontier: Vec<DeltaBdd>,
    /// The window-variable count the partition was built with (0 for
    /// the monolithic engine); resume re-derives the same windows and
    /// verifies the count matches.
    pub window_vars: u32,
}

/// A suspended engine's resumable state.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineCheckpoint {
    /// BMC: the next unrolling depth to query. Frames below it are
    /// re-encoded on resume (deterministic) but not re-queried.
    Bmc {
        /// First depth the resumed run will query.
        next_depth: usize,
    },
    /// k-induction: the next k to attempt.
    Induction {
        /// First induction depth the resumed run will attempt.
        next_k: usize,
    },
    /// A BDD reachability fixpoint (monolithic or partitioned).
    Reach(ReachCheckpoint),
}

impl ReachCheckpoint {
    /// Total nodes shipped by the per-window frontier deltas — a cheap
    /// proxy for how much *new* state the last completed round found.
    /// The adaptive campaign scheduler reads this between slices: a
    /// reachability engine whose frontier deltas keep growing is still
    /// discovering states and earns budget; one whose deltas collapse
    /// toward zero is converging (or saturating) on its own.
    pub fn frontier_nodes(&self) -> usize {
        self.frontier.iter().map(DeltaBdd::delta_node_count).sum()
    }
}

impl EngineCheckpoint {
    /// The completed reachability depth, if this is a BDD checkpoint.
    pub fn reach_depth(&self) -> Option<usize> {
        match self {
            EngineCheckpoint::Reach(r) => Some(r.depth),
            _ => None,
        }
    }

    /// A scalar progress cursor, comparable between two checkpoints of
    /// the **same** engine: BMC's next query depth, induction's next k,
    /// reachability's completed round count. The adaptive scheduler
    /// budgets by the per-slice *delta* of this value — an engine whose
    /// cursor advanced last slice is making progress; one that merely
    /// burned its slice without moving is starving productive lanes.
    pub fn progress(&self) -> u64 {
        match self {
            EngineCheckpoint::Bmc { next_depth } => *next_depth as u64,
            EngineCheckpoint::Induction { next_k } => *next_k as u64,
            EngineCheckpoint::Reach(r) => r.depth as u64,
        }
    }
}
