//! Cycle-accurate AIG simulation.
//!
//! Used to replay counterexample traces from the model checkers (every
//! trace is re-simulated before being reported — a falsified property is
//! never reported on the checker's word alone) and to cross-check the
//! word-level simulator in `veridic-sim` against the bit-blasted netlist.

use crate::{Aig, LatchId, Lit, Node, Var};

/// Mutable simulation state: one bit per latch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimState {
    latch_values: Vec<bool>,
}

impl SimState {
    /// Initial state: every latch at its declared init value.
    pub fn initial(aig: &Aig) -> Self {
        SimState { latch_values: aig.latches().iter().map(|l| l.init).collect() }
    }

    /// Reads a latch value.
    pub fn latch(&self, id: LatchId) -> bool {
        self.latch_values[id.0 as usize]
    }

    /// Overwrites a latch value (used to seed states during induction
    /// counterexample replay).
    pub fn set_latch(&mut self, id: LatchId, v: bool) {
        self.latch_values[id.0 as usize] = v;
    }

    /// Evaluates one clock cycle: computes all node values under `inputs`
    /// (indexed like [`Aig::inputs`]) and advances every latch.
    ///
    /// Returns the node values of the *current* cycle, for probing
    /// outputs/bads/constraints before the state advanced.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the AIG's input count.
    pub fn step(&mut self, aig: &Aig, inputs: &[bool]) -> CycleValues {
        assert_eq!(inputs.len(), aig.num_inputs(), "input vector length mismatch");
        let mut values = vec![false; aig.num_nodes()];
        for i in 0..aig.num_nodes() {
            let v = Var(i as u32);
            values[i] = match aig.node_kind(v) {
                Node::Const0 => false,
                Node::Input { index } => inputs[*index as usize],
                Node::Latch { index } => self.latch_values[*index as usize],
                Node::And { a, b } => {
                    let va = values[a.var().0 as usize] ^ a.is_compl();
                    let vb = values[b.var().0 as usize] ^ b.is_compl();
                    va && vb
                }
            };
        }
        let cycle = CycleValues { values };
        for (i, l) in aig.latches().iter().enumerate() {
            self.latch_values[i] = cycle.lit(l.next);
        }
        cycle
    }
}

/// All node values for one simulated cycle.
#[derive(Clone, Debug)]
pub struct CycleValues {
    values: Vec<bool>,
}

impl CycleValues {
    /// Value of a literal in this cycle.
    pub fn lit(&self, l: Lit) -> bool {
        self.values[l.var().0 as usize] ^ l.is_compl()
    }
}

impl Aig {
    /// Runs a bounded simulation from the initial state, returning for each
    /// cycle the values of all bads and whether all constraints held.
    ///
    /// `input_seq[k]` supplies the primary input values for cycle `k`.
    pub fn simulate(&self, input_seq: &[Vec<bool>]) -> Vec<CycleReport> {
        let mut st = SimState::initial(self);
        let mut out = Vec::with_capacity(input_seq.len());
        for inputs in input_seq {
            let cyc = st.step(self, inputs);
            out.push(CycleReport {
                bads: self.bads().iter().map(|b| cyc.lit(b.lit)).collect(),
                constraints_ok: self.constraints().iter().all(|c| cyc.lit(c.lit)),
                outputs: self.outputs().iter().map(|o| cyc.lit(o.lit)).collect(),
            });
        }
        out
    }
}

/// Summary of one simulated cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleReport {
    /// Value of each registered bad literal this cycle.
    pub bads: Vec<bool>,
    /// True if every invariant constraint held this cycle.
    pub constraints_ok: bool,
    /// Value of each registered output this cycle.
    pub outputs: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    /// A 2-bit counter built from latches; wraps at 4.
    fn counter() -> (Aig, Lit, Lit) {
        let mut g = Aig::new();
        let (l0, q0) = g.latch("b0", false);
        let (l1, q1) = g.latch("b1", false);
        g.set_next(l0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_next(l1, n1);
        (g, q0, q1)
    }

    #[test]
    fn counter_counts() {
        let (g, q0, q1) = counter();
        let mut st = SimState::initial(&g);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let cyc = st.step(&g, &[]);
            let v = (cyc.lit(q1) as u8) << 1 | cyc.lit(q0) as u8;
            seen.push(v);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn bads_and_constraints_reported() {
        let (mut g, q0, q1) = counter();
        let full = g.and(q0, q1);
        g.add_bad("count_is_3", full);
        let two = g.and(!q0, q1);
        g.add_constraint("not_two", !two);
        let reports = g.simulate(&vec![vec![]; 4]);
        assert_eq!(reports[0].bads, vec![false]);
        assert_eq!(reports[3].bads, vec![true]);
        assert!(reports[1].constraints_ok);
        assert!(!reports[2].constraints_ok); // count==2 violates constraint
    }

    #[test]
    fn inputs_drive_logic() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (lid, q) = g.latch("q", false);
        g.set_next(lid, a);
        g.add_output("q", q);
        let rep = g.simulate(&[vec![true], vec![false], vec![false]]);
        // q lags a by one cycle.
        assert_eq!(rep[0].outputs, vec![false]);
        assert_eq!(rep[1].outputs, vec![true]);
        assert_eq!(rep[2].outputs, vec![false]);
    }

    #[test]
    fn set_latch_seeds_state() {
        let (g, q0, _q1) = counter();
        let mut st = SimState::initial(&g);
        st.set_latch(LatchId(0), true);
        assert!(st.latch(LatchId(0)));
        let cyc = st.step(&g, &[]);
        assert!(cyc.lit(q0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_arity_panics() {
        let mut g = Aig::new();
        let _a = g.input("a");
        let mut st = SimState::initial(&g);
        st.step(&g, &[]);
    }
}
