//! Structural static analysis: the latch dependency graph, its SCC
//! condensation, FORCE-style static variable orders, and affinity
//! clustering.
//!
//! Everything structural the engines used to compute ad hoc — cone
//! supports for window splitting, corn assignment, order quality — is
//! derived here once per property cone, before any BDD node exists.
//! The paper's partitioning argument is structural ("split where the
//! design splits"), and the PR 7 dynamic-reordering experiment showed
//! that order quality must be decided *before* the image blows up:
//! this module is the positive-case complement.
//!
//! * [`LatchGraph`] — latch → latches-in-next-state-support dependency
//!   edges, with primary-input support tracked separately.
//! * [`Condensation`] — Tarjan SCC condensation of the latch graph with
//!   topological ranks and weakly-connected components. Feeds the
//!   rank-unreachable lint and gives affinity clustering its atomic
//!   units.
//! * [`force_order`] — an iterative center-of-gravity span minimization
//!   (FORCE, Aloul et al.) over the AND/next-state hyperedges, returning
//!   a static latch/input slot order. `veridic-mc` translates it into a
//!   BDD variable order and seeds both BDD engines' managers with it
//!   before the first image (`CheckOptions::static_order`).
//! * [`affinity_clusters`] / [`latch_affinity_clusters`] — agglomerative
//!   merge over shared-support Jaccard similarity, SCCs as atomic
//!   units: the generalization of the POBDD window partitioner and the
//!   partition layer's corn assignment.
//!
//! Determinism contract: every function here is a pure function of the
//! AIG's construction order. No hashing iteration, no randomness, no
//! wall clock — the same AIG always produces the same graph, order and
//! clusters, which is what lets `static_order` claim worker-count
//! invariance downstream.

use crate::{Aig, LatchId, Node, Var};

/// A slot in the structural vertex space: latches first (by
/// [`LatchId`]), then primary inputs (by input index). This is the
/// vertex id used by [`force_order`] and the support sets of
/// [`latch_affinity_clusters`].
pub type Slot = u32;

/// The latch dependency graph of an AIG.
///
/// There is an edge `i → j` when latch `j` appears in the structural
/// support of latch `i`'s next-state function — "i depends on j".
/// Primary-input support is tracked per latch but kept out of the
/// latch-to-latch edge set.
#[derive(Clone, Debug)]
pub struct LatchGraph {
    /// `deps[i]`: latches in the next-state support of latch `i`,
    /// sorted ascending, deduplicated.
    deps: Vec<Vec<u32>>,
    /// `input_deps[i]`: input indices in the next-state support of
    /// latch `i`, sorted ascending.
    input_deps: Vec<Vec<u32>>,
}

impl LatchGraph {
    /// Builds the dependency graph from the latch next-state supports.
    pub fn build(aig: &Aig) -> LatchGraph {
        let n = aig.num_latches();
        let mut deps = Vec::with_capacity(n);
        let mut input_deps = Vec::with_capacity(n);
        for latch in aig.latches() {
            let (ins, ls) = aig.support(latch.next);
            deps.push(ls.iter().map(|l| l.0).collect::<Vec<u32>>());
            input_deps.push(
                ins.iter()
                    .filter_map(|v| aig.input_index(*v).map(|i| i as u32))
                    .collect::<Vec<u32>>(),
            );
        }
        LatchGraph { deps, input_deps }
    }

    /// Number of latches (vertices).
    pub fn num_latches(&self) -> usize {
        self.deps.len()
    }

    /// Latches in the next-state support of latch `i`.
    pub fn deps(&self, i: LatchId) -> &[u32] {
        &self.deps[i.0 as usize]
    }

    /// Input indices in the next-state support of latch `i`.
    pub fn input_deps(&self, i: LatchId) -> &[u32] {
        &self.input_deps[i.0 as usize]
    }

    /// Tarjan SCC condensation with topological ranks and weak
    /// components.
    pub fn condense(&self) -> Condensation {
        let n = self.deps.len();
        let sccs = tarjan_sccs(n, |v| &self.deps[v]);
        let mut scc_of = vec![0u32; n];
        for (ci, members) in sccs.iter().enumerate() {
            for &m in members {
                scc_of[m as usize] = ci as u32;
            }
        }
        // Condensed DAG edges: scc of i → scc of each dep, self-loops
        // dropped, sorted and deduplicated.
        let mut scc_deps: Vec<Vec<u32>> = vec![Vec::new(); sccs.len()];
        for (i, ds) in self.deps.iter().enumerate() {
            let from = scc_of[i] as usize;
            for &d in ds {
                let to = scc_of[d as usize];
                if to != from as u32 {
                    scc_deps[from].push(to);
                }
            }
        }
        for e in &mut scc_deps {
            e.sort_unstable();
            e.dedup();
        }
        // Topological rank: longest dependency chain below each SCC.
        // Tarjan emits SCCs in reverse topological order of the
        // condensation (dependencies first), so one pass suffices.
        let mut ranks = vec![0u32; sccs.len()];
        for ci in 0..sccs.len() {
            let r = scc_deps[ci].iter().map(|&d| ranks[d as usize] + 1).max().unwrap_or(0);
            ranks[ci] = r;
        }
        // Weak components over the undirected latch graph (union-find).
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for (i, ds) in self.deps.iter().enumerate() {
            for &d in ds {
                let a = find(&mut parent, i as u32);
                let b = find(&mut parent, d);
                if a != b {
                    parent[a.max(b) as usize] = a.min(b);
                }
            }
        }
        let mut component_of = vec![0u32; n];
        let mut remap: Vec<u32> = Vec::new();
        for (i, slot) in component_of.iter_mut().enumerate() {
            let root = find(&mut parent, i as u32);
            let id = match remap.iter().position(|&r| r == root) {
                Some(p) => p as u32,
                None => {
                    remap.push(root);
                    (remap.len() - 1) as u32
                }
            };
            *slot = id;
        }
        // Input taint: a latch is input-driven when an input appears in
        // its own next support or in a (transitive) dependency's. The
        // closure runs on the condensation in topological order.
        let mut scc_tainted = vec![false; sccs.len()];
        for ci in 0..sccs.len() {
            let direct = sccs[ci].iter().any(|&m| !self.input_deps[m as usize].is_empty());
            let inherited = scc_deps[ci].iter().any(|&d| scc_tainted[d as usize]);
            scc_tainted[ci] = direct || inherited;
        }
        Condensation { scc_of, sccs, scc_deps, ranks, component_of, scc_tainted }
    }
}

/// The SCC condensation of a [`LatchGraph`].
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Latch → SCC index.
    pub scc_of: Vec<u32>,
    /// SCC index → member latches, sorted ascending. SCCs are emitted
    /// in reverse topological order (dependencies before dependents).
    pub sccs: Vec<Vec<u32>>,
    /// Condensed DAG: SCC → the SCCs it depends on (sorted, deduped,
    /// no self loops).
    pub scc_deps: Vec<Vec<u32>>,
    /// Topological rank of each SCC: the longest dependency chain below
    /// it (0 for SCCs depending on nothing outside themselves).
    pub ranks: Vec<u32>,
    /// Latch → weakly-connected component id (ids are dense, assigned
    /// in latch order).
    pub component_of: Vec<u32>,
    /// SCC → true when some latch in it (or in a transitive
    /// dependency) reads a primary input.
    pub scc_tainted: Vec<bool>,
}

impl Condensation {
    /// Latches whose SCC is unreachable from any input-driven logic:
    /// autonomous state no input sequence can influence. Returned in
    /// latch order.
    pub fn input_unreachable_latches(&self) -> Vec<LatchId> {
        let mut out = Vec::new();
        for (i, &scc) in self.scc_of.iter().enumerate() {
            if !self.scc_tainted[scc as usize] {
                out.push(LatchId(i as u32));
            }
        }
        out
    }

    /// Number of weakly-connected components.
    pub fn num_components(&self) -> usize {
        self.component_of.iter().map(|&c| c + 1).max().unwrap_or(0) as usize
    }
}

/// Iterative Tarjan SCC decomposition over vertices `0..n` with
/// `succ(v)` successor edges. SCCs are emitted in reverse topological
/// order of the condensation (dependencies before dependents), each
/// with its members sorted ascending. Shared by the latch-graph
/// condensation here and the netlist boundary's combinational-loop
/// lint (`veridic_netlist::Module::comb_loops`).
pub fn tarjan_sccs<'a, F: Fn(usize) -> &'a [u32]>(n: usize, succ: F) -> Vec<Vec<u32>> {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    let mut next_index = 0u32;
    // Explicit DFS frames: (vertex, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let vi = v as usize;
            if *pos == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let edges = succ(vi);
            if *pos < edges.len() {
                let w = edges[*pos];
                *pos += 1;
                let wi = w as usize;
                if index[wi] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds the SCC"); // lint: allow
                        on_stack[w as usize] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    sccs.push(members);
                }
            }
        }
    }
    sccs
}

/// A FORCE static order over the latch/input slot space.
#[derive(Clone, Debug)]
pub struct ForceOrder {
    /// The slot permutation, best span first: `slots[k]` is the slot
    /// placed at position `k`. Latch `i` is slot `i`; input `j` is slot
    /// `num_latches + j`.
    pub slots: Vec<Slot>,
    /// Total hyperedge span of the natural (construction) order.
    pub span_before: u64,
    /// Total hyperedge span of the returned order.
    pub span_after: u64,
    /// Center-of-gravity iterations performed.
    pub iterations: usize,
}

/// Supports larger than this are dropped from the hyperedge set: span
/// minimization of a near-global edge carries no placement signal and
/// its cost dominates the sweep.
const FORCE_SUPPORT_CAP: usize = 8;

/// Computes a FORCE-style static slot order for `aig`.
///
/// Vertices are the latch and input slots (see [`Slot`]); hyperedges
/// are the capped structural supports of every AND node in the design
/// plus, per latch, its next-state support joined with the latch
/// itself (the transition-relation locality the relational product
/// cares about). Starting from the natural order, each iteration moves
/// every vertex to the average center of gravity of its incident edges
/// and re-sorts; the best total span seen wins. Bounded, deterministic,
/// and always a permutation — [`force_order`] never fails.
pub fn force_order(aig: &Aig) -> ForceOrder {
    let n_latches = aig.num_latches();
    let n_inputs = aig.num_inputs();
    let n_slots = n_latches + n_inputs;
    let slot_of = |aig: &Aig, v: Var| -> Option<Slot> {
        if let Some(id) = aig.latch_id(v) {
            Some(id.0)
        } else {
            aig.input_index(v).map(|i| (n_latches + i) as u32)
        }
    };
    // Capped slot-support per node, bottom-up (creation order is
    // topological). `None` = over the cap.
    let mut supports: Vec<Option<Vec<Slot>>> = Vec::with_capacity(aig.num_nodes());
    let mut edges: Vec<Vec<Slot>> = Vec::new();
    for i in 0..aig.num_nodes() {
        let v = Var(i as u32);
        let sup = match aig.node_kind(v) {
            Node::Const0 => Some(Vec::new()),
            Node::Input { .. } | Node::Latch { .. } => {
                slot_of(aig, v).map(|s| vec![s])
            }
            Node::And { a, b } => {
                let merged = match (&supports[a.var().0 as usize], &supports[b.var().0 as usize]) {
                    (Some(sa), Some(sb)) => {
                        let mut m: Vec<Slot> = sa.iter().chain(sb.iter()).copied().collect();
                        m.sort_unstable();
                        m.dedup();
                        if m.len() > FORCE_SUPPORT_CAP {
                            None
                        } else {
                            Some(m)
                        }
                    }
                    _ => None,
                };
                if let Some(m) = &merged {
                    if m.len() >= 2 {
                        edges.push(m.clone());
                    }
                }
                merged
            }
        };
        supports.push(sup);
    }
    // Per-latch transition edges: next support ∪ the latch itself.
    for (i, latch) in aig.latches().iter().enumerate() {
        if let Some(sup) = &supports[latch.next.var().0 as usize] {
            if sup.len() <= FORCE_SUPPORT_CAP {
                let mut e = sup.clone();
                e.push(i as u32);
                e.sort_unstable();
                e.dedup();
                if e.len() >= 2 {
                    edges.push(e);
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let natural: Vec<Slot> = (0..n_slots as u32).collect();
    if n_slots == 0 || edges.is_empty() {
        return ForceOrder { slots: natural, span_before: 0, span_after: 0, iterations: 0 };
    }
    let span_of = |pos: &[u32]| -> u64 {
        edges
            .iter()
            .map(|e| {
                let lo = e.iter().map(|&s| pos[s as usize]).min().unwrap_or(0);
                let hi = e.iter().map(|&s| pos[s as usize]).max().unwrap_or(0);
                (hi - lo) as u64
            })
            .sum()
    };
    // pos[slot] = current position; order[k] = slot at position k.
    let mut pos: Vec<u32> = (0..n_slots as u32).collect();
    let mut order = natural.clone();
    let span_before = span_of(&pos);
    let mut best_span = span_before;
    let mut best_order = order.clone();
    // Incidence lists, built once.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n_slots];
    for (ei, e) in edges.iter().enumerate() {
        for &s in e {
            incident[s as usize].push(ei as u32);
        }
    }
    let iterations = (2 * (usize::BITS - n_slots.leading_zeros()) as usize + 4).min(32);
    for _ in 0..iterations {
        // Center of gravity of each edge at the current positions.
        let cogs: Vec<f64> = edges
            .iter()
            .map(|e| {
                e.iter().map(|&s| pos[s as usize] as f64).sum::<f64>() / e.len() as f64
            })
            .collect();
        // Each vertex moves to the mean of its incident edges' centers;
        // edge-free vertices keep their position.
        let mut keyed: Vec<(f64, Slot)> = (0..n_slots as u32)
            .map(|s| {
                let inc = &incident[s as usize];
                let key = if inc.is_empty() {
                    pos[s as usize] as f64
                } else {
                    inc.iter().map(|&ei| cogs[ei as usize]).sum::<f64>() / inc.len() as f64
                };
                (key, s)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        order = keyed.iter().map(|&(_, s)| s).collect();
        for (k, &s) in order.iter().enumerate() {
            pos[s as usize] = k as u32;
        }
        let span = span_of(&pos);
        if span < best_span {
            best_span = span;
            best_order = order.clone();
        }
    }
    ForceOrder { slots: best_order, span_before, span_after: best_span, iterations }
}

/// Agglomerative affinity clustering over support sets.
///
/// `supports[i]` is item `i`'s (sorted) support-id set; `atoms` is an
/// initial partition of the item indices into indivisible groups
/// (pass singletons for free clustering, SCCs for the latch graph).
/// Groups are merged pairwise — highest Jaccard similarity of their
/// union supports first, smallest combined size breaking zero-overlap
/// ties, lowest indices breaking the rest — until at most `target`
/// clusters remain. Each returned cluster is the sorted item-index
/// list; clusters are ordered by their smallest member.
pub fn affinity_clusters(
    supports: &[Vec<u32>],
    atoms: &[Vec<usize>],
    target: usize,
) -> Vec<Vec<usize>> {
    let target = target.max(1);
    // Cluster state: member items + union support, None when merged
    // away.
    let mut clusters: Vec<Option<(Vec<usize>, Vec<u32>)>> = atoms
        .iter()
        .map(|members| {
            let mut m = members.clone();
            m.sort_unstable();
            let mut sup: Vec<u32> =
                m.iter().flat_map(|&i| supports[i].iter().copied()).collect();
            sup.sort_unstable();
            sup.dedup();
            Some((m, sup))
        })
        .collect();
    let mut live = clusters.iter().filter(|c| c.is_some()).count();
    while live > target {
        // Scan for the best merge pair. O(k²) per merge; the cluster
        // counts here (windows, corns, SCC groups) are small.
        let mut best: Option<(usize, usize, f64, usize)> = None;
        for i in 0..clusters.len() {
            let Some((mi, si)) = &clusters[i] else { continue };
            for (j, cj) in clusters.iter().enumerate().skip(i + 1) {
                let Some((mj, sj)) = cj else { continue };
                let inter = sorted_intersection_len(si, sj);
                let union = si.len() + sj.len() - inter;
                let jac = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
                let size = mi.len() + mj.len();
                let better = match &best {
                    None => true,
                    Some((_, _, bj, bs)) => {
                        jac > *bj || (jac == *bj && size < *bs)
                    }
                };
                if better {
                    best = Some((i, j, jac, size));
                }
            }
        }
        let Some((i, j, _, _)) = best else { break };
        let (mj, sj) = clusters[j].take().expect("best pair is live"); // lint: allow
        let (mi, si) = clusters[i].as_mut().expect("best pair is live"); // lint: allow
        mi.extend(mj);
        mi.sort_unstable();
        si.extend(sj);
        si.sort_unstable();
        si.dedup();
        live -= 1;
    }
    let mut out: Vec<Vec<usize>> = clusters.into_iter().flatten().map(|(m, _)| m).collect();
    out.sort_by_key(|m| m.first().copied());
    out
}

fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Clusters the latches of `aig` into at most `target` groups by
/// shared next-state support, with the latch graph's SCCs as atomic
/// units (mutually-fed latches never split across clusters). Returns
/// sorted latch-id lists, ordered by smallest member.
pub fn latch_affinity_clusters(aig: &Aig, target: usize) -> Vec<Vec<LatchId>> {
    let graph = LatchGraph::build(aig);
    let cond = graph.condense();
    let n_latches = aig.num_latches();
    // Item supports in slot space: next-state latch deps plus input
    // deps (offset past the latch ids).
    let supports: Vec<Vec<u32>> = (0..n_latches)
        .map(|i| {
            let id = LatchId(i as u32);
            let mut s: Vec<u32> = graph.deps(id).to_vec();
            s.extend(graph.input_deps(id).iter().map(|&j| n_latches as u32 + j));
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let atoms: Vec<Vec<usize>> =
        cond.sccs.iter().map(|m| m.iter().map(|&l| l as usize).collect()).collect();
    affinity_clusters(&supports, &atoms, target)
        .into_iter()
        .map(|m| m.into_iter().map(|i| LatchId(i as u32)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    /// Three-stage pipeline a→b→c plus a 2-latch mutual loop {x, y}.
    fn pipeline_and_loop() -> Aig {
        let mut g = Aig::new();
        let i = g.input("i");
        let (a, qa) = g.latch("a", false);
        let (b, qb) = g.latch("b", false);
        let (c, _qc) = g.latch("c", false);
        g.set_next(a, i);
        g.set_next(b, qa);
        g.set_next(c, qb);
        let (x, qx) = g.latch("x", false);
        let (y, qy) = g.latch("y", true);
        g.set_next(x, qy);
        g.set_next(y, !qx);
        g
    }

    #[test]
    fn latch_graph_edges_follow_supports() {
        let g = pipeline_and_loop();
        let lg = LatchGraph::build(&g);
        assert_eq!(lg.num_latches(), 5);
        assert_eq!(lg.deps(LatchId(0)), &[] as &[u32]);
        assert_eq!(lg.input_deps(LatchId(0)), &[0]);
        assert_eq!(lg.deps(LatchId(1)), &[0]);
        assert_eq!(lg.deps(LatchId(2)), &[1]);
        assert_eq!(lg.deps(LatchId(3)), &[4]);
        assert_eq!(lg.deps(LatchId(4)), &[3]);
    }

    #[test]
    fn condensation_finds_sccs_ranks_and_components() {
        let g = pipeline_and_loop();
        let cond = LatchGraph::build(&g).condense();
        // Four SCCs: {a}, {b}, {c}, {x,y}.
        assert_eq!(cond.sccs.len(), 4);
        let xy = cond.scc_of[3];
        assert_eq!(cond.scc_of[4], xy, "the mutual loop is one SCC");
        assert_eq!(cond.sccs[xy as usize], vec![3, 4]);
        // Ranks along the pipeline: a=0, b=1, c=2; the loop is rank 0.
        let rank_of = |l: usize| cond.ranks[cond.scc_of[l] as usize];
        assert_eq!(rank_of(0), 0);
        assert_eq!(rank_of(1), 1);
        assert_eq!(rank_of(2), 2);
        assert_eq!(rank_of(3), 0);
        // Two weak components: the pipeline and the loop.
        assert_eq!(cond.num_components(), 2);
        assert_eq!(cond.component_of[0], cond.component_of[2]);
        assert_ne!(cond.component_of[0], cond.component_of[3]);
        // The pipeline is input-driven; the loop is autonomous.
        let unreachable = cond.input_unreachable_latches();
        assert_eq!(unreachable, vec![LatchId(3), LatchId(4)]);
    }

    #[test]
    fn tarjan_matches_brute_force_on_a_dense_graph() {
        // A hand-built graph with nested cycles: 0→1→2→0, 2→3, 3→4,
        // 4→3, 5 isolated.
        let edges: Vec<Vec<u32>> =
            vec![vec![1], vec![2], vec![0, 3], vec![4], vec![3], vec![]];
        let sccs = tarjan_sccs(6, |v| &edges[v]);
        let mut sets: Vec<Vec<u32>> = sccs.clone();
        sets.sort();
        assert!(sets.contains(&vec![0, 1, 2]));
        assert!(sets.contains(&vec![3, 4]));
        assert!(sets.contains(&vec![5]));
        // Reverse-topological emission: {3,4} (a dependency of {0,1,2}
        // via 2→3? No: 2→3 means {0,1,2} depends on {3,4}) first.
        let pos =
            |s: &Vec<u32>| sccs.iter().position(|x| x == s).expect("scc present"); // lint: allow
        assert!(pos(&vec![3, 4]) < pos(&vec![0, 1, 2]), "dependencies emit first");
    }

    #[test]
    fn force_order_is_a_permutation_and_never_worse() {
        let g = pipeline_and_loop();
        let fo = force_order(&g);
        let mut sorted = fo.slots.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..(g.num_latches() + g.num_inputs()) as u32).collect();
        assert_eq!(sorted, expect, "the order must be a slot permutation");
        assert!(fo.span_after <= fo.span_before);
    }

    #[test]
    fn force_order_interleaves_paired_registers() {
        // Two banks a[0..n], b[0..n] with bad-cone pairs (a_i, b_i):
        // the natural (blocked) order has span Θ(n) per pair edge; FORCE
        // must pull each pair together.
        let mut g = Aig::new();
        let n = 8u32;
        let ins: Vec<Lit> = (0..n).map(|i| g.input(format!("i{i}"))).collect();
        let avars: Vec<(LatchId, Lit)> =
            (0..n).map(|i| g.latch(format!("a{i}"), false)).collect();
        let bvars: Vec<(LatchId, Lit)> =
            (0..n).map(|i| g.latch(format!("b{i}"), false)).collect();
        for i in 0..n as usize {
            g.set_next(avars[i].0, ins[i]);
            g.set_next(bvars[i].0, ins[i]);
        }
        let diffs: Vec<Lit> = (0..n as usize)
            .map(|i| g.xor(avars[i].1, bvars[i].1))
            .collect();
        let bad = g.or_many(diffs);
        g.add_bad("mismatch", bad);
        let fo = force_order(&g);
        assert!(
            fo.span_after < fo.span_before / 2,
            "FORCE must at least halve the blocked-order span \
             ({} -> {})",
            fo.span_before,
            fo.span_after
        );
        // Every pair (a_i, b_i) ends up close: within a quarter of the
        // slot space, where naturally they start exactly n apart.
        let mut pos = vec![0usize; fo.slots.len()];
        for (k, &s) in fo.slots.iter().enumerate() {
            pos[s as usize] = k;
        }
        for i in 0..n as usize {
            let d = pos[i].abs_diff(pos[n as usize + i]);
            assert!(d <= fo.slots.len() / 4, "pair {i} spread {d}");
        }
    }

    #[test]
    fn force_order_on_empty_and_edge_free_designs() {
        let fo = force_order(&Aig::new());
        assert!(fo.slots.is_empty());
        let mut g = Aig::new();
        g.input("a");
        g.input("b");
        let fo = force_order(&g);
        assert_eq!(fo.slots, vec![0, 1], "edge-free slots keep the natural order");
    }

    #[test]
    fn affinity_clusters_merge_by_jaccard_and_respect_atoms() {
        // Items 0,1 share support {1,2}; item 2 is disjoint; atoms keep
        // 2 and 3 together.
        let supports = vec![vec![1, 2], vec![1, 2], vec![9], vec![8]];
        let atoms = vec![vec![0], vec![1], vec![2, 3]];
        let clusters = affinity_clusters(&supports, &atoms, 2);
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
        // target=1 merges everything.
        let all = affinity_clusters(&supports, &atoms, 1);
        assert_eq!(all, vec![vec![0, 1, 2, 3]]);
        // target beyond the atom count is a no-op partition.
        let none = affinity_clusters(&supports, &atoms, 5);
        assert_eq!(none.len(), 3);
    }

    #[test]
    fn latch_affinity_keeps_sccs_atomic_and_groups_shared_support() {
        let g = pipeline_and_loop();
        let clusters = latch_affinity_clusters(&g, 2);
        assert_eq!(clusters.iter().map(|c| c.len()).sum::<usize>(), 5);
        // The {x, y} loop never splits.
        let loop_cluster = clusters
            .iter()
            .find(|c| c.contains(&LatchId(3)))
            .expect("x is somewhere"); // lint: allow
        assert!(loop_cluster.contains(&LatchId(4)), "SCC must stay atomic");
        // Every latch appears exactly once.
        let mut all: Vec<u32> = clusters.iter().flatten().map(|l| l.0).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
