//! # veridic-aig
//!
//! And-Inverter Graphs: the bit-level representation shared by every formal
//! engine in `veridic` (BDD reachability, POBDD, SAT-based BMC and
//! k-induction) and by counterexample replay.
//!
//! An [`Aig`] is a synchronous sequential circuit: primary inputs, latches
//! (with binary initial values), two-input AND nodes with optional inverters
//! on every edge, plus named *outputs*, *bad* markers (safety property
//! failures) and *invariant constraints* (environment assumptions).
//!
//! ```
//! use veridic_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let y = aig.xor(a, b);
//! aig.add_output("y", y);
//! assert_eq!(aig.num_ands(), 3); // xor = 3 ANDs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod coi;
pub mod hash;
mod sim;
pub mod structure;

pub use coi::CoiResult;
pub use sim::{CycleReport, CycleValues, SimState};

use crate::hash::FxHashMap;
use std::fmt;

/// A literal: a node variable with an optional inversion.
///
/// The LSB is the complement flag; `Lit::FALSE` is variable 0
/// uncomplemented and `Lit::TRUE` is its complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a variable index and sign.
    pub fn new(var: Var, complement: bool) -> Lit {
        Lit(var.0 << 1 | complement as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is complemented.
    pub fn is_compl(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if this is one of the two constants.
    pub fn is_const(self) -> bool {
        self.var().0 == 0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            write!(f, "0")
        } else if *self == Lit::TRUE {
            write!(f, "1")
        } else {
            write!(f, "{}v{}", if self.is_compl() { "!" } else { "" }, self.var().0)
        }
    }
}

/// A node variable index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a latch within an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LatchId(pub u32);

/// The defining record of an AIG node.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Node {
    /// Variable 0: constant false.
    Const0,
    /// Primary input.
    Input { index: u32 },
    /// Latch output.
    Latch { index: u32 },
    /// Two-input AND.
    And { a: Lit, b: Lit },
}

/// A latch: a single state bit with a next-state literal and initial value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Latch {
    /// The variable representing the latch's current-state output.
    pub var: Var,
    /// Next-state function; [`Lit::FALSE`] until set.
    pub next: Lit,
    /// Initial (reset) value.
    pub init: bool,
    /// Diagnostic name.
    pub name: String,
}

/// A named single-bit property or output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedLit {
    /// Human-readable name (RTL path for checkpoints).
    pub name: String,
    /// The literal.
    pub lit: Lit,
}

/// An And-Inverter Graph with latches, inputs, outputs, bads and
/// constraints.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<(Var, String)>,
    latches: Vec<Latch>,
    outputs: Vec<NamedLit>,
    bads: Vec<NamedLit>,
    constraints: Vec<NamedLit>,
    strash: FxHashMap<(Lit, Lit), Var>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const0],
            inputs: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
            bads: Vec::new(),
            constraints: Vec::new(),
            strash: FxHashMap::default(),
        }
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn input(&mut self, name: impl Into<String>) -> Lit {
        let var = Var(self.nodes.len() as u32);
        self.nodes.push(Node::Input { index: self.inputs.len() as u32 });
        self.inputs.push((var, name.into()));
        Lit::new(var, false)
    }

    /// Adds a latch with the given initial value; its next-state function
    /// starts as constant false and must be set with [`Aig::set_next`].
    pub fn latch(&mut self, name: impl Into<String>, init: bool) -> (LatchId, Lit) {
        let var = Var(self.nodes.len() as u32);
        self.nodes.push(Node::Latch { index: self.latches.len() as u32 });
        let id = LatchId(self.latches.len() as u32);
        self.latches.push(Latch { var, next: Lit::FALSE, init, name: name.into() });
        (id, Lit::new(var, false))
    }

    /// Sets the next-state function of a latch.
    pub fn set_next(&mut self, latch: LatchId, next: Lit) {
        self.latches[latch.0 as usize].next = next;
    }

    /// Creates (or reuses) an AND node. Applies constant folding,
    /// idempotence and complement rules, and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Normalise operand order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(&v) = self.strash.get(&(a, b)) {
            return Lit::new(v, false);
        }
        let var = Var(self.nodes.len() as u32);
        self.nodes.push(Node::And { a, b });
        self.strash.insert((a, b), var);
        Lit::new(var, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR as three ANDs.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// XNOR (equivalence).
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// 2:1 multiplexer `c ? t : e`.
    pub fn mux(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        let n1 = self.and(c, t);
        let n2 = self.and(!c, e);
        self.or(n1, n2)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Conjunction of many literals (true for empty input).
    pub fn and_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut acc = Lit::TRUE;
        for l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction of many literals (false for empty input).
    pub fn or_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut acc = Lit::FALSE;
        for l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Registers a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push(NamedLit { name: name.into(), lit });
    }

    /// Registers a *bad* literal: the safety property is `never bad`.
    pub fn add_bad(&mut self, name: impl Into<String>, lit: Lit) {
        self.bads.push(NamedLit { name: name.into(), lit });
    }

    /// Registers an invariant constraint: only paths on which every
    /// constraint holds in every cycle are considered.
    pub fn add_constraint(&mut self, name: impl Into<String>, lit: Lit) {
        self.constraints.push(NamedLit { name: name.into(), lit });
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len() - self.latches.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of nodes of any kind including the constant.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// A stable 64-bit structural fingerprint of the whole design:
    /// FNV-1a over the node table (inputs, latch next/init functions,
    /// AND fanins) and every named output/bad/constraint literal,
    /// in creation order.
    ///
    /// Two [`Aig`]s built by replaying the same construction calls hash
    /// identically across processes and runs (no pointer or
    /// hash-map-iteration input), which is what persistent checkpoint
    /// headers bind to: a checkpoint written against one design must
    /// refuse to resume against another.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut byte = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        let word = |w: u64, byte: &mut dyn FnMut(u8)| {
            for b in w.to_le_bytes() {
                byte(b);
            }
        };
        let lit = |l: Lit, byte: &mut dyn FnMut(u8)| {
            word(u64::from(l.var().0) << 1 | u64::from(l.is_compl()), byte);
        };
        let named = |tag: u8, items: &[NamedLit], byte: &mut dyn FnMut(u8)| {
            byte(tag);
            word(items.len() as u64, byte);
            for n in items {
                word(n.name.len() as u64, byte);
                for b in n.name.as_bytes() {
                    byte(*b);
                }
                lit(n.lit, byte);
            }
        };
        byte(b'A');
        word(self.inputs.len() as u64, &mut byte);
        for (var, name) in &self.inputs {
            word(u64::from(var.0), &mut byte);
            word(name.len() as u64, &mut byte);
            for b in name.as_bytes() {
                byte(*b);
            }
        }
        word(self.latches.len() as u64, &mut byte);
        for l in &self.latches {
            word(u64::from(l.var.0), &mut byte);
            lit(l.next, &mut byte);
            byte(l.init as u8);
            word(l.name.len() as u64, &mut byte);
            for b in l.name.as_bytes() {
                byte(*b);
            }
        }
        word(self.num_ands() as u64, &mut byte);
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::And { a, b } = n {
                word(i as u64, &mut byte);
                lit(*a, &mut byte);
                lit(*b, &mut byte);
            }
        }
        named(b'o', &self.outputs, &mut byte);
        named(b'b', &self.bads, &mut byte);
        named(b'c', &self.constraints, &mut byte);
        h
    }

    /// The latches, in creation order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The latch with the given id.
    pub fn latch_info(&self, id: LatchId) -> &Latch {
        &self.latches[id.0 as usize]
    }

    /// The primary inputs `(var, name)`, in creation order.
    pub fn inputs(&self) -> &[(Var, String)] {
        &self.inputs
    }

    /// Registered outputs.
    pub fn outputs(&self) -> &[NamedLit] {
        &self.outputs
    }

    /// Registered bad (property failure) literals.
    pub fn bads(&self) -> &[NamedLit] {
        &self.bads
    }

    /// Registered invariant constraints.
    pub fn constraints(&self) -> &[NamedLit] {
        &self.constraints
    }

    /// If `var` is an AND node, returns its fanins.
    pub fn and_fanins(&self, var: Var) -> Option<(Lit, Lit)> {
        match self.nodes[var.0 as usize] {
            Node::And { a, b } => Some((a, b)),
            _ => None,
        }
    }

    /// True if `var` is a primary input.
    pub fn is_input(&self, var: Var) -> bool {
        matches!(self.nodes[var.0 as usize], Node::Input { .. })
    }

    /// If `var` is an input, returns its index in [`Aig::inputs`].
    pub fn input_index(&self, var: Var) -> Option<usize> {
        match self.nodes[var.0 as usize] {
            Node::Input { index } => Some(index as usize),
            _ => None,
        }
    }

    /// If `var` is a latch output, returns its [`LatchId`].
    pub fn latch_id(&self, var: Var) -> Option<LatchId> {
        match self.nodes[var.0 as usize] {
            Node::Latch { index } => Some(LatchId(index)),
            _ => None,
        }
    }

    /// Collects the structural support (inputs and latches) of a literal.
    pub fn support(&self, root: Lit) -> (Vec<Var>, Vec<LatchId>) {
        let mut seen = vec![false; self.nodes.len()];
        let mut inputs = Vec::new();
        let mut latches = Vec::new();
        let mut stack = vec![root.var()];
        while let Some(v) = stack.pop() {
            if seen[v.0 as usize] {
                continue;
            }
            seen[v.0 as usize] = true;
            match &self.nodes[v.0 as usize] {
                Node::Const0 => {}
                Node::Input { .. } => inputs.push(v),
                Node::Latch { index } => latches.push(LatchId(*index)),
                Node::And { a, b } => {
                    stack.push(a.var());
                    stack.push(b.var());
                }
            }
        }
        inputs.sort();
        latches.sort();
        (inputs, latches)
    }

    /// Evaluates a literal combinationally given values for inputs and
    /// latch outputs.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is queried for a variable that is neither an input
    /// nor a latch and the cone contains unevaluated nodes (cannot happen
    /// for well-formed AIGs).
    pub fn eval_comb(&self, root: Lit, leaf: &dyn Fn(Var) -> bool) -> bool {
        let mut values: FxHashMap<Var, bool> = FxHashMap::default();
        let v = self.eval_var(root.var(), leaf, &mut values);
        v ^ root.is_compl()
    }

    fn eval_var(&self, var: Var, leaf: &dyn Fn(Var) -> bool, memo: &mut FxHashMap<Var, bool>) -> bool {
        if let Some(&v) = memo.get(&var) {
            return v;
        }
        let v = match self.nodes[var.0 as usize] {
            Node::Const0 => false,
            Node::Input { .. } | Node::Latch { .. } => leaf(var),
            Node::And { a, b } => {
                let va = self.eval_var(a.var(), leaf, memo) ^ a.is_compl();
                let vb = self.eval_var(b.var(), leaf, memo) ^ b.is_compl();
                va && vb
            }
        };
        memo.insert(var, v);
        v
    }

    /// Topological order of AND variables (fanins before fanouts). Node
    /// creation order is already topological, so this is the AND subset in
    /// index order.
    pub fn and_order(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.nodes.len() as u32)
            .map(Var)
            .filter(|v| matches!(self.nodes[v.0 as usize], Node::And { .. }))
    }

    pub(crate) fn node_kind(&self, var: Var) -> &Node {
        &self.nodes[var.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = Lit::new(Var(5), true);
        assert_eq!(l.var(), Var(5));
        assert!(l.is_compl());
        assert_eq!(!l, Lit::new(Var(5), false));
        assert_eq!(!Lit::TRUE, Lit::FALSE);
    }

    #[test]
    fn and_constant_folding() {
        let mut g = Aig::new();
        let a = g.input("a");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn strashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_xnor_mux_truth_tables() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.xor(a, b);
        let nx = g.xnor(a, b);
        assert_eq!(x, !nx);
        let m = g.mux(a, b, !b);
        for av in [false, true] {
            for bv in [false, true] {
                let leaf = |v: Var| if v == a.var() { av } else { bv };
                assert_eq!(g.eval_comb(x, &leaf), av ^ bv);
                assert_eq!(g.eval_comb(m, &leaf), if av { bv } else { !bv });
            }
        }
    }

    #[test]
    fn implies_truth_table() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let i = g.implies(a, b);
        for av in [false, true] {
            for bv in [false, true] {
                let leaf = |v: Var| if v == a.var() { av } else { bv };
                assert_eq!(g.eval_comb(i, &leaf), !av || bv);
            }
        }
    }

    #[test]
    fn latch_roundtrip() {
        let mut g = Aig::new();
        let (id, q) = g.latch("state", true);
        g.set_next(id, !q);
        assert_eq!(g.num_latches(), 1);
        assert!(g.latch_info(id).init);
        assert_eq!(g.latch_info(id).next, !q);
        assert_eq!(g.latch_id(q.var()), Some(id));
    }

    #[test]
    fn support_walks_cones() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let _c = g.input("c");
        let (lid, q) = g.latch("q", false);
        let t = g.and(a, b);
        let root = g.and(t, q);
        g.set_next(lid, t);
        let (ins, ls) = g.support(root);
        assert_eq!(ins.len(), 2); // a, b but not c
        assert_eq!(ls, vec![lid]);
    }

    #[test]
    fn and_many_or_many() {
        let mut g = Aig::new();
        let xs: Vec<Lit> = (0..4).map(|i| g.input(format!("x{i}"))).collect();
        let all = g.and_many(xs.iter().copied());
        let any = g.or_many(xs.iter().copied());
        let none: Vec<Lit> = vec![];
        assert_eq!(g.and_many(none.iter().copied()), Lit::TRUE);
        assert_eq!(g.or_many(none.iter().copied()), Lit::FALSE);
        assert!(g.eval_comb(all, &|_| true));
        assert!(g.eval_comb(any, &|_| true));
        let leaf = |v: Var| g.input_index(v) == Some(2);
        assert!(!g.eval_comb(all, &leaf));
        assert!(g.eval_comb(any, &leaf));
    }

    #[test]
    fn counts_are_consistent() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let (_, q) = g.latch("q", false);
        let x = g.and(a, b);
        let _y = g.and(x, q);
        assert_eq!(g.num_inputs(), 2);
        assert_eq!(g.num_latches(), 1);
        assert_eq!(g.num_ands(), 2);
        assert_eq!(g.num_nodes(), 6);
    }
}
