//! Static pre-analysis: ternary constant sweep, sequential constant
//! folding, and a typed design lint report.
//!
//! Industrial flows front-load cheap static checks before any engine
//! runs (Olmos et al., *Can We Start Earlier?*): real RTL arrives full
//! of stuck-at latches, dead cones and vacuous properties, and every
//! one of them burns full engine budget if nobody looks first. This
//! module is that look:
//!
//! * [`ternary_sweep`] runs a 0/1/X constant-propagation fixpoint over
//!   the latch system. Latches start at their reset values, primary
//!   inputs are X, and the next-state functions are evaluated in
//!   ternary until no latch value changes. A latch whose value is still
//!   a constant at the fixpoint is **sequentially stuck**: no input
//!   sequence can ever move it off its reset value.
//! * [`fold_constants`] rebuilds a simplified AIG with the stuck
//!   latches substituted by their constants, dead cones dropped, and a
//!   literal map back to the original. The folding contract: the new
//!   AIG's next-state/bad/constraint functions equal the originals with
//!   the stuck latches fixed — so reachable-state sets (projected onto
//!   the surviving latches), falsification depths and BDD iteration
//!   counts are preserved exactly.
//! * [`analyze`] emits a [`DesignReport`] of lint findings: stuck
//!   latches, constant bads (vacuous or trivially-falsified
//!   properties), constant constraints, constant outputs, dead logic
//!   outside every bad cone, and unused inputs.
//!
//! The sweep is a sound over-approximation of the reachable states: a
//! net it calls constant really is constant on every reachable state
//! (the converse does not hold — a net constant for a deep reachability
//! reason evaluates to X here). That one-sidedness is what makes the
//! verdicts drawn from it ([`DesignReport::vacuous_bads`], the
//! portfolio's zero-engine conclusions) safe.

use crate::hash::FxHashMap;
use crate::structure::LatchGraph;
use crate::{Aig, LatchId, Lit, Node, Var};

/// Direct AND-fanin reference count at which an unconstrained input is
/// reported as a fanout hot spot. Absolute, not relative: small clean
/// designs never trip it, while a free input steering half a real
/// netlist — the classic unconstrained-clock-enable mistake — always
/// does.
pub const FANOUT_HOTSPOT_THRESHOLD: usize = 64;

/// A value in the three-valued constant-propagation lattice:
/// `False < X`, `True < X`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Constant 0 on every reachable state.
    False,
    /// Constant 1 on every reachable state.
    True,
    /// Not known to be constant.
    X,
}

impl Ternary {
    /// Lifts a Boolean.
    pub fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::True
        } else {
            Ternary::False
        }
    }

    /// The constant, if this is one.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Ternary::False => Some(false),
            Ternary::True => Some(true),
            Ternary::X => None,
        }
    }

    /// True for [`Ternary::False`] and [`Ternary::True`].
    pub fn is_const(self) -> bool {
        self != Ternary::X
    }

    /// Kleene conjunction: false dominates X.
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::False, _) | (_, Ternary::False) => Ternary::False,
            (Ternary::True, Ternary::True) => Ternary::True,
            _ => Ternary::X,
        }
    }

    /// Lattice join: agreeing values stay, disagreement goes to X.
    pub fn join(self, other: Ternary) -> Ternary {
        if self == other {
            self
        } else {
            Ternary::X
        }
    }
}

impl std::ops::Not for Ternary {
    type Output = Ternary;
    fn not(self) -> Ternary {
        match self {
            Ternary::False => Ternary::True,
            Ternary::True => Ternary::False,
            Ternary::X => Ternary::X,
        }
    }
}

/// The fixpoint of a [`ternary_sweep`]: a ternary value for every node
/// variable, consistent with the final latch values.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Final value of each node variable, indexed by [`Var`].
    values: Vec<Ternary>,
    /// Final value of each latch, indexed by [`LatchId`].
    latch_values: Vec<Ternary>,
    /// Fixpoint rounds taken (each latch can only move constant → X
    /// once, so this is at most `num_latches + 1`).
    pub rounds: usize,
}

impl SweepResult {
    /// The sweep value of a variable.
    pub fn var_value(&self, var: Var) -> Ternary {
        self.values[var.0 as usize]
    }

    /// The sweep value of a literal (complement applied).
    pub fn lit_value(&self, lit: Lit) -> Ternary {
        let v = self.var_value(lit.var());
        if lit.is_compl() {
            !v
        } else {
            v
        }
    }

    /// The sweep value of a latch.
    pub fn latch_value(&self, id: LatchId) -> Ternary {
        self.latch_values[id.0 as usize]
    }

    /// Latches still constant at the fixpoint, with their stuck values
    /// (always the reset value), in latch order.
    pub fn stuck_latches(&self) -> impl Iterator<Item = (LatchId, bool)> + '_ {
        self.latch_values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (LatchId(i as u32), b)))
    }

    /// Number of sequentially-stuck latches.
    pub fn stuck_count(&self) -> usize {
        self.latch_values.iter().filter(|v| v.is_const()).count()
    }
}

/// Runs the ternary constant-propagation fixpoint over `aig`'s latch
/// system.
///
/// Every latch starts at its reset constant; inputs are X; the
/// next-state functions are evaluated in ternary and joined into the
/// latch values until nothing changes. Values only move *up* the
/// lattice (constant → X), so the loop terminates in at most
/// `num_latches + 1` rounds, each linear in the AIG.
pub fn ternary_sweep(aig: &Aig) -> SweepResult {
    let n = aig.num_nodes();
    let mut latch_values: Vec<Ternary> =
        aig.latches().iter().map(|l| Ternary::from_bool(l.init)).collect();
    let mut values = vec![Ternary::X; n];
    let mut rounds = 0;
    loop {
        rounds += 1;
        // Node creation order is topological: one pass evaluates all.
        for i in 0..n {
            let v = Var(i as u32);
            values[i] = match aig.node_kind(v) {
                Node::Const0 => Ternary::False,
                Node::Input { .. } => Ternary::X,
                Node::Latch { index } => latch_values[*index as usize],
                Node::And { a, b } => {
                    let va = lit_value_in(&values, *a);
                    let vb = lit_value_in(&values, *b);
                    va.and(vb)
                }
            };
        }
        let mut changed = false;
        for (i, latch) in aig.latches().iter().enumerate() {
            let next = lit_value_in(&values, latch.next);
            let joined = latch_values[i].join(next);
            if joined != latch_values[i] {
                latch_values[i] = joined;
                changed = true;
            }
        }
        if !changed {
            // The last node pass used exactly these latch values, so
            // `values` is already consistent with the fixpoint.
            break;
        }
    }
    SweepResult { values, latch_values, rounds }
}

fn lit_value_in(values: &[Ternary], lit: Lit) -> Ternary {
    let v = values[lit.var().0 as usize];
    if lit.is_compl() {
        !v
    } else {
        v
    }
}

/// The fixpoint of [`ternary_sweep_constrained`]: the plain sweep
/// lattice strengthened by the design's constraints.
#[derive(Clone, Debug)]
pub struct ConstrainedSweep {
    /// The strengthened sweep. Values here hold on every state of a
    /// *constraint-satisfying* trace prefix — a strictly smaller set
    /// than the plain sweep reasons about, so more nets come out
    /// constant.
    pub sweep: SweepResult,
    /// The forced-value closure of the constraint literals, sorted by
    /// variable: every (var, value) pair the constraints pin on each
    /// cycle they hold.
    pub forced: Vec<(Var, bool)>,
    /// True when the constraints are statically unsatisfiable — they
    /// force contradictory values, contradict a latch's reset value, or
    /// force a net the sweep proves is the opposite constant. No
    /// constrained path exists at all; every property is vacuous.
    pub contradiction: bool,
}

/// Runs the ternary sweep with the constraints folded in as forced
/// values.
///
/// Each constraint literal must be true on every cycle of a valid
/// trace, so its structural closure — both fanins of a forced-true AND,
/// the forced-false AND behind a negated literal, forced inputs and
/// latches — participates in the fixpoint as constants rather than X.
/// Latches a constraint pins are clamped to the pinned value each
/// round: on any cycle where the constraints hold (which includes every
/// cycle a bad may legally fire, under aiger semantics) the latch
/// carries that value.
///
/// The strengthening is one-sided by design: it may only *lower*
/// values (X → constant) relative to [`ternary_sweep`], never flip a
/// constant, so conclusions drawn from it are sound for the **proved**
/// direction (a bad constant-false here is unreachable under the
/// constraints). It must *not* be used to fabricate counterexamples —
/// a bad constant-true here still needs an engine to exhibit a
/// constraint-satisfying input sequence.
pub fn ternary_sweep_constrained(aig: &Aig) -> ConstrainedSweep {
    // Forced-true closure of the constraint literals.
    let mut forced: FxHashMap<Var, bool> = FxHashMap::default();
    let mut contradiction = false;
    let mut work: Vec<(Var, bool)> = Vec::new();
    for c in aig.constraints() {
        work.push((c.lit.var(), !c.lit.is_compl()));
    }
    while let Some((v, val)) = work.pop() {
        match forced.get(&v) {
            Some(&prev) if prev != val => {
                contradiction = true;
                continue;
            }
            Some(_) => continue,
            None => {}
        }
        forced.insert(v, val);
        match aig.node_kind(v) {
            // The constant node is false; forcing it true is absurd.
            Node::Const0 => contradiction |= val,
            Node::Input { .. } | Node::Latch { .. } => {}
            Node::And { a, b } => {
                // A forced-true AND forces both fanins; a forced-false
                // AND pins only itself (either leg could be the low
                // one).
                if val {
                    work.push((a.var(), !a.is_compl()));
                    work.push((b.var(), !b.is_compl()));
                }
            }
        }
    }
    // A forced latch whose reset value disagrees violates the
    // constraints at cycle 0: no valid trace exists.
    for latch in aig.latches() {
        if let Some(&val) = forced.get(&latch.var) {
            if val != latch.init {
                contradiction = true;
            }
        }
    }
    // The sweep fixpoint, with forced inputs as constants, forced
    // latches clamped each round, and forced ANDs overriding X (an AND
    // the sweep computes as the *opposite* constant is a contradiction:
    // the constraint can never hold, not even combinationally).
    let n = aig.num_nodes();
    let mut latch_values: Vec<Ternary> = aig
        .latches()
        .iter()
        .map(|l| Ternary::from_bool(*forced.get(&l.var).unwrap_or(&l.init)))
        .collect();
    let mut values = vec![Ternary::X; n];
    let mut rounds = 0;
    loop {
        rounds += 1;
        for i in 0..n {
            let v = Var(i as u32);
            values[i] = match aig.node_kind(v) {
                Node::Const0 => Ternary::False,
                Node::Input { .. } => match forced.get(&v) {
                    Some(&val) => Ternary::from_bool(val),
                    None => Ternary::X,
                },
                Node::Latch { index } => latch_values[*index as usize],
                Node::And { a, b } => {
                    let computed = lit_value_in(&values, *a).and(lit_value_in(&values, *b));
                    match (forced.get(&v), computed) {
                        (Some(&val), Ternary::X) => Ternary::from_bool(val),
                        (Some(&val), c) if c != Ternary::from_bool(val) => {
                            contradiction = true;
                            c
                        }
                        _ => computed,
                    }
                }
            };
        }
        let mut changed = false;
        for (i, latch) in aig.latches().iter().enumerate() {
            let joined = match forced.get(&latch.var) {
                Some(&val) => Ternary::from_bool(val),
                None => latch_values[i].join(lit_value_in(&values, latch.next)),
            };
            if joined != latch_values[i] {
                latch_values[i] = joined;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut forced: Vec<(Var, bool)> = forced.into_iter().collect();
    forced.sort_unstable_by_key(|&(v, _)| v.0);
    ConstrainedSweep {
        sweep: SweepResult { values, latch_values, rounds },
        forced,
        contradiction,
    }
}

/// The result of [`fold_constants`]: the simplified AIG plus the
/// literal map back to the original.
#[derive(Clone, Debug)]
pub struct FoldResult {
    /// The folded AIG. All primary inputs of the original are preserved
    /// **in creation order** (even ones the folding disconnected), so
    /// input indices — and therefore counterexample traces — carry over
    /// unchanged. Outputs, bads and constraints are re-registered under
    /// their original names.
    pub aig: Aig,
    /// Old variable → new literal, for every original variable that is
    /// either constant under the sweep, an input, or alive in the
    /// folded cone. Use [`FoldResult::map_lit`].
    pub lit_map: FxHashMap<Var, Lit>,
    /// Old latch id → new latch id for the surviving latches.
    pub latch_map: FxHashMap<LatchId, LatchId>,
    /// The folded-away latches with their stuck values, in latch order.
    pub stuck: Vec<(LatchId, bool)>,
    /// AND nodes eliminated (constant-folded or dead after folding).
    pub folded_ands: usize,
}

impl FoldResult {
    /// Maps an original literal into the folded AIG; `None` if its
    /// variable died with a dead cone.
    pub fn map_lit(&self, old: Lit) -> Option<Lit> {
        let base = *self.lit_map.get(&old.var())?;
        Some(if old.is_compl() { !base } else { base })
    }
}

/// Folds the sweep's constants into a simplified AIG.
///
/// Returns `None` when the sweep found no stuck latch — in that case
/// the only constant variable is the constant node itself, nothing
/// would change, and callers should keep using the original AIG (the
/// portfolio relies on this identity fast-path for byte-identical
/// statistics on designs with nothing to fold).
///
/// The rebuild substitutes every constant-valued variable by its
/// constant and re-creates only the logic still alive underneath the
/// outputs, bads, constraints and surviving latches' next-state
/// functions. Primary inputs are all preserved in creation order; see
/// [`FoldResult::aig`].
pub fn fold_constants(aig: &Aig, sweep: &SweepResult) -> Option<FoldResult> {
    let stuck: Vec<(LatchId, bool)> = sweep.stuck_latches().collect();
    if stuck.is_empty() {
        return None;
    }
    let n = aig.num_nodes();
    // Phase 1: mark the vars alive after substitution, traversing from
    // the registered roots through surviving latches' next functions.
    // Constant-valued vars are not traversed (they fold away); an AND
    // with a constant-true fanin only keeps its other leg.
    let mut alive = vec![false; n];
    let mut work: Vec<Var> = aig
        .outputs()
        .iter()
        .chain(aig.bads())
        .chain(aig.constraints())
        .map(|o| o.lit.var())
        .collect();
    while let Some(v) = work.pop() {
        if alive[v.0 as usize] || sweep.var_value(v).is_const() {
            continue;
        }
        alive[v.0 as usize] = true;
        match aig.node_kind(v) {
            Node::Const0 | Node::Input { .. } => {}
            Node::Latch { index } => {
                work.push(aig.latches()[*index as usize].next.var());
            }
            Node::And { a, b } => {
                // The node is X, so neither fanin is constant-false; a
                // constant-true fanin makes the node equal its sibling.
                if sweep.lit_value(*a) != Ternary::True {
                    work.push(a.var());
                }
                if sweep.lit_value(*b) != Ternary::True {
                    work.push(b.var());
                }
            }
        }
    }
    // Phase 2: rebuild in index order. All inputs first (their creation
    // order defines trace indexing and must survive), then latches and
    // ANDs as encountered.
    let mut out = Aig::new();
    let mut lit_map: FxHashMap<Var, Lit> = FxHashMap::default();
    lit_map.insert(Var(0), Lit::FALSE);
    for (var, name) in aig.inputs() {
        let l = out.input(name.clone());
        lit_map.insert(*var, l);
    }
    let map_old = |lit_map: &FxHashMap<Var, Lit>, l: Lit| -> Lit {
        if let Some(c) = sweep.lit_value(l).to_bool() {
            return if c { Lit::TRUE } else { Lit::FALSE };
        }
        let base = *lit_map.get(&l.var()).expect("fold mapping missed an alive node"); // lint: allow
        if l.is_compl() {
            !base
        } else {
            base
        }
    };
    let mut latch_map: FxHashMap<LatchId, LatchId> = FxHashMap::default();
    let mut kept: Vec<(LatchId, LatchId)> = Vec::new();
    for (i, live) in alive.iter().enumerate().take(n) {
        let v = Var(i as u32);
        if !live || sweep.var_value(v).is_const() {
            continue;
        }
        match aig.node_kind(v) {
            Node::Const0 | Node::Input { .. } => {}
            Node::Latch { index } => {
                let old_id = LatchId(*index);
                let info = &aig.latches()[*index as usize];
                let (new_id, l) = out.latch(info.name.clone(), info.init);
                latch_map.insert(old_id, new_id);
                kept.push((old_id, new_id));
                lit_map.insert(v, l);
            }
            Node::And { a, b } => {
                let l = if sweep.lit_value(*a) == Ternary::True {
                    map_old(&lit_map, *b)
                } else if sweep.lit_value(*b) == Ternary::True {
                    map_old(&lit_map, *a)
                } else {
                    let na = map_old(&lit_map, *a);
                    let nb = map_old(&lit_map, *b);
                    out.and(na, nb)
                };
                lit_map.insert(v, l);
            }
        }
    }
    // Phase 3: wire surviving latches and re-register the named nets.
    for (old_id, new_id) in &kept {
        let next = aig.latches()[old_id.0 as usize].next;
        let mapped = map_old(&lit_map, next);
        out.set_next(*new_id, mapped);
    }
    for o in aig.outputs() {
        let l = map_old(&lit_map, o.lit);
        out.add_output(o.name.clone(), l);
    }
    for b in aig.bads() {
        let l = map_old(&lit_map, b.lit);
        out.add_bad(b.name.clone(), l);
    }
    for c in aig.constraints() {
        let l = map_old(&lit_map, c.lit);
        out.add_constraint(c.name.clone(), l);
    }
    let folded_ands = aig.num_ands() - out.num_ands();
    Some(FoldResult { aig: out, lit_map, latch_map, stuck, folded_ands })
}

/// A sequentially-stuck latch found by the sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StuckLatch {
    /// The latch.
    pub id: LatchId,
    /// Its diagnostic name.
    pub name: String,
    /// The constant it is stuck at (always its reset value).
    pub value: bool,
}

/// A named net the sweep proved constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstantNet {
    /// The net's registered name.
    pub name: String,
    /// Its constant value.
    pub value: bool,
}

/// The typed lint report of [`analyze`]: everything the static
/// pre-analysis can say about a design without running an engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DesignReport {
    /// Fixpoint rounds the sweep took.
    pub sweep_rounds: usize,
    /// Latches stuck at their reset value forever.
    pub stuck_latches: Vec<StuckLatch>,
    /// Bads constant **false**: the property holds vacuously — no
    /// engine needs to run.
    pub vacuous_bads: Vec<String>,
    /// Bads constant **true**: the property is trivially falsified in
    /// the initial state (subject to constraints).
    pub trivial_bads: Vec<String>,
    /// Constraints constant true — they restrict nothing.
    pub constant_true_constraints: Vec<String>,
    /// Constraints constant false — **every** property is vacuous, no
    /// constrained path exists at all.
    pub constant_false_constraints: Vec<String>,
    /// Outputs the sweep proved constant.
    pub constant_outputs: Vec<ConstantNet>,
    /// Latches outside the cone of every bad and constraint: the
    /// engines never look at them (they may still feed outputs).
    pub dead_latches: Vec<String>,
    /// AND nodes outside the cone of every bad and constraint.
    pub dead_ands: usize,
    /// Inputs feeding no bad, constraint, or output cone at all.
    pub unused_inputs: Vec<String>,
    /// Combinational cycles found at the netlist/AIG boundary. An AIG
    /// itself is acyclic by construction, so [`analyze`] always leaves
    /// this empty; boundary tooling (the `structure_lint` driver, the
    /// lowering pipeline) merges cycle findings from the source netlist
    /// here, one rendered cycle per entry.
    pub comb_loops: Vec<String>,
    /// Unconstrained-input fanout hot spots: inputs outside every
    /// constraint cone whose direct AND fanout reaches
    /// [`FANOUT_HOTSPOT_THRESHOLD`] — free variables steering large
    /// swaths of logic, the usual sign of a missing environment
    /// assumption.
    pub fanout_hotspots: Vec<String>,
    /// Rank-unreachable latches: latches whose SCC in the latch
    /// dependency graph is not reachable from any input-driven logic.
    /// Autonomous state no input sequence can influence — such cones
    /// are verified against their reset orbit only.
    pub unreachable_latches: Vec<String>,
}

impl DesignReport {
    /// True when the report has nothing to say.
    pub fn is_clean(&self) -> bool {
        self.stuck_latches.is_empty()
            && self.vacuous_bads.is_empty()
            && self.trivial_bads.is_empty()
            && self.constant_true_constraints.is_empty()
            && self.constant_false_constraints.is_empty()
            && self.constant_outputs.is_empty()
            && self.dead_latches.is_empty()
            && self.dead_ands == 0
            && self.unused_inputs.is_empty()
            && self.comb_loops.is_empty()
            && self.fanout_hotspots.is_empty()
            && self.unreachable_latches.is_empty()
    }

    /// Total number of findings (each dead AND counts once).
    pub fn findings(&self) -> usize {
        self.stuck_latches.len()
            + self.vacuous_bads.len()
            + self.trivial_bads.len()
            + self.constant_true_constraints.len()
            + self.constant_false_constraints.len()
            + self.constant_outputs.len()
            + self.dead_latches.len()
            + self.dead_ands
            + self.unused_inputs.len()
            + self.comb_loops.len()
            + self.fanout_hotspots.len()
            + self.unreachable_latches.len()
    }

    /// Renders the findings as human-readable lint lines, one per
    /// finding category that fired.
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::new();
        if !self.stuck_latches.is_empty() {
            let names: Vec<String> = self
                .stuck_latches
                .iter()
                .map(|s| format!("{}={}", s.name, s.value as u8))
                .collect();
            lines.push(format!("stuck latches: {}", names.join(", ")));
        }
        if !self.vacuous_bads.is_empty() {
            lines.push(format!("vacuous bads (constant 0): {}", self.vacuous_bads.join(", ")));
        }
        if !self.trivial_bads.is_empty() {
            lines.push(format!(
                "trivially-falsified bads (constant 1): {}",
                self.trivial_bads.join(", ")
            ));
        }
        if !self.constant_true_constraints.is_empty() {
            lines.push(format!(
                "constant-true constraints: {}",
                self.constant_true_constraints.join(", ")
            ));
        }
        if !self.constant_false_constraints.is_empty() {
            lines.push(format!(
                "constant-false constraints (all properties vacuous): {}",
                self.constant_false_constraints.join(", ")
            ));
        }
        if !self.constant_outputs.is_empty() {
            let names: Vec<String> = self
                .constant_outputs
                .iter()
                .map(|o| format!("{}={}", o.name, o.value as u8))
                .collect();
            lines.push(format!("constant outputs: {}", names.join(", ")));
        }
        if !self.dead_latches.is_empty() {
            lines.push(format!(
                "latches outside every bad cone: {}",
                self.dead_latches.join(", ")
            ));
        }
        if self.dead_ands > 0 {
            lines.push(format!("AND nodes outside every bad cone: {}", self.dead_ands));
        }
        if !self.unused_inputs.is_empty() {
            lines.push(format!("unused inputs: {}", self.unused_inputs.join(", ")));
        }
        if !self.comb_loops.is_empty() {
            lines.push(format!("combinational loops: {}", self.comb_loops.join("; ")));
        }
        if !self.fanout_hotspots.is_empty() {
            lines.push(format!(
                "unconstrained fanout hot spots: {}",
                self.fanout_hotspots.join(", ")
            ));
        }
        if !self.unreachable_latches.is_empty() {
            lines.push(format!(
                "input-unreachable latches: {}",
                self.unreachable_latches.join(", ")
            ));
        }
        lines
    }
}

/// Runs the full static pre-analysis and returns the lint report.
///
/// Combines the [`ternary_sweep`] (stuck latches, constant
/// bads/constraints/outputs) with a structural cone analysis (dead
/// logic outside every bad/constraint cone, inputs feeding nothing).
pub fn analyze(aig: &Aig) -> DesignReport {
    let sweep = ternary_sweep(aig);
    let mut report = DesignReport { sweep_rounds: sweep.rounds, ..DesignReport::default() };
    for (id, value) in sweep.stuck_latches() {
        report.stuck_latches.push(StuckLatch {
            id,
            name: aig.latch_info(id).name.clone(),
            value,
        });
    }
    for b in aig.bads() {
        match sweep.lit_value(b.lit) {
            Ternary::False => report.vacuous_bads.push(b.name.clone()),
            Ternary::True => report.trivial_bads.push(b.name.clone()),
            Ternary::X => {}
        }
    }
    for c in aig.constraints() {
        match sweep.lit_value(c.lit) {
            Ternary::True => report.constant_true_constraints.push(c.name.clone()),
            Ternary::False => report.constant_false_constraints.push(c.name.clone()),
            Ternary::X => {}
        }
    }
    for o in aig.outputs() {
        if let Some(value) = sweep.lit_value(o.lit).to_bool() {
            report.constant_outputs.push(ConstantNet { name: o.name.clone(), value });
        }
    }
    // Structural verification cone: everything reachable from bads and
    // constraints through latch next-state functions.
    let verification_cone = cone_vars(aig, aig.bads().iter().chain(aig.constraints()));
    for latch in aig.latches() {
        if !verification_cone[latch.var.0 as usize] {
            report.dead_latches.push(latch.name.clone());
        }
    }
    report.dead_ands = aig
        .and_order()
        .filter(|v| !verification_cone[v.0 as usize])
        .count();
    // An input is unused only if nothing at all reads it — bads,
    // constraints and outputs included.
    let any_cone = cone_vars(
        aig,
        aig.bads().iter().chain(aig.constraints()).chain(aig.outputs()),
    );
    for (var, name) in aig.inputs() {
        if !any_cone[var.0 as usize] {
            report.unused_inputs.push(name.clone());
        }
    }
    // Structural lints from the latch dependency graph: fanout hot
    // spots on unconstrained inputs, and autonomous (rank-unreachable)
    // latch SCCs. `comb_loops` stays empty here — AIG construction is
    // topological, cycles only exist upstream at the netlist boundary.
    let mut fanout = vec![0usize; aig.num_nodes()];
    for v in aig.and_order() {
        if let Some((a, b)) = aig.and_fanins(v) {
            fanout[a.var().0 as usize] += 1;
            fanout[b.var().0 as usize] += 1;
        }
    }
    let constraint_cone = cone_vars(aig, aig.constraints().iter());
    for (var, name) in aig.inputs() {
        if !constraint_cone[var.0 as usize]
            && fanout[var.0 as usize] >= FANOUT_HOTSPOT_THRESHOLD
        {
            report.fanout_hotspots.push(name.clone());
        }
    }
    let condensation = LatchGraph::build(aig).condense();
    for id in condensation.input_unreachable_latches() {
        report.unreachable_latches.push(aig.latch_info(id).name.clone());
    }
    report
}

/// Marks every var reachable from `roots` through AND fanins and latch
/// next-state functions.
fn cone_vars<'a, I: Iterator<Item = &'a crate::NamedLit>>(aig: &Aig, roots: I) -> Vec<bool> {
    let mut seen = vec![false; aig.num_nodes()];
    let mut work: Vec<Var> = roots.map(|r| r.lit.var()).collect();
    while let Some(v) = work.pop() {
        if seen[v.0 as usize] {
            continue;
        }
        seen[v.0 as usize] = true;
        match aig.node_kind(v) {
            Node::Const0 | Node::Input { .. } => {}
            Node::Latch { index } => work.push(aig.latches()[*index as usize].next.var()),
            Node::And { a, b } => {
                work.push(a.var());
                work.push(b.var());
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toggling latch, a stuck-at-0 latch, and a stuck-at-1 latch.
    fn mixed_aig() -> (Aig, Lit, Lit, Lit) {
        let mut g = Aig::new();
        let (t_id, t) = g.latch("toggle", false);
        g.set_next(t_id, !t);
        let (s0_id, s0) = g.latch("stuck0", false);
        g.set_next(s0_id, s0);
        let (s1_id, s1) = g.latch("stuck1", true);
        g.set_next(s1_id, s1);
        (g, t, s0, s1)
    }

    #[test]
    fn ternary_ops() {
        use Ternary::*;
        assert_eq!(False.and(X), False);
        assert_eq!(True.and(X), X);
        assert_eq!(True.and(True), True);
        assert_eq!(!False, True);
        assert_eq!(!X, X);
        assert_eq!(True.join(True), True);
        assert_eq!(True.join(False), X);
        assert_eq!(Ternary::from_bool(true).to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
    }

    #[test]
    fn sweep_finds_stuck_latches() {
        let (g, t, s0, s1) = mixed_aig();
        let sweep = ternary_sweep(&g);
        assert_eq!(sweep.lit_value(t), Ternary::X, "a toggling latch is not constant");
        assert_eq!(sweep.lit_value(s0), Ternary::False);
        assert_eq!(sweep.lit_value(s1), Ternary::True);
        assert_eq!(sweep.lit_value(!s1), Ternary::False);
        let stuck: Vec<_> = sweep.stuck_latches().collect();
        assert_eq!(stuck, vec![(LatchId(1), false), (LatchId(2), true)]);
        assert_eq!(sweep.stuck_count(), 2);
    }

    #[test]
    fn sweep_propagates_through_chains() {
        // A shift register seeded by a stuck-0 latch: every stage is
        // stuck 0, but only after enough fixpoint rounds.
        let mut g = Aig::new();
        let (s, q0) = g.latch("src", false);
        g.set_next(s, q0);
        let mut prev = q0;
        for i in 0..4 {
            let (id, q) = g.latch(format!("stage{i}"), false);
            g.set_next(id, prev);
            prev = q;
        }
        let sweep = ternary_sweep(&g);
        assert_eq!(sweep.stuck_count(), 5);
        // An init-1 stage fed by the stuck-0 chain is NOT stuck: it
        // holds 1 in cycle 0 and 0 forever after.
        let mut g2 = Aig::new();
        let (s, q0) = g2.latch("src", false);
        g2.set_next(s, q0);
        let (h, _qh) = g2.latch("high_then_low", true);
        g2.set_next(h, q0);
        let sweep2 = ternary_sweep(&g2);
        assert_eq!(sweep2.latch_value(LatchId(1)), Ternary::X);
    }

    #[test]
    fn sweep_is_conservative_about_reachability() {
        // next = !q: alternates 0,1,0,1 — genuinely non-constant, and
        // the sweep joins {0,1} to X as it must.
        let mut g = Aig::new();
        let (id, q) = g.latch("alt", false);
        g.set_next(id, !q);
        let sweep = ternary_sweep(&g);
        assert_eq!(sweep.lit_value(q), Ternary::X);
    }

    #[test]
    fn fold_returns_none_without_stuck_latches() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        g.set_next(id, a);
        g.add_bad("q_high", q);
        let sweep = ternary_sweep(&g);
        assert!(fold_constants(&g, &sweep).is_none());
    }

    #[test]
    fn fold_substitutes_and_preserves_semantics() {
        // bad = toggle AND stuck1 AND (a OR stuck0): folds to
        // bad = toggle AND a's cone... stuck1 drops, stuck0 leg of the
        // OR drops.
        let (mut g, t, s0, s1) = mixed_aig();
        let a = g.input("a");
        let or = g.or(a, s0);
        let t1 = g.and(t, s1);
        let bad = g.and(t1, or);
        g.add_bad("bad", bad);
        let sweep = ternary_sweep(&g);
        let fold = fold_constants(&g, &sweep).expect("two stuck latches fold");
        assert_eq!(fold.stuck, vec![(LatchId(1), false), (LatchId(2), true)]);
        assert_eq!(fold.aig.num_latches(), 1, "only the toggler survives");
        assert_eq!(fold.aig.num_inputs(), 1, "inputs survive");
        assert_eq!(fold.aig.bads().len(), 1);
        assert_eq!(fold.latch_map.get(&LatchId(0)), Some(&LatchId(0)));
        assert_eq!(fold.latch_map.get(&LatchId(1)), None);
        // Semantics: simulate both for a few cycles on both input
        // values and compare the bad.
        for a_val in [false, true] {
            let inputs: Vec<Vec<bool>> = (0..6).map(|_| vec![a_val]).collect();
            let orig = g.simulate(&inputs);
            let folded = fold.aig.simulate(&inputs);
            for (o, f) in orig.iter().zip(&folded) {
                assert_eq!(o.bads, f.bads, "fold must preserve the bad, a={a_val}");
            }
        }
    }

    #[test]
    fn fold_drops_cones_dead_after_substitution() {
        // bad = stuck0 AND big-cone: the whole big cone dies.
        let mut g = Aig::new();
        let (s, q) = g.latch("stuck0", false);
        g.set_next(s, q);
        let xs: Vec<Lit> = (0..8).map(|i| g.input(format!("x{i}"))).collect();
        let big = g.and_many(xs.iter().copied());
        let bad = g.and(q, big);
        g.add_bad("never", bad);
        let sweep = ternary_sweep(&g);
        assert_eq!(sweep.lit_value(bad), Ternary::False);
        let fold = fold_constants(&g, &sweep).expect("stuck latch folds");
        assert_eq!(fold.aig.num_ands(), 0, "the whole cone is dead");
        assert_eq!(fold.aig.num_latches(), 0);
        assert_eq!(fold.aig.num_inputs(), 8, "inputs always survive");
        assert_eq!(fold.aig.bads()[0].lit, Lit::FALSE);
        assert_eq!(fold.folded_ands, g.num_ands());
    }

    #[test]
    fn fold_preserves_input_indexing() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (s, q) = g.latch("stuck1", true);
        g.set_next(s, q);
        let b = g.input("b");
        let bad = g.and(q, b);
        g.add_bad("b_high", bad);
        let sweep = ternary_sweep(&g);
        let fold = fold_constants(&g, &sweep).expect("folds");
        // Input order a, b preserved even though a is disconnected.
        let ins = fold.aig.inputs();
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].1, "a");
        assert_eq!(ins[1].1, "b");
        // The bad folded to exactly `b`.
        assert_eq!(fold.map_lit(bad), Some(fold.aig.bads()[0].lit));
        let _ = a;
    }

    #[test]
    fn analyze_reports_constant_properties() {
        let (mut g, t, s0, s1) = mixed_aig();
        let vac = g.and(s0, t);
        g.add_bad("vacuous", vac);
        g.add_bad("trivial", s1);
        g.add_constraint("always", s1);
        g.add_constraint("never", s0);
        g.add_output("const_out", !s0);
        let report = analyze(&g);
        assert_eq!(report.vacuous_bads, vec!["vacuous".to_string()]);
        assert_eq!(report.trivial_bads, vec!["trivial".to_string()]);
        assert_eq!(report.constant_true_constraints, vec!["always".to_string()]);
        assert_eq!(report.constant_false_constraints, vec!["never".to_string()]);
        assert_eq!(report.constant_outputs, vec![ConstantNet {
            name: "const_out".to_string(),
            value: true,
        }]);
        assert_eq!(report.stuck_latches.len(), 2);
        assert!(!report.is_clean());
        assert!(report.findings() >= 7);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn analyze_reports_dead_logic_and_unused_inputs() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let _floating = g.input("floating");
        let (id, q) = g.latch("q", false);
        g.set_next(id, a);
        let (dead_id, dead_q) = g.latch("dead", false);
        let dn = g.xor(dead_q, b);
        g.set_next(dead_id, dn);
        g.add_bad("q_high", q);
        g.add_output("o", dn);
        let report = analyze(&g);
        assert_eq!(report.dead_latches, vec!["dead".to_string()]);
        assert_eq!(report.dead_ands, 3, "the xor's three ANDs are outside the bad cone");
        // `b` feeds the output cone, so only `floating` is unused.
        assert_eq!(report.unused_inputs, vec!["floating".to_string()]);
        assert!(report.stuck_latches.is_empty(), "free-running latches are not stuck");
    }

    #[test]
    fn constrained_sweep_forces_inputs_through_the_closure() {
        // constraint = a AND b (positive AND literal): both inputs
        // forced true, so bad = q AND !a is constant false even though
        // the plain sweep sees X.
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let (id, q) = g.latch("q", false);
        g.set_next(id, b);
        let c = g.and(a, b);
        g.add_constraint("ab", c);
        let na = !a;
        let bad = g.and(q, na);
        g.add_bad("q_and_not_a", bad);
        let plain = ternary_sweep(&g);
        assert_eq!(plain.lit_value(bad), Ternary::X);
        let cs = ternary_sweep_constrained(&g);
        assert!(!cs.contradiction);
        assert_eq!(cs.sweep.lit_value(a), Ternary::True);
        assert_eq!(cs.sweep.lit_value(b), Ternary::True);
        assert_eq!(cs.sweep.lit_value(bad), Ternary::False);
        // The forced closure pins a, b and the AND itself.
        assert_eq!(cs.forced.len(), 3);
        // And the clamp propagates: q is fed by forced-true b, so after
        // the join q is X (init 0, then 1) — not constant.
        assert_eq!(cs.sweep.latch_value(LatchId(0)), Ternary::X);
    }

    #[test]
    fn constrained_sweep_clamps_forced_latches() {
        // constraint pins latch s (init true, next = input): on every
        // constrained cycle s is 1, so bad = !s is vacuous.
        let mut g = Aig::new();
        let i = g.input("i");
        let (id, s) = g.latch("s", true);
        g.set_next(id, i);
        g.add_constraint("s_high", s);
        g.add_bad("s_low", !s);
        let plain = ternary_sweep(&g);
        assert_eq!(plain.lit_value(s), Ternary::X);
        let cs = ternary_sweep_constrained(&g);
        assert!(!cs.contradiction);
        assert_eq!(cs.sweep.lit_value(!s), Ternary::False);
    }

    #[test]
    fn constrained_sweep_detects_contradictions() {
        // Two constraints forcing an input both ways.
        let mut g = Aig::new();
        let a = g.input("a");
        g.add_constraint("a_high", a);
        g.add_constraint("a_low", !a);
        g.add_bad("whatever", a);
        assert!(ternary_sweep_constrained(&g).contradiction);
        // A forced latch whose reset value disagrees.
        let mut g2 = Aig::new();
        let i = g2.input("i");
        let (id, s) = g2.latch("s", false);
        g2.set_next(id, i);
        g2.add_constraint("s_high", s);
        g2.add_bad("whatever", s);
        assert!(ternary_sweep_constrained(&g2).contradiction);
        // A forced net the sweep proves constant the other way.
        let mut g3 = Aig::new();
        let (id, s) = g3.latch("stuck0", false);
        g3.set_next(id, s);
        let a = g3.input("a");
        let c = g3.and(s, a);
        g3.add_constraint("impossible", c);
        g3.add_bad("whatever", a);
        assert!(ternary_sweep_constrained(&g3).contradiction);
    }

    #[test]
    fn constrained_sweep_without_constraints_matches_plain() {
        let (g, t, s0, s1) = mixed_aig();
        let plain = ternary_sweep(&g);
        let cs = ternary_sweep_constrained(&g);
        assert!(!cs.contradiction);
        assert!(cs.forced.is_empty());
        for lit in [t, s0, s1] {
            assert_eq!(cs.sweep.lit_value(lit), plain.lit_value(lit));
        }
        assert_eq!(cs.sweep.rounds, plain.rounds);
    }

    #[test]
    fn analyze_reports_unreachable_latches_and_hotspots() {
        let mut g = Aig::new();
        // An autonomous two-latch ring never touched by inputs.
        let (x, qx) = g.latch("ring_x", false);
        let (y, qy) = g.latch("ring_y", true);
        g.set_next(x, qy);
        g.set_next(y, qx);
        // A free input fanning out past the hot-spot threshold.
        let free = g.input("free");
        let others: Vec<Lit> =
            (0..FANOUT_HOTSPOT_THRESHOLD).map(|i| g.input(format!("o{i}"))).collect();
        let ands: Vec<Lit> = others.iter().map(|&o| g.and(free, o)).collect();
        let any = g.or_many(ands);
        let ring_bad = g.and(qx, any);
        g.add_bad("ring_and_any", ring_bad);
        let report = analyze(&g);
        assert_eq!(report.unreachable_latches, vec!["ring_x".to_string(), "ring_y".to_string()]);
        assert_eq!(report.fanout_hotspots, vec!["free".to_string()]);
        assert!(report.comb_loops.is_empty(), "AIGs cannot hold comb cycles");
        assert!(!report.is_clean());
        // Constraining the hot input silences the hot-spot lint.
        g.add_constraint("free_low", !free);
        let constrained = analyze(&g);
        assert!(constrained.fanout_hotspots.is_empty());
    }

    #[test]
    fn clean_design_reports_clean() {
        let mut g = Aig::new();
        let a = g.input("a");
        let (id, q) = g.latch("q", false);
        let n = g.xor(q, a);
        g.set_next(id, n);
        g.add_bad("q_high", q);
        let report = analyze(&g);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.findings(), 0);
        assert!(report.render().is_empty());
    }
}
