//! Cone-of-influence reduction.
//!
//! Model checking a single leaf-module property rarely needs the whole
//! design; [`Aig::extract_coi`] rebuilds a fresh AIG containing only the
//! logic that can affect the given roots (bads + constraints), shrinking
//! the state space the engines must handle. This is the mechanised half of
//! the paper's Divide-and-Conquer argument: each stereotype property has a
//! small cone.

use crate::{Aig, LatchId, Lit, Node, Var};
use crate::hash::FxHashMap;

/// The result of a cone-of-influence extraction.
#[derive(Clone, Debug)]
pub struct CoiResult {
    /// The reduced AIG.
    pub aig: Aig,
    /// Mapping from old literal roots (as passed in) to new literals, in
    /// the same order.
    pub roots: Vec<Lit>,
    /// Old latch id → new latch id, for trace mapping.
    pub latch_map: FxHashMap<LatchId, LatchId>,
    /// Old input var → new input var.
    pub input_map: FxHashMap<Var, Var>,
}

impl Aig {
    /// Extracts the cone of influence of `roots` into a fresh AIG.
    ///
    /// Latches reached transitively (through next-state functions) are
    /// kept, along with any inputs feeding the kept logic. Outputs, bads
    /// and constraints of the original AIG are *not* carried over; callers
    /// re-register the mapped roots as appropriate.
    pub fn extract_coi(&self, roots: &[Lit]) -> CoiResult {
        // Phase 1: find the set of needed vars via fixpoint over latch
        // next-state functions.
        let mut needed = vec![false; self.nodes.len()];
        let mut work: Vec<Var> = roots.iter().map(|l| l.var()).collect();
        while let Some(v) = work.pop() {
            if needed[v.0 as usize] {
                continue;
            }
            needed[v.0 as usize] = true;
            match &self.nodes[v.0 as usize] {
                Node::Const0 | Node::Input { .. } => {}
                Node::Latch { index } => {
                    work.push(self.latches[*index as usize].next.var());
                }
                Node::And { a, b } => {
                    work.push(a.var());
                    work.push(b.var());
                }
            }
        }
        // Phase 2: rebuild in index order (which is topological).
        let mut out = Aig::new();
        let mut lit_map: FxHashMap<Var, Lit> = FxHashMap::default();
        lit_map.insert(Var(0), Lit::FALSE);
        let mut latch_map = FxHashMap::default();
        let mut input_map = FxHashMap::default();
        let mut new_latches: Vec<(LatchId, LatchId)> = Vec::new();
        for (i, need) in needed.iter().enumerate() {
            if !need {
                continue;
            }
            let v = Var(i as u32);
            match &self.nodes[i] {
                Node::Const0 => {}
                Node::Input { index } => {
                    let name = self.inputs[*index as usize].1.clone();
                    let l = out.input(name);
                    input_map.insert(v, l.var());
                    lit_map.insert(v, l);
                }
                Node::Latch { index } => {
                    let old_id = LatchId(*index);
                    let info = &self.latches[*index as usize];
                    let (new_id, l) = out.latch(info.name.clone(), info.init);
                    latch_map.insert(old_id, new_id);
                    new_latches.push((old_id, new_id));
                    lit_map.insert(v, l);
                }
                Node::And { a, b } => {
                    let na = map_lit(*a, &lit_map);
                    let nb = map_lit(*b, &lit_map);
                    let l = out.and(na, nb);
                    lit_map.insert(v, l);
                }
            }
        }
        // Phase 3: wire latch next-state functions.
        for (old_id, new_id) in &new_latches {
            let next = self.latches[old_id.0 as usize].next;
            out.set_next(*new_id, map_lit(next, &lit_map));
        }
        let roots = roots.iter().map(|l| map_lit(*l, &lit_map)).collect();
        CoiResult { aig: out, roots, latch_map, input_map }
    }
}

fn map_lit(l: Lit, lit_map: &FxHashMap<Var, Lit>) -> Lit {
    let base = *lit_map
        .get(&l.var())
        .expect("COI mapping missed a needed node"); // lint: allow
    if l.is_compl() {
        !base
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coi_drops_unrelated_logic() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let (l1, q1) = g.latch("q1", false);
        let (l2, q2) = g.latch("q2", true);
        let n1 = g.and(a, q1);
        g.set_next(l1, n1);
        let n2 = g.and(b, q2);
        g.set_next(l2, n2);
        let junk = g.and(c, b);
        g.add_output("junk", junk);
        // Root only involves q1/a.
        let root = g.and(q1, a);
        let r = g.extract_coi(&[root]);
        assert_eq!(r.aig.num_latches(), 1);
        assert_eq!(r.aig.num_inputs(), 1);
        assert!(r.latch_map.contains_key(&LatchId(0)));
        assert!(!r.latch_map.contains_key(&LatchId(1)));
    }

    #[test]
    fn coi_follows_latch_next_functions() {
        // q1.next depends on q2, so asking for q1 must pull q2 in.
        let mut g = Aig::new();
        let (l1, q1) = g.latch("q1", false);
        let (l2, q2) = g.latch("q2", false);
        let x = g.input("x");
        g.set_next(l1, q2);
        let n2 = g.and(q2, x);
        g.set_next(l2, n2);
        let r = g.extract_coi(&[q1]);
        assert_eq!(r.aig.num_latches(), 2);
        assert_eq!(r.aig.num_inputs(), 1);
        assert_eq!(r.latch_map.len(), 2);
        let _ = (l1, l2);
    }

    #[test]
    fn coi_preserves_semantics() {
        let mut g = Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let x = g.xor(a, b);
        let y = g.and(x, a);
        let r = g.extract_coi(&[y]);
        let new_root = r.roots[0];
        for av in [false, true] {
            for bv in [false, true] {
                let old = g.eval_comb(y, &|v| if v == a.var() { av } else { bv });
                let new = r.aig.eval_comb(new_root, &|v| {
                    match r.aig.input_index(v) {
                        Some(i) => {
                            // Input order preserved: a then b.
                            if i == 0 {
                                av
                            } else {
                                bv
                            }
                        }
                        None => unreachable!(),
                    }
                });
                assert_eq!(old, new, "mismatch at a={av} b={bv}");
            }
        }
    }

    #[test]
    fn constant_root_maps_to_constant() {
        let g = Aig::new();
        let r = g.extract_coi(&[Lit::TRUE, Lit::FALSE]);
        assert_eq!(r.roots, vec![Lit::TRUE, Lit::FALSE]);
        assert_eq!(r.aig.num_nodes(), 1);
    }
}
