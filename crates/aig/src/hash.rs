//! A fast, non-cryptographic hasher for the engine hot paths.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which the engines' tables do not need: every key is a small tuple of
//! dense ids (AIG variables, BDD node ids, solver literals) produced by
//! the process itself. This module hand-rolls the FxHash multiply-xor
//! scheme used by rustc (`rustc-hash`), which hashes such keys in a
//! handful of cycles and measurably speeds up every table-bound
//! operation.
//!
//! It lives in `veridic-aig` — the base crate of the engine layer — so
//! the BDD manager (unique table, computed caches), the SAT solver's
//! CNF frame maps, and the model checkers' node maps all share one
//! definition; `veridic_bdd::hash` re-exports it.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash multiplier (64-bit golden-ratio constant, as in `rustc-hash`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one word, folded with rotate-xor-multiply.
///
/// Not DoS-resistant — only use for keys the process generates itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))); // lint: allow
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`]; zero-sized and stateless,
/// so maps built with it hash identically across runs (deterministic
/// iteration is still not guaranteed — do not rely on map order).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the process's own dense ids, using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` counterpart of [`FxHashMap`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_tuple_orders() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        assert_ne!(bh.hash_one((1u32, 2u32)), bh.hash_one((2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        m.insert((1, 2, 3), 7);
        assert_eq!(m.get(&(1, 2, 3)), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn partial_writes_cover_all_bytes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
