//! The verification design flow (paper §4, Figure 5) as an executable
//! campaign: logic designers release Verifiable RTL and integrity
//! specifications (here: the generated chip with checkpoint attributes);
//! the formal verification engineer derives PSL vunits, model checks
//! every leaf module, and feeds results back.

use crate::stereotype::{generate_all, GeneratedVUnit, StereotypeError};
use crate::verifiable::{make_verifiable, TransformError, VerifiableModule};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use veridic_chipgen::{Category, Chip, PropertyType};
use veridic_mc::{CheckOptions, CheckResult, CheckStats, Portfolio, PreanalysisStats, Verdict};
use veridic_psl::CompiledVUnit;

/// Campaign configuration.
#[derive(Clone, Debug, Default)]
pub struct CampaignConfig {
    /// Engine budgets per property. `check.pobdd_workers` additionally
    /// controls *intra*-property parallelism (threaded POBDD windows);
    /// its default of 1 composes with the module-level fan-out below
    /// without oversubscribing — raise it instead of `workers` when a
    /// campaign is dominated by a few hard properties.
    pub check: CheckOptions,
    /// Worker threads for the per-property fan-out; `0` (the default)
    /// means one worker per available CPU. Any value produces a report
    /// byte-identical to `workers = 1`: each property check owns its own
    /// engines, and records are ordered by property index, never by
    /// completion order.
    pub workers: usize,
}

impl CampaignConfig {
    /// The effective worker count: `workers`, or the number of available
    /// CPUs when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Result of one property check within the campaign.
#[derive(Clone, Debug)]
pub struct PropertyRecord {
    /// Leaf module name.
    pub module: String,
    /// Module category.
    pub category: Category,
    /// Vunit name.
    pub vunit: String,
    /// Assertion label.
    pub label: String,
    /// Property type (P0..P3).
    pub ptype: PropertyType,
    /// Check verdict.
    pub verdict: Verdict,
    /// Engine statistics.
    pub stats: CheckStats,
    /// Wall-clock time of the check.
    pub duration: Duration,
}

/// A campaign over a whole chip.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// One record per checked assertion.
    pub records: Vec<PropertyRecord>,
    /// Modules that failed to transform or compile, with reasons.
    pub errors: Vec<(String, String)>,
    /// Total wall-clock time.
    pub total_time: Duration,
}

/// Errors during per-module preparation.
#[derive(Clone, Debug)]
pub enum FlowError {
    /// Verifiable transform failed.
    Transform(TransformError),
    /// Property generation failed.
    Stereotype(StereotypeError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Transform(e) => write!(f, "{e}"),
            FlowError::Stereotype(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Prepares one leaf module: Verifiable transform + stereotype vunits.
///
/// # Errors
///
/// Returns [`FlowError`] if the module lacks checkpoints or generated
/// properties fail to compile.
pub fn prepare_module(
    m: &veridic_netlist::Module,
) -> Result<(VerifiableModule, Vec<(GeneratedVUnit, CompiledVUnit)>), FlowError> {
    let vm = make_verifiable(m).map_err(FlowError::Transform)?;
    let units = generate_all(&vm).map_err(FlowError::Stereotype)?;
    Ok((vm, units))
}

/// Everything one campaign worker produces for one leaf module, in the
/// same order a serial campaign would emit it.
type ModuleOutput = (Vec<PropertyRecord>, Vec<(String, String)>);

/// One fully-lowered property check, ready for any engine scheduler:
/// the vunit's multi-bad AIG plus the index of the assert under check.
///
/// This is the unit of work the campaign hands out — to its own
/// threaded executor and to external shard processes (the campaign
/// daemon re-derives the same list in each worker and picks by global
/// index). The AIG is the *whole unit's* lowering (every sibling
/// assert's bad is present, constraints included), exactly what the
/// in-process campaign passes to `Portfolio::check_bad`, so a check
/// through a [`PreparedProperty`] produces byte-identical verdicts,
/// stats and event logs to one through [`run_campaign`].
#[derive(Clone, Debug)]
pub struct PreparedProperty {
    /// Leaf module name.
    pub module: String,
    /// Module category.
    pub category: Category,
    /// Vunit name.
    pub vunit: String,
    /// Assertion label.
    pub label: String,
    /// Property type (P0..P3).
    pub ptype: PropertyType,
    /// The unit's lowered AIG: one bad per sibling assert, assumes as
    /// invariant constraints.
    pub aig: veridic_aig::Aig,
    /// Index of this property's bad in `aig` (its position among the
    /// unit's asserts).
    pub bad_index: usize,
}

/// Enumerates every checkable property of one leaf module, in the exact
/// order [`run_campaign`] checks them, together with the module's
/// preparation errors (failed Verifiable transform or AIG lowering).
///
/// Deterministic: two processes enumerating the same generated chip get
/// identical lists — the contract that lets out-of-process campaign
/// workers address properties by index.
pub fn module_properties(
    chip: &Chip,
    mi: &veridic_chipgen::ModuleInfo,
) -> (Vec<PreparedProperty>, Vec<(String, String)>) {
    let mut props = Vec::new();
    let mut errors = Vec::new();
    let m = chip
        .design()
        .module(mi.name())
        .expect("chip lists existing modules"); // lint: allow
    let (_, units) = match prepare_module(m) {
        Ok(x) => x,
        Err(e) => {
            errors.push((mi.name().to_string(), e.to_string()));
            return (props, errors);
        }
    };
    for (gen, compiled) in units {
        let lowered = match compiled.module.to_aig() {
            Ok(l) => l,
            Err(e) => {
                errors.push((mi.name().to_string(), e.to_string()));
                continue;
            }
        };
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        for (idx, (label, _)) in compiled.asserts.iter().enumerate() {
            props.push(PreparedProperty {
                module: mi.name().to_string(),
                category: mi.plan().category,
                vunit: gen.unit.name.clone(),
                label: label.clone(),
                ptype: gen.ptype,
                aig: aig.clone(),
                bad_index: idx,
            });
        }
    }
    (props, errors)
}

/// Checks one prepared property with an explicit portfolio, producing
/// the same [`PropertyRecord`] the in-process campaign would emit for
/// it (wall-clock aside).
pub fn check_property(
    prop: &PreparedProperty,
    portfolio: &Portfolio,
    check: &CheckOptions,
) -> PropertyRecord {
    let t0 = Instant::now();
    let mut stats = CheckStats::default();
    let verdict = portfolio.check_bad(&prop.aig, prop.bad_index, check, &mut stats);
    PropertyRecord {
        module: prop.module.clone(),
        category: prop.category,
        vunit: prop.vunit.clone(),
        label: prop.label.clone(),
        ptype: prop.ptype,
        verdict,
        stats,
        duration: t0.elapsed(),
    }
}

/// Assembles the [`PropertyRecord`] for a check that was driven
/// externally — the out-of-process campaign workers run properties in
/// budget slices (with checkpoints persisted between them) and hand the
/// final [`CheckResult`] here, so the record shape stays defined in one
/// place regardless of who scheduled the engines.
pub fn record_from_result(
    prop: &PreparedProperty,
    result: CheckResult,
    duration: Duration,
) -> PropertyRecord {
    PropertyRecord {
        module: prop.module.clone(),
        category: prop.category,
        vunit: prop.vunit.clone(),
        label: prop.label.clone(),
        ptype: prop.ptype,
        verdict: result.verdict,
        stats: result.stats,
        duration,
    }
}

/// Prepares and checks every stereotype property of one leaf module.
/// The portfolio is shared by reference across campaign workers — it
/// owns no per-run state, only the engine policy.
fn run_module(
    chip: &Chip,
    mi: &veridic_chipgen::ModuleInfo,
    portfolio: &Portfolio,
    check: &CheckOptions,
) -> ModuleOutput {
    let (props, errors) = module_properties(chip, mi);
    let records = props.iter().map(|p| check_property(p, portfolio, check)).collect();
    (records, errors)
}

/// Runs the full formal campaign over a generated chip: every leaf
/// module, every stereotype property.
///
/// Modules fan out across [`CampaignConfig::workers`] scoped threads
/// pulling the next module index from a shared atomic queue, so both
/// preparation (Verifiable transform, stereotype generation, AIG
/// lowering) and the per-property `check_one` calls run in parallel,
/// and a module's AIGs are dropped as soon as its checks finish — only
/// in-flight modules stay resident. Every check owns its engines, and
/// per-module outputs are merged back in module-index order, so the
/// report is identical to a serial run regardless of worker count or
/// completion order.
pub fn run_campaign(chip: &Chip, cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with_portfolio(chip, cfg, &Portfolio::default())
}

/// [`run_campaign`] with an explicit engine [`Portfolio`]: every
/// property check is scheduled by `portfolio` instead of the default
/// cascade, so a campaign can run a custom engine mix (BDD-only
/// portfolios, per-engine round caps, user-implemented engines). The
/// portfolio is shared by reference across the campaign workers.
pub fn run_campaign_with_portfolio(
    chip: &Chip,
    cfg: &CampaignConfig,
    portfolio: &Portfolio,
) -> CampaignReport {
    let start = Instant::now();
    let mut report = CampaignReport::default();

    let modules = chip.modules();
    let workers = cfg.effective_workers().min(modules.len().max(1));
    let outputs: Vec<ModuleOutput> = if workers <= 1 {
        modules.iter().map(|mi| run_module(chip, mi, portfolio, &cfg.check)).collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<ModuleOutput>> = vec![None; modules.len()];
        let per_worker: Vec<Vec<(usize, ModuleOutput)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(mi) = modules.get(i) else { break };
                            out.push((i, run_module(chip, mi, portfolio, &cfg.check)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked")) // lint: allow
                .collect()
        });
        for (i, o) in per_worker.into_iter().flatten() {
            slots[i] = Some(o);
        }
        slots
            .into_iter()
            .map(|o| o.expect("every module produced an output")) // lint: allow
            .collect()
    };
    for (records, errors) in outputs {
        report.records.extend(records);
        report.errors.extend(errors);
    }

    report.total_time = start.elapsed();
    report
}

/// One row of the Table-2 reproduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Category.
    pub category: Category,
    /// Submodule count.
    pub submodules: usize,
    /// Distinct bugs found (falsified properties attributed to seeded
    /// defects; the decoder's single failing property counts its two
    /// independent bad cases).
    pub bugs: usize,
    /// P0 properties checked.
    pub p0: usize,
    /// P1 properties checked.
    pub p1: usize,
    /// P2 properties checked.
    pub p2: usize,
    /// P3 properties checked.
    pub p3: usize,
}

impl CampaignReport {
    /// Aggregates the campaign into Table 2 rows (one per category).
    pub fn table2(&self, chip: &Chip) -> Vec<Table2Row> {
        let mut rows: BTreeMap<Category, Table2Row> = BTreeMap::new();
        for mi in chip.modules() {
            let row = rows.entry(mi.plan().category).or_insert(Table2Row {
                category: mi.plan().category,
                submodules: 0,
                bugs: 0,
                p0: 0,
                p1: 0,
                p2: 0,
                p3: 0,
            });
            row.submodules += 1;
        }
        for r in &self.records {
            let row = rows.get_mut(&r.category).expect("category exists"); // lint: allow
            match r.ptype {
                PropertyType::ErrorDetection => row.p0 += 1,
                PropertyType::Soundness => row.p1 += 1,
                PropertyType::OutputIntegrity => row.p2 += 1,
                PropertyType::Other => row.p3 += 1,
            }
        }
        // Bugs: seeded defects confirmed by at least one falsified
        // property in the hosting module.
        for (module, bug) in chip.bugs() {
            let hit = self
                .records
                .iter()
                .any(|r| r.module == module && r.verdict.is_falsified());
            if hit {
                let cat = chip
                    .modules()
                    .iter()
                    .find(|m| m.name() == module)
                    .expect("bug module exists") // lint: allow
                    .plan()
                    .category;
                rows.get_mut(&cat).expect("category exists").bugs += 1; // lint: allow
            }
            let _ = bug;
        }
        rows.into_values().collect()
    }

    /// All falsified properties.
    pub fn failures(&self) -> Vec<&PropertyRecord> {
        self.records.iter().filter(|r| r.verdict.is_falsified()).collect()
    }

    /// All properties that ran out of budget.
    pub fn resource_outs(&self) -> Vec<&PropertyRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::ResourceOut { .. }))
            .collect()
    }

    /// Renders the Table-2 reproduction as text.
    pub fn render_table2(&self, chip: &Chip) -> String {
        let rows = self.table2(chip);
        let mut s = String::new();
        let _ = writeln!(s, "Table 2. Number of verified properties");
        let _ = writeln!(s, "{:<8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
            "Module", "#Sub", "#Bug", "P0", "P1", "P2", "P3", "Total");
        let mut tot = (0, 0, 0, 0, 0, 0, 0);
        for r in &rows {
            let total = r.p0 + r.p1 + r.p2 + r.p3;
            let _ = writeln!(s, "{:<8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
                r.category.to_string(), r.submodules, r.bugs, r.p0, r.p1, r.p2, r.p3, total);
            tot.0 += r.submodules;
            tot.1 += r.bugs;
            tot.2 += r.p0;
            tot.3 += r.p1;
            tot.4 += r.p2;
            tot.5 += r.p3;
            tot.6 += total;
        }
        let _ = writeln!(s, "{:<8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
            "Total", tot.0, tot.1, tot.2, tot.3, tot.4, tot.5, tot.6);
        s
    }

    /// Peak **live** BDD nodes across all records — the campaign-wide
    /// high-water mark of the BDD garbage collector, for the bench
    /// live-peak-nodes column.
    pub fn peak_bdd_nodes(&self) -> usize {
        self.records.iter().map(|r| r.stats.bdd_nodes).max().unwrap_or(0)
    }

    /// Total BDD nodes ever allocated across the campaign
    /// (GC-independent; the gap to [`CampaignReport::peak_bdd_nodes`]
    /// is what collection reclaimed).
    pub fn total_bdd_allocated(&self) -> u64 {
        self.records.iter().map(|r| r.stats.bdd_allocated).sum()
    }

    /// Properties whose BDD engines hit the node quota at least once.
    pub fn quota_hit_count(&self) -> usize {
        self.records.iter().filter(|r| r.stats.bdd_quota_hits > 0).count()
    }

    /// Peak live nodes of any single intra-property POBDD worker manager
    /// across the campaign (`CheckStats::worker_bdd`): the per-thread
    /// memory high-water mark when `CheckOptions::pobdd_workers`
    /// fans a hard property out, 0 if the POBDD engine never ran.
    pub fn peak_worker_bdd_nodes(&self) -> usize {
        self.records
            .iter()
            .flat_map(|r| r.stats.worker_bdd.iter().map(|w| w.peak_live_nodes))
            .max()
            .unwrap_or(0)
    }

    /// Widest intra-property worker fan-out observed across the
    /// campaign (number of POBDD worker managers of the widest run).
    pub fn max_pobdd_workers(&self) -> usize {
        self.records.iter().map(|r| r.stats.worker_bdd.len()).max().unwrap_or(0)
    }

    /// Campaign-wide totals of the static pre-analysis stage
    /// (`CheckStats::preanalysis` summed across every record): cones
    /// swept, sequentially-stuck latches found, AND nodes folded away,
    /// and properties concluded without any engine. Surfaced as extra
    /// lines by the table bins — deliberately *not* part of
    /// [`CampaignReport::render_table2`], whose text is byte-compared
    /// across worker counts.
    pub fn preanalysis_totals(&self) -> PreanalysisStats {
        let mut total = PreanalysisStats::default();
        for r in &self.records {
            total.bads_analyzed += r.stats.preanalysis.bads_analyzed;
            total.stuck_latches += r.stats.preanalysis.stuck_latches;
            total.folded_ands += r.stats.preanalysis.folded_ands;
            total.vacuous += r.stats.preanalysis.vacuous;
        }
        total
    }

    /// Properties the pre-analysis stage concluded on its own — proved
    /// vacuous or trivially falsified with **zero** engine invocations.
    pub fn vacuous_count(&self) -> usize {
        self.records.iter().filter(|r| r.stats.preanalysis.vacuous > 0).count()
    }

    /// Fraction of properties proved.
    pub fn proved_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.verdict.is_proved()).count() as f64
            / self.records.len() as f64
    }

    /// One-line JSON summary of the whole campaign, with a **stable
    /// field order** (hand-emitted, no map iteration), so two runs of
    /// the same campaign differ only in `total_time_ms`. This is the
    /// terminal line of the campaign daemon's NDJSON results log and
    /// the machine-readable footer the table bins print — it carries
    /// the pre-analysis aggregates ([`CampaignReport::preanalysis_totals`],
    /// [`CampaignReport::vacuous_count`]) that previously existed only
    /// as ad-hoc printed text.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let pre = self.preanalysis_totals();
        let _ = write!(
            s,
            "{{\"type\":\"summary\",\"properties\":{},\"errors\":{},\"proved\":{},\
             \"falsified\":{},\"resource_out\":{},\"proved_ratio\":{:.6},\
             \"peak_bdd_nodes\":{},\"total_bdd_allocated\":{},\"quota_hits\":{},\
             \"peak_worker_bdd_nodes\":{},\"max_pobdd_workers\":{},\
             \"preanalysis_totals\":{{\"bads_analyzed\":{},\"stuck_latches\":{},\
             \"folded_ands\":{},\"vacuous\":{}}},\"vacuous_count\":{},\
             \"total_time_ms\":{}}}",
            self.records.len(),
            self.errors.len(),
            self.records.iter().filter(|r| r.verdict.is_proved()).count(),
            self.failures().len(),
            self.resource_outs().len(),
            self.proved_ratio(),
            self.peak_bdd_nodes(),
            self.total_bdd_allocated(),
            self.quota_hit_count(),
            self.peak_worker_bdd_nodes(),
            self.max_pobdd_workers(),
            pre.bads_analyzed,
            pre.stuck_latches,
            pre.folded_ands,
            pre.vacuous,
            self.vacuous_count(),
            self.total_time.as_millis(),
        );
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl PropertyRecord {
    /// One-line JSON rendering of this record, with a **stable field
    /// order** (hand-emitted): everything deterministic first, the
    /// wall-clock `duration_ms` last, so two runs of the same check
    /// produce lines that differ only in their final field. One such
    /// line per finished property is the body of the campaign daemon's
    /// NDJSON results log.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"type\":\"property\",\"module\":\"{}\",\"category\":\"{}\",\
             \"vunit\":\"{}\",\"label\":\"{}\",\"ptype\":\"{}\",\"verdict\":",
            json_escape(&self.module),
            self.category,
            json_escape(&self.vunit),
            json_escape(&self.label),
            self.ptype,
        );
        match &self.verdict {
            Verdict::Proved { engine } => {
                let _ = write!(s, "{{\"status\":\"proved\",\"engine\":\"{}\"}}", json_escape(engine));
            }
            Verdict::Falsified(trace) => {
                let _ = write!(
                    s,
                    "{{\"status\":\"falsified\",\"depth\":{},\"bad_index\":{}}}",
                    trace.inputs.len(),
                    trace.bad_index,
                );
            }
            Verdict::ResourceOut { reason } => {
                let _ = write!(
                    s,
                    "{{\"status\":\"resource_out\",\"reason\":\"{}\"}}",
                    json_escape(reason)
                );
            }
        }
        let st = &self.stats;
        let _ = write!(
            s,
            ",\"stats\":{{\"engines\":[{}],\"coi_latches\":{},\"coi_ands\":{},\
             \"bdd_nodes\":{},\"bdd_allocated\":{},\"bdd_quota_hits\":{},\
             \"sat_conflicts\":{},\"iterations\":{},\
             \"preanalysis\":{{\"bads_analyzed\":{},\"stuck_latches\":{},\
             \"folded_ands\":{},\"vacuous\":{}}}}},\"duration_ms\":{}}}",
            st.events
                .iter()
                .map(|e| format!("\"{}\"", json_escape(&e.render())))
                .collect::<Vec<_>>()
                .join(","),
            st.coi_latches,
            st.coi_ands,
            st.bdd_nodes,
            st.bdd_allocated,
            st.bdd_quota_hits,
            st.sat_conflicts,
            st.iterations,
            st.preanalysis.bads_analyzed,
            st.preanalysis.stuck_latches,
            st.preanalysis.folded_ands,
            st.preanalysis.vacuous,
            self.duration.as_millis(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_chipgen::{ChipConfig, Scale};

    #[test]
    fn clean_small_chip_proves_everything() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        let report = run_campaign(&chip, &CampaignConfig::default());
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let failures = report.failures();
        assert!(
            failures.is_empty(),
            "clean chip must verify: {:?}",
            failures
                .iter()
                .map(|f| (&f.module, &f.label, &f.verdict))
                .collect::<Vec<_>>()
        );
        assert!(
            report.resource_outs().is_empty(),
            "budgets must suffice: {:?}",
            report
                .resource_outs()
                .iter()
                .map(|f| (&f.module, &f.label))
                .collect::<Vec<_>>()
        );
        // Census: the small chip checks its planned property counts.
        let expected: usize = chip
            .modules()
            .iter()
            .map(|m| m.plan().p0() + m.plan().p1() + m.plan().p2() + m.plan().p3)
            .sum();
        assert_eq!(report.records.len(), expected);
        // Stats plumbing: at least one property exercised a BDD engine,
        // and peak live can never exceed total allocations.
        assert!(report.peak_bdd_nodes() > 0);
        assert!(report.total_bdd_allocated() >= report.peak_bdd_nodes() as u64);
        assert_eq!(report.quota_hit_count(), 0, "default budgets must not hit the quota");
    }

    #[test]
    fn buggy_small_chip_finds_all_seven_bugs() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
        let report = run_campaign(&chip, &CampaignConfig::default());
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        // Every seeded bug's module has at least one falsified property.
        for (module, bug) in chip.bugs() {
            let hits: Vec<&PropertyRecord> = report
                .records
                .iter()
                .filter(|r| r.module == module && r.verdict.is_falsified())
                .collect();
            assert!(!hits.is_empty(), "bug {bug} in {module} missed by the campaign");
            // The failing property type matches Table 3.
            assert!(
                hits.iter().any(|h| h.ptype == bug.property_type()),
                "bug {bug} should fail a {} property; failing: {:?}",
                bug.property_type(),
                hits.iter().map(|h| (h.ptype, &h.label)).collect::<Vec<_>>()
            );
        }
        // No spurious failures in unbugged modules.
        let bug_modules: std::collections::BTreeSet<String> =
            chip.bugs().into_iter().map(|(m, _)| m).collect();
        for r in report.failures() {
            assert!(
                bug_modules.contains(&r.module),
                "spurious failure in clean module {}: {}",
                r.module,
                r.label
            );
        }
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        // Determinism is an executor property, not an engine property, so
        // the deliberately small Fig.7 budgets keep this test fast: the
        // verdict mix (proofs, falsifications, resource-outs) still has to
        // be byte-for-byte stable across worker counts.
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
        let check = CheckOptions::tiny_budget();
        let serial = run_campaign(&chip, &CampaignConfig { check: check.clone(), workers: 1 });
        let parallel = run_campaign(&chip, &CampaignConfig { check, workers: 4 });
        assert_eq!(serial.errors, parallel.errors);
        assert_eq!(serial.records.len(), parallel.records.len());
        for (a, b) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(a.module, b.module);
            assert_eq!(a.vunit, b.vunit);
            assert_eq!(a.label, b.label);
            assert_eq!(a.ptype, b.ptype);
            assert_eq!(a.verdict, b.verdict, "{}/{}", a.module, a.label);
        }
        // The rendered report (which carries no wall-clock noise) is
        // byte-identical — the determinism contract of the executor.
        assert_eq!(serial.render_table2(&chip), parallel.render_table2(&chip));
    }

    #[test]
    fn intra_property_worker_surfaces_aggregate() {
        let mut report = CampaignReport::default();
        assert_eq!(report.peak_worker_bdd_nodes(), 0);
        assert_eq!(report.max_pobdd_workers(), 0);
        let stats = CheckStats {
            worker_bdd: vec![
                veridic_mc::BddWorkerStats {
                    peak_live_nodes: 10,
                    allocated: 100,
                    ..Default::default()
                },
                veridic_mc::BddWorkerStats {
                    peak_live_nodes: 25,
                    allocated: 80,
                    ..Default::default()
                },
            ],
            ..CheckStats::default()
        };
        report.records.push(PropertyRecord {
            module: "m".into(),
            category: Category::A,
            vunit: "v".into(),
            label: "l".into(),
            ptype: PropertyType::Soundness,
            verdict: Verdict::Proved { engine: "pobdd-umc" },
            stats,
            duration: Duration::default(),
        });
        assert_eq!(report.peak_worker_bdd_nodes(), 25, "max over any single worker manager");
        assert_eq!(report.max_pobdd_workers(), 2, "widest fan-out observed");
    }

    #[test]
    fn preanalysis_totals_aggregate_across_records() {
        let mut report = CampaignReport::default();
        assert_eq!(report.preanalysis_totals(), PreanalysisStats::default());
        assert_eq!(report.vacuous_count(), 0);
        for (stuck, folded, vacuous) in [(2usize, 5usize, 0usize), (1, 3, 1)] {
            let stats = CheckStats {
                preanalysis: veridic_mc::PreanalysisStats {
                    bads_analyzed: 1,
                    stuck_latches: stuck,
                    folded_ands: folded,
                    vacuous,
                },
                ..CheckStats::default()
            };
            report.records.push(PropertyRecord {
                module: "m".into(),
                category: Category::A,
                vunit: "v".into(),
                label: "l".into(),
                ptype: PropertyType::Soundness,
                verdict: Verdict::Proved { engine: "preanalysis" },
                stats,
                duration: Duration::default(),
            });
        }
        let totals = report.preanalysis_totals();
        assert_eq!(totals.bads_analyzed, 2);
        assert_eq!(totals.stuck_latches, 3);
        assert_eq!(totals.folded_ands, 8);
        assert_eq!(totals.vacuous, 1);
        assert_eq!(report.vacuous_count(), 1, "only the second record concluded statically");
    }

    #[test]
    fn effective_workers_resolves_auto() {
        let auto = CampaignConfig::default();
        assert!(auto.effective_workers() >= 1);
        let pinned = CampaignConfig { workers: 3, ..Default::default() };
        assert_eq!(pinned.effective_workers(), 3);
    }

    #[test]
    fn table2_shape_on_small_chip() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: true });
        let report = run_campaign(&chip, &CampaignConfig::default());
        let rows = report.table2(&chip);
        assert_eq!(rows.len(), 5);
        let text = report.render_table2(&chip);
        assert!(text.contains("Table 2"));
        assert!(text.contains("Total"));
        // Bug census at small scale: same placement as full scale.
        let bugs: usize = rows.iter().map(|r| r.bugs).sum();
        assert_eq!(bugs, 7);
    }
}
