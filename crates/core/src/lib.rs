//! # veridic-core
//!
//! The paper's contribution: a systematic methodology for formally
//! checking **data integrity** on parity-protected designs.
//!
//! The pieces, mirroring the paper's sections:
//!
//! * [`checkpoint`] — integrity checkpoints extracted from the design
//!   (§2: ">1300 checkpoints derived from the chip specification").
//! * [`verifiable`] — the Verifiable-RTL transform: one injection
//!   selector per entity, `I_ERR_INJ_C`/`I_ERR_INJ_D` ports, tie-offs in
//!   parents (§4.1, Fig. 6).
//! * [`stereotype`] — the three stereotype leaf-module properties: P0
//!   *ability of error detection*, P1 *soundness of internal states*, P2
//!   *output data integrity* (§3, Figs. 2–4), plus P3 legal-state checks.
//! * [`partition`] — Divide-and-Conquer property partitioning for
//!   properties that exhaust the checker's resources (§4.2, Fig. 7).
//! * [`flow`] — the verification design flow as an executable campaign
//!   (§4, Fig. 5) with Table-2 reporting.
//! * [`impact`] — area/timing/ECO impact of the injection feature (§6.3,
//!   Table 4).
//!
//! ```
//! use veridic_chipgen::{build_leaf, build_plans, Scale};
//! use veridic_core::verifiable::make_verifiable;
//! use veridic_core::stereotype::generate_all;
//!
//! let plan = &build_plans(Scale::Small)[0];
//! let vm = make_verifiable(&build_leaf(plan, None))?;
//! let vunits = generate_all(&vm)?;
//! assert!(vunits.len() >= 3); // edetect, soundness, integrity
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod flow;
pub mod impact;
pub mod partition;
pub mod stereotype;
pub mod verifiable;
