//! The three stereotype properties (paper §3, Figures 2–4) plus the
//! "other" (P3) legal-state properties — generated as PSL source text
//! from a module's checkpoint inventory, then parsed and compiled with
//! the ordinary `veridic-psl` pipeline. Designers never write PSL by
//! hand; that is the productivity claim of the methodology.

use crate::checkpoint::Inventory;
use crate::verifiable::{VerifiableModule, EC_PORT, ED_PORT};
use std::fmt::Write as _;
use veridic_chipgen::PropertyType;
use veridic_psl::{compile_vunit, parse_psl, CompiledVUnit, PslCompileError, PslParseError, VUnit};

/// A generated vunit with its classification.
#[derive(Clone, Debug)]
pub struct GeneratedVUnit {
    /// The property type every directive in this vunit belongs to.
    pub ptype: PropertyType,
    /// PSL source text.
    pub source: String,
    /// Parsed form.
    pub unit: VUnit,
}

/// Generation + compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StereotypeError {
    /// The generated text failed to parse (generator bug).
    Parse(PslParseError),
    /// The parsed vunit failed to compile against the module.
    Compile(PslCompileError),
}

impl std::fmt::Display for StereotypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StereotypeError::Parse(e) => write!(f, "{e}"),
            StereotypeError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StereotypeError {}

impl From<PslParseError> for StereotypeError {
    fn from(e: PslParseError) -> Self {
        StereotypeError::Parse(e)
    }
}

impl From<PslCompileError> for StereotypeError {
    fn from(e: PslCompileError) -> Self {
        StereotypeError::Compile(e)
    }
}

fn he_ref(inv: &Inventory, bit: u32) -> String {
    if inv.he_width == 1 {
        "HE".to_string()
    } else {
        format!("HE[{bit}]")
    }
}

fn ec_ref(n: usize, i: usize) -> String {
    if n == 1 {
        EC_PORT.to_string()
    } else {
        format!("{EC_PORT}[{i}]")
    }
}

fn ed_parity_ref(ed_width: u32, w: u32) -> String {
    if w == ed_width {
        format!("^{ED_PORT}")
    } else {
        format!("^{ED_PORT}[{}:0]", w - 1)
    }
}

/// Generates the error-detection-ability vunit (Figure 2): one `pCheck1`
/// per injectable entity and one `pCheck2` per parity-protected input
/// group.
pub fn edetect_vunit(vm: &VerifiableModule) -> String {
    let inv = &vm.inventory;
    let n = inv.entities.len();
    let mut s = String::new();
    let _ = writeln!(s, "vunit {}_edetect ({}) {{ // check error detection ability", inv.module, inv.module);
    for (i, ent) in inv.entities.iter().enumerate() {
        let _ = writeln!(
            s,
            "    property pCheck1_{i} = always (({} & ~({})) -> next {});",
            ec_ref(n, i),
            ed_parity_ref(vm.ed_width, ent.width),
            he_ref(inv, ent.he_bit),
        );
        let _ = writeln!(s, "    assert   pCheck1_{i}; // {} should be odd parity", ent.name);
    }
    for (g, group) in inv.input_groups.iter().enumerate() {
        match &group.guard {
            None => {
                let _ = writeln!(
                    s,
                    "    property pCheck2_{g} = always ( ~(^{}) -> next {});",
                    group.name,
                    he_ref(inv, group.he_bit),
                );
            }
            Some(guard) => {
                // Validity-guarded group (macro warm-up contract).
                let _ = writeln!(
                    s,
                    "    property pCheck2_{g} = always (({guard} & ~(^{})) -> next {});",
                    group.name,
                    he_ref(inv, group.he_bit),
                );
            }
        }
        let _ = writeln!(s, "    assert   pCheck2_{g}; // {} should be odd parity", group.name);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Generates the soundness vunit (Figure 3): assuming clean inputs and no
/// injection, `HE` never fires (one assertion per HE bit).
pub fn soundness_vunit(vm: &VerifiableModule) -> String {
    let inv = &vm.inventory;
    let mut s = String::new();
    let _ = writeln!(s, "vunit {}_soundness ({}) {{ // soundness check", inv.module, inv.module);
    write_assumptions(&mut s, vm);
    for j in 0..inv.he_width {
        let _ = writeln!(s, "    property pNoError_{j} = never ( {} );", he_ref(inv, j));
        let _ = writeln!(s, "    assert   pNoError_{j}; // then no error is reported");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Generates the output-data-integrity vunit (Figure 4): assuming clean
/// inputs and no injection, every output group keeps odd parity.
pub fn integrity_vunit(vm: &VerifiableModule) -> String {
    let inv = &vm.inventory;
    let mut s = String::new();
    let _ = writeln!(s, "vunit {}_integrity ({}) {{ // integrity check", inv.module, inv.module);
    write_assumptions(&mut s, vm);
    for (j, group) in inv.output_groups.iter().enumerate() {
        let _ = writeln!(
            s,
            "    property pIntegrityO_{j} = always ( ^{} );",
            group.name
        );
        let _ = writeln!(s, "    assert   pIntegrityO_{j}; // then integrity of {} holds", group.name);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Generates the "other properties" (P3) vunit: legal-state checks for
/// FSMs with a declared legal range. Returns `None` when the module has
/// no P3 checkpoints.
pub fn other_vunit(vm: &VerifiableModule) -> Option<String> {
    let inv = &vm.inventory;
    let legal: Vec<_> = inv.entities.iter().filter(|e| e.legal_max.is_some()).collect();
    if legal.is_empty() {
        return None;
    }
    let mut s = String::new();
    let _ = writeln!(s, "vunit {}_other ({}) {{ // legal state checks", inv.module, inv.module);
    let _ = writeln!(s, "    property pNoErrInjection = always ( ~(|{EC_PORT}) );");
    let _ = writeln!(s, "    assume   pNoErrInjection;");
    for (k, ent) in legal.iter().enumerate() {
        let max = ent.legal_max.expect("filtered on legal_max"); // lint: allow
        let data_w = ent.width - 1;
        // Illegal values: max+1 ..= 2^data_w - 1, enumerated as equality
        // disjuncts (the boolean layer has no magnitude comparison).
        let mut disjuncts = Vec::new();
        for v in (max + 1)..(1 << data_w) {
            disjuncts.push(format!(
                "({}[{}:0] == {}'b{:0width$b})",
                ent.name,
                data_w - 1,
                data_w,
                v,
                width = data_w as usize
            ));
        }
        let body = disjuncts.join(" | ");
        let _ = writeln!(s, "    property pLegal_{k} = never ( {body} );");
        let _ = writeln!(s, "    assert   pLegal_{k}; // {} stays in 0..={max}", ent.name);
    }
    let _ = writeln!(s, "}}");
    Some(s)
}

fn write_assumptions(s: &mut String, vm: &VerifiableModule) {
    let inv = &vm.inventory;
    for (g, group) in inv.input_groups.iter().enumerate() {
        let _ = writeln!(
            s,
            "    property pIntegrityI_{g} = always ( ^{} );",
            group.name
        );
        let _ = writeln!(s, "    assume   pIntegrityI_{g}; // assumption for {}", group.name);
    }
    let _ = writeln!(s, "    property pNoErrInjection = always ( ~(|{EC_PORT}) );");
    let _ = writeln!(s, "    assume   pNoErrInjection; // error injection is disabled");
}

/// Generates, parses and compiles all stereotype vunits of a transformed
/// module. Order: P0 (edetect), P1 (soundness), P2 (integrity), P3
/// (other, when present).
///
/// # Errors
///
/// Returns [`StereotypeError`] if generated text fails to parse or
/// compile — both indicate generator bugs, but are surfaced as errors so
/// the flow can report the offending module.
pub fn generate_all(
    vm: &VerifiableModule,
) -> Result<Vec<(GeneratedVUnit, CompiledVUnit)>, StereotypeError> {
    let mut sources = vec![
        (PropertyType::ErrorDetection, edetect_vunit(vm)),
        (PropertyType::Soundness, soundness_vunit(vm)),
        (PropertyType::OutputIntegrity, integrity_vunit(vm)),
    ];
    if let Some(other) = other_vunit(vm) {
        sources.push((PropertyType::Other, other));
    }
    let mut out = Vec::new();
    for (ptype, source) in sources {
        let units = parse_psl(&source)?;
        assert_eq!(units.len(), 1, "one vunit per stereotype");
        let unit = units.into_iter().next().expect("one unit"); // lint: allow
        let compiled = compile_vunit(&unit, &vm.module)?;
        out.push((GeneratedVUnit { ptype, source, unit }, compiled));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifiable::make_verifiable;
    use veridic_chipgen::{build_leaf, build_plans, Scale, SpecialKind};

    fn vm_for(special: SpecialKind) -> VerifiableModule {
        let plan = build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.special == special)
            .unwrap();
        make_verifiable(&build_leaf(&plan, None)).unwrap()
    }

    #[test]
    fn all_vunits_parse_and_compile_for_all_modules() {
        for plan in build_plans(Scale::Small) {
            let vm = make_verifiable(&build_leaf(&plan, None)).unwrap();
            let all = generate_all(&vm)
                .unwrap_or_else(|e| panic!("{}: {e}", plan.name));
            // Census: assertion counts match the plan.
            let count = |t: PropertyType| -> usize {
                all.iter()
                    .filter(|(g, _)| g.ptype == t)
                    .map(|(_, c)| c.asserts.len())
                    .sum()
            };
            assert_eq!(count(PropertyType::ErrorDetection), plan.p0(), "{} P0", plan.name);
            assert_eq!(count(PropertyType::Soundness), plan.p1(), "{} P1", plan.name);
            assert_eq!(count(PropertyType::OutputIntegrity), plan.p2(), "{} P2", plan.name);
            assert_eq!(count(PropertyType::Other), plan.p3, "{} P3", plan.name);
        }
    }

    #[test]
    fn figure2_shape() {
        let vm = vm_for(SpecialKind::Generic);
        let src = edetect_vunit(&vm);
        assert!(src.contains("_edetect ("), "{src}");
        assert!(src.contains("-> next HE"), "{src}");
        assert!(src.contains(&format!("~(^{ED_PORT}", )), "{src}");
        assert!(src.contains("assert   pCheck1_0;"), "{src}");
    }

    #[test]
    fn figure3_shape() {
        let vm = vm_for(SpecialKind::Generic);
        let src = soundness_vunit(&vm);
        assert!(src.contains("_soundness ("), "{src}");
        assert!(src.contains("assume   pIntegrityI_0;"), "{src}");
        assert!(src.contains("pNoErrInjection = always ( ~(|I_ERR_INJ_C) );"), "{src}");
        assert!(src.contains("never ( HE"), "{src}");
    }

    #[test]
    fn figure4_shape() {
        let vm = vm_for(SpecialKind::Generic);
        let src = integrity_vunit(&vm);
        assert!(src.contains("_integrity ("), "{src}");
        assert!(src.contains("always ( ^O0 )"), "{src}");
    }

    #[test]
    fn macro_guard_appears_in_edetect() {
        let vm = vm_for(SpecialKind::MacroInterface);
        let src = edetect_vunit(&vm);
        assert!(src.contains("warm_done & ~(^MACRO_SIG)"), "{src}");
    }

    #[test]
    fn p3_vunit_enumerates_illegal_states() {
        let plan = build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.p3 > 0)
            .unwrap();
        let vm = make_verifiable(&build_leaf(&plan, None)).unwrap();
        let src = other_vunit(&vm).expect("P3 module yields an other-vunit");
        assert!(src.contains("3'b101"), "{src}");
        assert!(src.contains("3'b110"), "{src}");
        assert!(src.contains("3'b111"), "{src}");
        assert!(src.contains("pLegal_0"), "{src}");
    }
}
