//! Divide-and-Conquer property partitioning (paper §4.2, Figure 7).
//!
//! When a property is "beyond the power of available tools" (in veridic:
//! deterministic resource-out), the verification engineer splits it at
//! intermediate parity check points: each upstream checkpoint is proven
//! on a *cut* module where its parity-protected predecessors became free
//! inputs carrying integrity assumptions, and the original property is
//! finally proven assuming the intermediates.
//!
//! Soundness of the decomposition is the standard acyclic
//! assume-guarantee argument: step *k* assumes only checkpoints
//! guaranteed by steps *< k* (checked mechanically by
//! [`decomposition_is_acyclic`]), so the conjunction of the step
//! properties implies the original property on the uncut module.

use crate::checkpoint::Inventory;
use crate::verifiable::{VerifiableModule, EC_PORT};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use veridic_mc::{CheckOptions, CheckResult, Portfolio};
#[cfg(test)]
use veridic_mc::{check, Verdict};
use veridic_netlist::{Expr, ExprId, Module, NetId, PortDir};
use veridic_psl::{compile_vunit, parse_psl};

/// One proof obligation of a partitioned property.
#[derive(Clone, Debug)]
pub struct PartitionStep {
    /// Human-readable name (`prove ^ent3_datapath`).
    pub name: String,
    /// The cut module this step is checked on.
    pub module: Module,
    /// The generated vunit source.
    pub vunit_src: String,
    /// Names of checkpoints this step *assumes* (cut inputs).
    pub assumes: Vec<String>,
    /// Name of the checkpoint this step *guarantees*.
    pub guarantees: String,
}

/// Replaces the registers driving `cut_nets` with input ports: the
/// classic cut-point abstraction. References to the nets are untouched;
/// downstream logic now sees a free input.
///
/// # Panics
///
/// Panics if a cut net is not driven by a register.
pub fn cut_at(m: &Module, cut_nets: &[NetId]) -> Module {
    let mut out = m.clone();
    for net in cut_nets {
        let idx = out
            .regs
            .iter()
            .position(|r| r.q == *net)
            .unwrap_or_else(|| panic!("cut net {} is not a register", m.net(*net).name));
        out.regs.remove(idx);
        out.expose(*net, PortDir::Input);
        out.net_mut(*net).attrs.insert("cut".into(), "true".into());
    }
    out.name = format!("{}_cut", m.name);
    out
}

/// Entities (by net) in the transitive combinational fanin of `expr`,
/// stopping at registers and inputs.
fn entity_sources(m: &Module, inv: &Inventory, expr: ExprId) -> BTreeSet<NetId> {
    let entity_nets: BTreeSet<NetId> = inv.entities.iter().map(|e| e.net).collect();
    let assign_of: BTreeMap<NetId, ExprId> = m.assigns.iter().copied().collect();
    let mut out = BTreeSet::new();
    let mut seen = BTreeSet::new();
    let mut stack: Vec<NetId> = m.arena.support(expr);
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if entity_nets.contains(&n) {
            out.insert(n);
            continue; // stop at parity-protected state
        }
        if m.reg_for(n).is_some() {
            continue; // non-checkpoint state: stop
        }
        if let Some(e) = assign_of.get(&n) {
            stack.extend(m.arena.support(*e));
        }
    }
    out
}

/// Builds the partition of one output-integrity property (Figure 7):
/// a step per upstream entity in topological order, then the final step
/// for the output itself.
///
/// # Errors
///
/// Returns an error string if the entity dependency graph is cyclic
/// (mutually-fed entities cannot be cut soundly by this scheme).
pub fn partition_output_integrity(
    vm: &VerifiableModule,
    out_group: usize,
) -> Result<Vec<PartitionStep>, String> {
    let m = &vm.module;
    let inv = &vm.inventory;
    let group = inv
        .output_groups
        .get(out_group)
        .ok_or_else(|| format!("module {} has no output group {out_group}", m.name))?;
    let (_, out_expr) = m
        .assigns
        .iter()
        .find(|(n, _)| *n == group.net)
        .ok_or_else(|| format!("output {} has no driver", group.name))?;

    // Dependency graph over entities feeding the output.
    let final_sources = entity_sources(m, inv, *out_expr);
    let mut needed: BTreeSet<NetId> = BTreeSet::new();
    let mut deps: BTreeMap<NetId, BTreeSet<NetId>> = BTreeMap::new();
    let mut work: Vec<NetId> = final_sources.iter().copied().collect();
    while let Some(x) = work.pop() {
        if !needed.insert(x) {
            continue;
        }
        let reg = m.reg_for(x).expect("entity has a register"); // lint: allow
        let mut parents = entity_sources(m, inv, reg.next);
        parents.remove(&x); // self-reference (hold paths) is not a dependency
        for p in &parents {
            work.push(*p);
        }
        deps.insert(x, parents);
    }
    // Topological order (Kahn).
    let mut order: Vec<NetId> = Vec::new();
    let mut remaining: BTreeSet<NetId> = needed.clone();
    while !remaining.is_empty() {
        let ready: Vec<NetId> = remaining
            .iter()
            .copied()
            .filter(|x| deps[x].iter().all(|p| !remaining.contains(p)))
            .collect();
        if ready.is_empty() {
            return Err(format!(
                "entity dependency cycle in {} — cut-point partitioning is unsound here",
                m.name
            ));
        }
        for x in ready {
            order.push(x);
            remaining.remove(&x);
        }
    }

    let mut steps = Vec::new();
    for x in &order {
        let parents: Vec<NetId> = deps[x].iter().copied().collect();
        let cut = cut_at(m, &parents);
        let x_name = m.net(*x).name.clone();
        let vunit_src = step_vunit(&cut, inv, &parents, &format!("^{x_name}"), &x_name, m);
        steps.push(PartitionStep {
            name: format!("prove ^{x_name}"),
            module: cut,
            vunit_src,
            assumes: parents.iter().map(|p| m.net(*p).name.clone()).collect(),
            guarantees: x_name,
        });
    }
    // Final step: the output property with all its direct sources cut.
    let parents: Vec<NetId> = final_sources.iter().copied().collect();
    let cut = cut_at(m, &parents);
    let vunit_src = step_vunit(&cut, inv, &parents, &format!("^{}", group.name), &group.name, m);
    steps.push(PartitionStep {
        name: format!("prove ^{}", group.name),
        module: cut,
        vunit_src,
        assumes: parents.iter().map(|p| m.net(*p).name.clone()).collect(),
        guarantees: group.name.clone(),
    });
    Ok(steps)
}

fn step_vunit(
    cut: &Module,
    inv: &Inventory,
    cut_nets: &[NetId],
    assertion: &str,
    target: &str,
    orig: &Module,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "vunit part_{target} ({}) {{", cut.name);
    for g in &inv.input_groups {
        let _ = writeln!(s, "    property pIn_{0} = always ( ^{0} );", g.name);
        let _ = writeln!(s, "    assume   pIn_{};", g.name);
    }
    let _ = writeln!(s, "    property pNoInj = always ( ~(|{EC_PORT}) );");
    let _ = writeln!(s, "    assume   pNoInj;");
    for n in cut_nets {
        let name = orig.net(*n).name.clone();
        let _ = writeln!(s, "    property pCut_{0} = always ( ^{0} );", name);
        let _ = writeln!(s, "    assume   pCut_{name}; // guaranteed by an earlier corn");
    }
    let _ = writeln!(s, "    property pGoal = always ( {assertion} );");
    let _ = writeln!(s, "    assert   pGoal;");
    let _ = writeln!(s, "}}");
    s
}

/// Mechanically checks the assume-guarantee DAG: every step's assumed
/// checkpoints must be guaranteed by an earlier step or be primary
/// inputs of the original module.
pub fn decomposition_is_acyclic(steps: &[PartitionStep], orig: &Module) -> Result<(), String> {
    let inputs: BTreeSet<String> = orig.inputs().map(|p| p.name.clone()).collect();
    let mut proven: BTreeSet<&str> = BTreeSet::new();
    for step in steps {
        for a in &step.assumes {
            if !proven.contains(a.as_str()) && !inputs.contains(a) {
                return Err(format!(
                    "step '{}' assumes '{a}' before it is guaranteed",
                    step.name
                ));
            }
        }
        proven.insert(&step.guarantees);
    }
    Ok(())
}

/// Per-worker BDD accounting of one [`run_partition_with_workers`] run:
/// with the deterministic round-robin corn assignment, both figures are
/// reproducible for a fixed worker count (they feed the bench
/// `peak_live` lines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionWorkerStats {
    /// Largest per-check peak of any corn this worker ran.
    pub peak_bdd_nodes: usize,
    /// Total BDD nodes allocated across this worker's corns.
    pub bdd_allocated: u64,
}

/// Outcome of running one partitioned proof.
#[derive(Clone, Debug)]
pub struct PartitionRun {
    /// Per-step results, in proof order.
    pub steps: Vec<(String, CheckResult)>,
    /// True if every step proved.
    pub all_proved: bool,
    /// Per-worker accounting, in worker-index order (a single entry for
    /// a serial run).
    pub worker_stats: Vec<PartitionWorkerStats>,
}

/// Compiles and checks one partition step under the shared portfolio.
fn run_step(step: &PartitionStep, portfolio: &Portfolio, opts: &CheckOptions) -> (String, CheckResult) {
    let units = parse_psl(&step.vunit_src).expect("step vunit parses"); // lint: allow
    let compiled = compile_vunit(&units[0], &step.module).expect("step vunit compiles"); // lint: allow
    let lowered = compiled.module.to_aig().expect("cut module lowers"); // lint: allow
    let mut aig = lowered.aig.clone();
    for (label, net) in &compiled.asserts {
        aig.add_bad(label.clone(), lowered.bit(*net, 0));
    }
    for (label, net) in &compiled.assumes {
        aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
    }
    (step.name.clone(), portfolio.check(&aig, opts))
}

/// Checks every step of a partition under the given budgets, serially
/// (one worker). See [`run_partition_with_workers`] for the fan-out
/// variant.
///
/// # Panics
///
/// Panics if a generated step vunit fails to parse or compile (generator
/// bug).
pub fn run_partition(steps: &[PartitionStep], opts: &CheckOptions) -> PartitionRun {
    run_partition_with_workers(steps, opts, 1)
}

/// Checks every step of a partition, fanning the corns out across
/// `workers` threads (`0` = one per available CPU).
///
/// Corn assignment is a deterministic round-robin — worker `i` runs
/// steps `i, i + W, i + 2W, …` — and results are merged back in step
/// order, so the run is reproducible for any worker count: the verdict
/// list is identical to the serial run, and each worker's accounting in
/// [`PartitionRun::worker_stats`] is stable for a fixed `W` (the
/// determinism contract the `fig7/partitioned_parallel` bench leans
/// on). Each corn's `check` owns its engines; nothing is shared across
/// threads.
///
/// # Panics
///
/// Panics if a generated step vunit fails to parse or compile (generator
/// bug).
pub fn run_partition_with_workers(
    steps: &[PartitionStep],
    opts: &CheckOptions,
    workers: usize,
) -> PartitionRun {
    // One engine policy for the whole partition, shared by reference
    // across the corn workers (a `Portfolio` owns no per-run state).
    run_partition_with_portfolio(steps, opts, workers, &Portfolio::default())
}

/// [`run_partition_with_workers`] under an explicit engine
/// [`Portfolio`]: every corn check is scheduled by `portfolio` instead
/// of the default cascade — the partition-layer analogue of
/// `run_campaign_with_portfolio`.
pub fn run_partition_with_portfolio(
    steps: &[PartitionStep],
    opts: &CheckOptions,
    workers: usize,
    portfolio: &Portfolio,
) -> PartitionRun {
    let workers = resolve_workers(workers, steps.len());
    let assignment: Vec<Vec<usize>> =
        (0..workers).map(|wid| (wid..steps.len()).step_by(workers).collect()).collect();
    run_assigned(steps, opts, portfolio, &assignment)
}

/// [`run_partition_with_portfolio`] with an affinity-guided corn→worker
/// assignment instead of the round-robin: corns are clustered by the
/// Jaccard similarity of their checkpoint supports (each corn's assumed
/// plus guaranteed checkpoint names) via
/// [`veridic_aig::structure::affinity_clusters`], at most one cluster
/// per worker, so corns cutting the same checkpoints — whose cones
/// share most of their logic — run on the same thread back to back
/// instead of being scattered by position.
///
/// Each corn's check is still independent (own engines, own managers),
/// and results are merged in step order, so the verdict list, per-corn
/// stats and `all_proved` are identical to [`run_partition_with_workers`]
/// for any worker count; only which thread runs which corn — and hence
/// the [`PartitionRun::worker_stats`] grouping — moves. The clustering
/// is deterministic, so the grouping is reproducible for a fixed `W`.
pub fn run_partition_with_affinity(
    steps: &[PartitionStep],
    opts: &CheckOptions,
    workers: usize,
    portfolio: &Portfolio,
) -> PartitionRun {
    let workers = resolve_workers(workers, steps.len());
    run_assigned(steps, opts, portfolio, &affinity_assignment(steps, workers))
}

/// Resolves a requested worker count (`0` = one per available CPU),
/// clamped to the step count.
fn resolve_workers(requested: usize, steps: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
    .min(steps.max(1))
}

/// Clusters the step indices into at most `workers` groups by shared
/// checkpoint support. The support of a corn is the set of checkpoint
/// names it assumes plus the one it guarantees — the cut boundary, so
/// two corns overlap exactly when one's guaranteed checkpoint is the
/// other's assumption (adjacent stages of a chain) or they assume the
/// same upstream entity.
fn affinity_assignment(steps: &[PartitionStep], workers: usize) -> Vec<Vec<usize>> {
    let mut ids: BTreeMap<&str, u32> = BTreeMap::new();
    for step in steps {
        for name in step.assumes.iter().chain(std::iter::once(&step.guarantees)) {
            let next = ids.len() as u32;
            ids.entry(name.as_str()).or_insert(next);
        }
    }
    let supports: Vec<Vec<u32>> = steps
        .iter()
        .map(|step| {
            let mut s: Vec<u32> = step
                .assumes
                .iter()
                .chain(std::iter::once(&step.guarantees))
                .map(|name| ids[name.as_str()])
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    let atoms: Vec<Vec<usize>> = (0..steps.len()).map(|i| vec![i]).collect();
    veridic_aig::structure::affinity_clusters(&supports, &atoms, workers)
}

/// The shared fan-out: runs `assignment[wid]`'s steps on worker `wid`
/// and merges the results back in step order.
fn run_assigned(
    steps: &[PartitionStep],
    opts: &CheckOptions,
    portfolio: &Portfolio,
    assignment: &[Vec<usize>],
) -> PartitionRun {
    let per_worker: Vec<Vec<(usize, (String, CheckResult))>> = if assignment.len() <= 1 {
        vec![steps.iter().enumerate().map(|(i, s)| (i, run_step(s, portfolio, opts))).collect()]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = assignment
                .iter()
                .map(|owned| {
                    s.spawn(move || {
                        owned
                            .iter()
                            .map(|&i| (i, run_step(&steps[i], portfolio, opts)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked")) // lint: allow
                .collect()
        })
    };
    let worker_stats = per_worker
        .iter()
        .map(|corns| PartitionWorkerStats {
            peak_bdd_nodes: corns.iter().map(|(_, (_, r))| r.stats.bdd_nodes).max().unwrap_or(0),
            bdd_allocated: corns.iter().map(|(_, (_, r))| r.stats.bdd_allocated).sum(),
        })
        .collect();
    // Merge in step order, never completion order.
    let mut slots: Vec<Option<(String, CheckResult)>> = (0..steps.len()).map(|_| None).collect();
    for (i, result) in per_worker.into_iter().flatten() {
        slots[i] = Some(result);
    }
    let results: Vec<(String, CheckResult)> =
        slots.into_iter().map(|r| r.expect("every step ran")).collect(); // lint: allow
    let all = results.iter().all(|(_, r)| r.verdict.is_proved());
    PartitionRun { steps: results, all_proved: all, worker_stats }
}

/// Builds the Figure-7 demonstration module: a deep chain of
/// parity-propagating datapath registers with hold enables. The
/// monolithic output-integrity cone spans the whole chain (and resists
/// plain k-induction because held stages can start in arbitrary states),
/// while each partitioned corn spans a single stage.
pub fn demo_chain_module(stages: usize) -> Module {
    assert!(stages >= 2, "need at least two stages");
    let mut m = Module::new("chain");
    let i0 = m.add_port("I0", PortDir::Input, 4);
    m.net_mut(i0).attrs.insert("checkpoint.kind".into(), "input_group".into());
    m.net_mut(i0).attrs.insert("checkpoint.index".into(), "0".into());
    m.net_mut(i0).attrs.insert("checkpoint.he_bit".into(), "0".into());
    let en = m.add_port("EN", PortDir::Input, stages as u32);
    m.net_mut(en).attrs.insert("checkpoint.kind".into(), "control".into());
    let mut prev = i0;
    let mut checker_bits = Vec::new();
    for k in 0..stages {
        let q = m.add_net(format!("dp{k}"), 4);
        let sprev = m.sig(prev);
        let si = m.sig(i0);
        // Parity-propagating mix: prev ^ I0 ^ 4'b0001 keeps odd parity
        // from odd-parity operands (3 odd terms).
        let x1 = m.arena.add(Expr::Xor(sprev, si));
        let c = m.lit(4, 1);
        let mixed = m.arena.add(Expr::Xor(x1, c));
        let sq = m.sig(q);
        let enb = m.sig_bit(en, k as u32);
        let nxt = m.arena.add(Expr::Mux { cond: enb, then_: mixed, else_: sq });
        let mut reset = veridic_netlist::Value::zero(4);
        reset.set_bit(3, true);
        m.add_reg(q, nxt, reset);
        let attrs = &mut m.net_mut(q).attrs;
        attrs.insert("checkpoint.kind".into(), "entity".into());
        attrs.insert("checkpoint.entity_kind".into(), "datapath".into());
        attrs.insert("checkpoint.index".into(), k.to_string());
        attrs.insert("checkpoint.he_bit".into(), "0".into());
        let sq2 = m.sig(q);
        let p = m.arena.add(Expr::RedXor(sq2));
        let bad = m.arena.add(Expr::Not(p));
        checker_bits.push(bad);
        prev = q;
    }
    let he = m.add_port("HE", PortDir::Output, 1);
    m.net_mut(he).attrs.insert("checkpoint.kind".into(), "he".into());
    let he_expr = checker_bits
        .into_iter()
        .reduce(|a, b| m.arena.add(Expr::Or(a, b)))
        .expect("stages >= 2"); // lint: allow
    m.assign(he, he_expr);
    let o = m.add_port("O0", PortDir::Output, 4);
    m.net_mut(o).attrs.insert("checkpoint.kind".into(), "output_group".into());
    m.net_mut(o).attrs.insert("checkpoint.index".into(), "0".into());
    let sprev = m.sig(prev);
    m.assign(o, sprev);
    m.validate().expect("chain module is well-formed"); // lint: allow
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifiable::make_verifiable;
    use crate::stereotype;
    use veridic_chipgen::PropertyType;

    fn chain_vm(stages: usize) -> VerifiableModule {
        make_verifiable(&demo_chain_module(stages)).unwrap()
    }

    #[test]
    fn cut_at_turns_regs_into_inputs() {
        let m = demo_chain_module(4);
        let dp1 = m.find_net("dp1").unwrap();
        let cut = cut_at(&m, &[dp1]);
        assert!(cut.inputs().any(|p| p.name == "dp1"));
        assert_eq!(cut.regs.len(), m.regs.len() - 1);
        assert!(cut.validate().is_ok());
    }

    #[test]
    fn partition_steps_form_acyclic_chain() {
        let vm = chain_vm(5);
        let steps = partition_output_integrity(&vm, 0).unwrap();
        // One step per stage plus the output step.
        assert_eq!(steps.len(), 6);
        decomposition_is_acyclic(&steps, &vm.module).unwrap();
    }

    #[test]
    fn partitioned_steps_prove_under_tiny_budget() {
        let vm = chain_vm(6);
        let steps = partition_output_integrity(&vm, 0).unwrap();
        let opts = CheckOptions {
            bdd_nodes: 60_000,
            sat_conflicts: 50_000,
            bmc_depth: 8,
            induction_depth: 6,
            ..CheckOptions::default()
        };
        let run = run_partition(&steps, &opts);
        assert!(
            run.all_proved,
            "every corn must prove: {:?}",
            run.steps.iter().map(|(n, r)| (n.clone(), r.verdict.clone())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_partition_matches_serial() {
        let vm = chain_vm(6);
        let steps = partition_output_integrity(&vm, 0).unwrap();
        let opts = CheckOptions {
            bdd_nodes: 60_000,
            sat_conflicts: 50_000,
            bmc_depth: 8,
            induction_depth: 6,
            ..CheckOptions::default()
        };
        let serial = run_partition(&steps, &opts);
        assert_eq!(serial.worker_stats.len(), 1);
        for workers in [2usize, 3, 0] {
            let par = run_partition_with_workers(&steps, &opts, workers);
            assert_eq!(par.all_proved, serial.all_proved, "workers={workers}");
            assert_eq!(par.steps.len(), serial.steps.len());
            for ((an, ar), (bn, br)) in serial.steps.iter().zip(&par.steps) {
                assert_eq!(an, bn, "corn order must be step order, workers={workers}");
                assert_eq!(ar.verdict, br.verdict, "corn {an}, workers={workers}");
                assert_eq!(ar.stats.iterations, br.stats.iterations, "corn {an}");
            }
            // Per-worker accounting covers every worker and adds up to
            // the same total allocations as the serial run.
            assert!(!par.worker_stats.is_empty());
            assert_eq!(
                par.worker_stats.iter().map(|w| w.bdd_allocated).sum::<u64>(),
                serial.worker_stats[0].bdd_allocated,
                "workers={workers}"
            );
        }
    }

    /// The affinity assignment is a drop-in for the round-robin: same
    /// verdicts, stats and step order — and on the chain decomposition
    /// it groups stage-adjacent corns (which share a cut checkpoint)
    /// onto the same worker as contiguous runs.
    #[test]
    fn affinity_partition_matches_serial_and_groups_adjacent_corns() {
        let vm = chain_vm(6);
        let steps = partition_output_integrity(&vm, 0).unwrap();
        let opts = CheckOptions {
            bdd_nodes: 60_000,
            sat_conflicts: 50_000,
            bmc_depth: 8,
            induction_depth: 6,
            ..CheckOptions::default()
        };
        let serial = run_partition(&steps, &opts);
        for workers in [2usize, 3] {
            let aff = run_partition_with_affinity(&steps, &opts, workers, &Portfolio::default());
            assert_eq!(aff.all_proved, serial.all_proved, "workers={workers}");
            assert_eq!(aff.steps.len(), serial.steps.len());
            for ((an, ar), (bn, br)) in serial.steps.iter().zip(&aff.steps) {
                assert_eq!(an, bn, "merge must stay in step order, workers={workers}");
                assert_eq!(ar.verdict, br.verdict, "corn {an}, workers={workers}");
                assert_eq!(ar.stats.iterations, br.stats.iterations, "corn {an}");
            }
            assert_eq!(
                aff.worker_stats.iter().map(|w| w.bdd_allocated).sum::<u64>(),
                serial.worker_stats[0].bdd_allocated,
                "workers={workers}"
            );
        }
        // The assignment itself: every cluster of the chain is a
        // contiguous run of stages, because only stage-adjacent corns
        // share a checkpoint (the cut between them) and the Jaccard
        // merge always has a positive-overlap pair to take.
        let clusters = affinity_assignment(&steps, 2);
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            assert!(
                c.windows(2).all(|w| w[1] == w[0] + 1),
                "chain clusters must be contiguous: {clusters:?}"
            );
        }
    }

    #[test]
    fn preanalysis_folds_nothing_on_the_chain_corns() {
        // Fig. 7 bench neutrality: no chain latch is sequentially stuck
        // (every datapath register free-runs behind its hold enable and
        // every monitor latch watches live parity), so the default-on
        // pre-analysis stage folds nothing on any corn. The one stage
        // conclusion is the *final* corn: its goal `^O0` is
        // combinationally the cut net `dp4`, whose parity the corn
        // assumes (`pCut_dp4`), so the constraint-aware sweep proves it
        // vacuous — assumption-implied, zero engine invocations.
        let vm = chain_vm(5);
        let steps = partition_output_integrity(&vm, 0).unwrap();
        let opts = CheckOptions {
            bdd_nodes: 60_000,
            sat_conflicts: 50_000,
            bmc_depth: 8,
            induction_depth: 6,
            ..CheckOptions::default()
        };
        let run = run_partition(&steps, &opts);
        assert!(run.all_proved);
        let last = run.steps.len() - 1;
        for (i, (name, r)) in run.steps.iter().enumerate() {
            assert!(r.stats.preanalysis.bads_analyzed > 0, "{name}: the stage must run");
            assert_eq!(r.stats.preanalysis.stuck_latches, 0, "{name}: nothing to fold");
            let expect_vacuous = usize::from(i == last);
            assert_eq!(
                r.stats.preanalysis.vacuous, expect_vacuous,
                "{name}: only the output corn is assumption-implied"
            );
        }
    }

    #[test]
    fn monolithic_resource_out_partitioned_proves() {
        // The Figure-7 reproduction: same budgets, monolithic fails,
        // partitioned succeeds.
        let vm = chain_vm(16);
        let opts = CheckOptions {
            bdd_nodes: 9_000,
            sat_conflicts: 600,
            bmc_depth: 3,
            induction_depth: 3,
            simple_path: false,
            max_iterations: 200,
            pobdd_window_vars: 0,
            ..CheckOptions::default()
        };
        // Monolithic: compile the integrity vunit, check O0.
        let all = stereotype::generate_all(&vm).unwrap();
        let (_, compiled) = all
            .iter()
            .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
            .unwrap();
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        let mono = check(&aig, &opts);
        assert!(
            matches!(mono.verdict, Verdict::ResourceOut { .. }),
            "monolithic check must exhaust the budget, got {:?}",
            mono.verdict
        );
        // Partitioned under the *same* budget: all corns prove.
        let steps = partition_output_integrity(&vm, 0).unwrap();
        decomposition_is_acyclic(&steps, &vm.module).unwrap();
        let run = run_partition(&steps, &opts);
        assert!(
            run.all_proved,
            "partitioned corns must prove: {:?}",
            run.steps.iter().map(|(n, r)| (n.clone(), r.verdict.clone())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chain_module_is_actually_correct() {
        // Sanity: with a generous budget the monolithic property proves —
        // the resource-out above is a budget artefact, not a real bug.
        let vm = chain_vm(4);
        let all = stereotype::generate_all(&vm).unwrap();
        let (_, compiled) = all
            .iter()
            .find(|(g, _)| g.ptype == PropertyType::OutputIntegrity)
            .unwrap();
        let lowered = compiled.module.to_aig().unwrap();
        let mut aig = lowered.aig.clone();
        for (label, net) in &compiled.asserts {
            aig.add_bad(label.clone(), lowered.bit(*net, 0));
        }
        for (label, net) in &compiled.assumes {
            aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
        }
        let r = check(&aig, &CheckOptions::default());
        assert!(r.verdict.is_proved(), "{:?}", r.verdict);
    }
}
