//! Data-integrity checkpoints: the paper's unit of verification scope.
//!
//! A checkpoint is a place where parity protects data: an injectable
//! state *entity* (FSM / counter / datapath register), a parity-protected
//! *input group*, or a parity-protected *output group*. The extractor
//! reads the `checkpoint.*` attributes that design generators (or
//! designers) attach to nets; the stereotype property generator and the
//! Verifiable-RTL transform both work from the resulting [`Inventory`].

use std::error::Error;
use std::fmt;
use veridic_netlist::{Module, NetId};

/// Extraction failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtractError {
    /// Module name.
    pub module: String,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint extraction failed in {}: {}", self.module, self.message)
    }
}

impl Error for ExtractError {}

/// An injectable state entity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entity {
    /// The register net.
    pub net: NetId,
    /// Net name.
    pub name: String,
    /// Width (including the parity bit).
    pub width: u32,
    /// Declared entity kind (`fsm`, `counter`, `datapath`, ...).
    pub entity_kind: String,
    /// Which HE bit reports this entity's checker.
    pub he_bit: u32,
    /// For legal-state FSMs: the maximum legal data value (P3 property).
    pub legal_max: Option<u64>,
}

/// A parity-protected input group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputGroup {
    /// The port net.
    pub net: NetId,
    /// Port name.
    pub name: String,
    /// Width (including parity).
    pub width: u32,
    /// Which HE bit reports this group's checker.
    pub he_bit: u32,
    /// Optional validity guard net name (macro warm-up contracts).
    pub guard: Option<String>,
}

/// A parity-protected output group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputGroup {
    /// The port net.
    pub net: NetId,
    /// Port name.
    pub name: String,
    /// Width (including parity).
    pub width: u32,
}

/// The complete checkpoint inventory of one leaf module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inventory {
    /// Module name.
    pub module: String,
    /// Injectable entities, ordered by `checkpoint.index`.
    pub entities: Vec<Entity>,
    /// Input groups, ordered by index.
    pub input_groups: Vec<InputGroup>,
    /// Output groups, ordered by index.
    pub output_groups: Vec<OutputGroup>,
    /// The HE report port.
    pub he_net: NetId,
    /// HE width.
    pub he_width: u32,
}

impl Inventory {
    /// Number of P0 (error-detection) properties this inventory yields.
    pub fn p0_count(&self) -> usize {
        self.entities.len() + self.input_groups.len()
    }

    /// Number of P1 (soundness) properties.
    pub fn p1_count(&self) -> usize {
        self.he_width as usize
    }

    /// Number of P2 (output-integrity) properties.
    pub fn p2_count(&self) -> usize {
        self.output_groups.len()
    }

    /// Number of P3 (legal-state) properties.
    pub fn p3_count(&self) -> usize {
        self.entities.iter().filter(|e| e.legal_max.is_some()).count()
    }

    /// Widest entity (the shared `I_ERR_INJ_D` bus width).
    pub fn max_entity_width(&self) -> u32 {
        self.entities.iter().map(|e| e.width).max().unwrap_or(0)
    }

    /// True if the module has nothing to verify (the paper's exclusion
    /// rule: "a leaf module can be excluded if it has no internal state
    /// and no data paths with parity protection").
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty() && self.input_groups.is_empty() && self.output_groups.is_empty()
    }
}

/// Extracts the checkpoint inventory of a module from its
/// `checkpoint.*` net attributes.
///
/// # Errors
///
/// Returns [`ExtractError`] if indices are malformed, the HE port is
/// missing while checkers exist, or an entity lacks a register.
pub fn extract(m: &Module) -> Result<Inventory, ExtractError> {
    let err = |msg: String| ExtractError { module: m.name.clone(), message: msg };
    let mut entities = Vec::new();
    let mut input_groups = Vec::new();
    let mut output_groups = Vec::new();
    let mut he = None;
    for (i, net) in m.nets.iter().enumerate() {
        let id = NetId(i as u32);
        let Some(kind) = net.attrs.get("checkpoint.kind") else {
            continue;
        };
        let index = net
            .attrs
            .get("checkpoint.index")
            .map(|s| s.parse::<u32>())
            .transpose()
            .map_err(|e| err(format!("bad checkpoint.index on {}: {e}", net.name)))?;
        let he_bit = net
            .attrs
            .get("checkpoint.he_bit")
            .map(|s| s.parse::<u32>())
            .transpose()
            .map_err(|e| err(format!("bad checkpoint.he_bit on {}: {e}", net.name)))?;
        match kind.as_str() {
            "entity" => {
                if m.reg_for(id).is_none() {
                    return Err(err(format!("entity {} has no register", net.name)));
                }
                let legal_max = net
                    .attrs
                    .get("checkpoint.legal_max")
                    .map(|s| s.parse::<u64>())
                    .transpose()
                    .map_err(|e| err(format!("bad legal_max on {}: {e}", net.name)))?;
                entities.push((
                    index.unwrap_or(entities.len() as u32),
                    Entity {
                        net: id,
                        name: net.name.clone(),
                        width: net.width,
                        entity_kind: net
                            .attrs
                            .get("checkpoint.entity_kind")
                            .cloned()
                            .unwrap_or_else(|| "entity".to_string()),
                        he_bit: he_bit.unwrap_or(0),
                        legal_max,
                    },
                ));
            }
            "input_group" => {
                input_groups.push((
                    index.unwrap_or(input_groups.len() as u32),
                    InputGroup {
                        net: id,
                        name: net.name.clone(),
                        width: net.width,
                        he_bit: he_bit.unwrap_or(0),
                        guard: net.attrs.get("checkpoint.guard").cloned(),
                    },
                ));
            }
            "output_group" => {
                output_groups.push((
                    index.unwrap_or(output_groups.len() as u32),
                    OutputGroup { net: id, name: net.name.clone(), width: net.width },
                ));
            }
            "he" => he = Some((id, net.width)),
            "control" => {}
            other => return Err(err(format!("unknown checkpoint.kind '{other}' on {}", net.name))),
        }
    }
    entities.sort_by_key(|(i, _)| *i);
    input_groups.sort_by_key(|(i, _)| *i);
    output_groups.sort_by_key(|(i, _)| *i);
    let (he_net, he_width) = he.ok_or_else(|| {
        err("module has checkpoints but no net with checkpoint.kind=he".to_string())
    })?;
    Ok(Inventory {
        module: m.name.clone(),
        entities: entities.into_iter().map(|(_, e)| e).collect(),
        input_groups: input_groups.into_iter().map(|(_, g)| g).collect(),
        output_groups: output_groups.into_iter().map(|(_, g)| g).collect(),
        he_net,
        he_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_chipgen::{build_leaf, build_plans, Scale, SpecialKind};

    #[test]
    fn extraction_matches_plan_counts() {
        for plan in build_plans(Scale::Small) {
            let m = build_leaf(&plan, None);
            let inv = extract(&m).unwrap();
            assert_eq!(inv.p0_count(), plan.p0(), "{} P0", plan.name);
            assert_eq!(inv.p1_count(), plan.p1(), "{} P1", plan.name);
            assert_eq!(inv.p2_count(), plan.p2(), "{} P2", plan.name);
            assert_eq!(inv.p3_count(), plan.p3, "{} P3", plan.name);
        }
    }

    #[test]
    fn macro_group_carries_guard() {
        let plan = build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.special == SpecialKind::MacroInterface)
            .unwrap();
        let m = build_leaf(&plan, None);
        let inv = extract(&m).unwrap();
        let macro_group = inv.input_groups.iter().find(|g| g.name == "MACRO_SIG").unwrap();
        assert_eq!(macro_group.guard.as_deref(), Some("warm_done"));
    }

    #[test]
    fn decoder_has_wide_entity() {
        let plan = build_plans(Scale::Small)
            .into_iter()
            .find(|p| p.special == SpecialKind::AddressDecoder)
            .unwrap();
        let m = build_leaf(&plan, None);
        let inv = extract(&m).unwrap();
        assert_eq!(inv.max_entity_width(), 8);
        assert!(inv.entities.iter().any(|e| e.entity_kind == "decoder_out"));
    }

    #[test]
    fn plain_module_has_no_checkpoints() {
        let m = veridic_netlist::Module::new("plain");
        let err = extract(&m).unwrap_err();
        assert!(err.message.contains("checkpoint.kind=he"));
    }
}
