//! Design-impact model (paper §6.3): area increase from the error
//! injection feature (Table 4), selector timing penalty, and the ECO
//! spare-gate side effect.
//!
//! The model is a gate-level cost estimate over the word-level netlist:
//! each expression node costs standard-cell area units (NAND2-equivalent
//! gates) proportional to its width, and hash-consing in the expression
//! arena models logic sharing. Absolute numbers depend on the synthetic
//! chip's calibration; the *ratios* (selector overhead vs. module area)
//! are the reproduced quantity.

use crate::verifiable::make_verifiable;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use veridic_aig::hash::FxHashSet;
use veridic_chipgen::{Category, Chip};
use veridic_netlist::{Expr, ExprId, Module};

/// Area costs in NAND2-equivalent units per bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellCosts {
    /// Inverter.
    pub not: f64,
    /// 2-input AND/OR.
    pub and_or: f64,
    /// 2-input XOR.
    pub xor: f64,
    /// 2:1 mux.
    pub mux2: f64,
    /// D flip-flop with async reset.
    pub dff: f64,
    /// Full-adder cell.
    pub fa: f64,
}

impl Default for CellCosts {
    fn default() -> Self {
        // Typical relative cell areas for a 0.11 µm ASIC library.
        CellCosts { not: 0.5, and_or: 1.5, xor: 3.0, mux2: 3.5, dff: 6.0, fa: 10.5 }
    }
}

/// Gate-area estimate of a module (all logic reachable from assigns and
/// register next-states, plus the flops themselves).
pub fn module_area(m: &Module, costs: &CellCosts) -> f64 {
    let mut seen: FxHashSet<ExprId> = FxHashSet::default();
    let mut area = 0.0;
    let mut stack: Vec<ExprId> = Vec::new();
    for (_, e) in &m.assigns {
        stack.push(*e);
    }
    for r in &m.regs {
        stack.push(r.next);
        area += costs.dff * m.net_width(r.q) as f64;
    }
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let w = m.arena.width(id) as f64;
        match m.arena.node(id) {
            Expr::Const(_) | Expr::Net(_) => {}
            Expr::Not(a) => {
                area += costs.not * w;
                stack.push(*a);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                area += costs.and_or * w;
                stack.push(*a);
                stack.push(*b);
            }
            Expr::Xor(a, b) => {
                area += costs.xor * w;
                stack.push(*a);
                stack.push(*b);
            }
            Expr::RedAnd(a) | Expr::RedOr(a) => {
                let aw = m.arena.width(*a) as f64;
                area += costs.and_or * (aw - 1.0).max(0.0);
                stack.push(*a);
            }
            Expr::RedXor(a) => {
                let aw = m.arena.width(*a) as f64;
                area += costs.xor * (aw - 1.0).max(0.0);
                stack.push(*a);
            }
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                area += costs.fa * w;
                stack.push(*a);
                stack.push(*b);
            }
            Expr::Mul(a, b) => {
                area += costs.fa * w * w / 2.0;
                stack.push(*a);
                stack.push(*b);
            }
            Expr::Eq(a, b) | Expr::Ne(a, b) => {
                let aw = m.arena.width(*a) as f64;
                area += costs.xor * aw + costs.and_or * (aw - 1.0).max(0.0);
                stack.push(*a);
                stack.push(*b);
            }
            Expr::Ult(a, b) | Expr::Ule(a, b) => {
                let aw = m.arena.width(*a) as f64;
                area += 3.0 * costs.and_or * aw;
                stack.push(*a);
                stack.push(*b);
            }
            Expr::Shl(a, _) | Expr::Shr(a, _) | Expr::Repeat(_, a) | Expr::Slice(a, _, _) => {
                stack.push(*a); // wiring only
            }
            Expr::Mux { cond, then_, else_ } => {
                area += costs.mux2 * w;
                stack.push(*cond);
                stack.push(*then_);
                stack.push(*else_);
            }
            Expr::Concat(parts) => stack.extend(parts.iter().copied()),
        }
    }
    area
}

/// Table-4 style area comparison for one module: base vs. Verifiable.
#[derive(Clone, Debug)]
pub struct AreaRow {
    /// Module name.
    pub module: String,
    /// Category.
    pub category: Category,
    /// Base area (units).
    pub base: f64,
    /// Area after the Verifiable-RTL transform.
    pub verifiable: f64,
}

impl AreaRow {
    /// Percentage increase caused by the injection feature.
    pub fn increase_percent(&self) -> f64 {
        (self.verifiable - self.base) / self.base * 100.0
    }
}

/// Computes area rows for every leaf module of a chip.
///
/// # Panics
///
/// Panics if a chip module cannot be transformed (generated chips always
/// can).
pub fn area_report(chip: &Chip, costs: &CellCosts) -> Vec<AreaRow> {
    chip.modules()
        .iter()
        .map(|mi| {
            let m = chip.design().module(mi.name()).expect("module exists"); // lint: allow
            let vm = make_verifiable(m).expect("chip modules transform"); // lint: allow
            AreaRow {
                module: mi.name().to_string(),
                category: mi.plan().category,
                base: module_area(m, costs),
                verifiable: module_area(&vm.module, costs),
            }
        })
        .collect()
}

/// Per-category mean increase, as printed in Table 4.
pub fn category_increase(rows: &[AreaRow]) -> BTreeMap<Category, f64> {
    let mut sums: BTreeMap<Category, (f64, f64)> = BTreeMap::new();
    for r in rows {
        let e = sums.entry(r.category).or_insert((0.0, 0.0));
        e.0 += r.base;
        e.1 += r.verifiable;
    }
    sums.into_iter()
        .map(|(c, (b, v))| (c, (v - b) / b * 100.0))
        .collect()
}

/// Renders Table 4.
pub fn render_table4(rows: &[AreaRow]) -> String {
    let per_cat = category_increase(rows);
    let mut s = String::new();
    let _ = writeln!(s, "Table 4. Area increase caused by the error injection feature");
    let _ = writeln!(s, "{:<12} {:>14}", "Module Name", "Area Increase");
    for (c, pct) in &per_cat {
        let _ = writeln!(s, "{:<12} {:>13.1}%", c.to_string(), pct);
    }
    s
}

/// Timing impact of the injection selector (paper §6.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingReport {
    /// Selector (2:1 mux) delay in picoseconds.
    pub selector_ps: f64,
    /// Clock period at the chip's 250 MHz target, in picoseconds.
    pub period_ps: f64,
}

impl TimingReport {
    /// The model's 0.11 µm-class numbers: a 200 ps selector on a 4 ns
    /// clock (the paper reports "about 200 ps ... about 4 % of total
    /// delay when frequency is 250 MHz").
    pub fn model() -> TimingReport {
        TimingReport { selector_ps: 200.0, period_ps: 4000.0 }
    }

    /// Selector delay as a percentage of the cycle budget.
    pub fn percent_of_period(&self) -> f64 {
        self.selector_ps / self.period_ps * 100.0
    }
}

/// An engineering change order event in the post-route fix replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcoEvent {
    /// ECO sequence number (1-based).
    pub index: usize,
    /// What kind of fix it was.
    pub kind: EcoKind,
    /// Whether leftover injection selectors could serve as spare gates.
    pub used_injection_spares: bool,
}

/// ECO fix categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EcoKind {
    /// Combinational logic fix: a 2:1 mux is a universal cell, so the
    /// tied-off injection selectors can implement it.
    LogicFix,
    /// Timing/buffering fix: needs drive strength, not logic — spare
    /// selectors do not help.
    TimingFix,
}

/// Replays the paper's six post-route ECOs: two were logic fixes served
/// from the leftover injection gates ("we performed ECO six times and we
/// used these remaining gates twice").
pub fn eco_replay() -> Vec<EcoEvent> {
    // Deterministic reconstruction of the paper's account.
    let kinds = [
        EcoKind::TimingFix,
        EcoKind::LogicFix,
        EcoKind::TimingFix,
        EcoKind::TimingFix,
        EcoKind::LogicFix,
        EcoKind::TimingFix,
    ];
    kinds
        .iter()
        .enumerate()
        .map(|(i, k)| EcoEvent {
            index: i + 1,
            kind: *k,
            used_injection_spares: *k == EcoKind::LogicFix,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_chipgen::{ChipConfig, Scale};

    #[test]
    fn area_model_counts_shared_logic_once() {
        use veridic_netlist::{Module, PortDir};
        let mut m = Module::new("m");
        let a = m.add_port("a", PortDir::Input, 4);
        let y1 = m.add_port("y1", PortDir::Output, 1);
        let y2 = m.add_port("y2", PortDir::Output, 1);
        let sa = m.sig(a);
        let p = m.arena.add(Expr::RedXor(sa)); // shared
        m.assign(y1, p);
        let np = m.arena.add(Expr::Not(p));
        m.assign(y2, np);
        let costs = CellCosts::default();
        // RedXor(4) = 3 xor cells = 9.0; Not = 0.5.
        assert!((module_area(&m, &costs) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn transform_increases_area_modestly() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        let rows = area_report(&chip, &CellCosts::default());
        for r in &rows {
            assert!(r.verifiable > r.base, "{}: transform adds gates", r.module);
            assert!(
                r.increase_percent() < 30.0,
                "{}: increase {:.1}% implausibly high",
                r.module,
                r.increase_percent()
            );
        }
    }

    #[test]
    fn timing_model_matches_paper_scale() {
        let t = TimingReport::model();
        assert_eq!(t.selector_ps, 200.0);
        let pct = t.percent_of_period();
        assert!((4.0..=6.0).contains(&pct), "selector ~4-5% of the cycle: {pct}");
    }

    /// The full-scale census, promoted into tier-1: generation plus the
    /// gate-area model run well under a second — only the *rendering* of
    /// the full table stays behind the `table4` binary.
    #[test]
    fn table4_percentages_match_paper() {
        let chip = Chip::generate(&ChipConfig { scale: Scale::Full, with_bugs: false });
        let rows = area_report(&chip, &CellCosts::default());
        let per_cat = category_increase(&rows);
        let a = per_cat[&Category::A];
        let b = per_cat[&Category::B];
        let d = per_cat[&Category::D];
        assert!((a - 1.4).abs() < 0.3, "A: {a:.2}% vs paper 1.4%");
        assert!((b - 0.4).abs() < 0.2, "B: {b:.2}% vs paper 0.4%");
        assert!((d - 0.2).abs() < 0.15, "D: {d:.2}% vs paper 0.2%");
    }

    #[test]
    fn eco_replay_matches_paper_account() {
        let events = eco_replay();
        assert_eq!(events.len(), 6);
        let reused = events.iter().filter(|e| e.used_injection_spares).count();
        assert_eq!(reused, 2);
    }
}
