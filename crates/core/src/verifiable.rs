//! The Verifiable-RTL transform (paper §4.1, Figure 6).
//!
//! "RTL can be Verifiable by adding one line of code per such entity":
//! each injectable entity gets a selector in front of its register —
//! `if (I_ERR_INJ_C[i]) state <= I_ERR_INJ_D;` — with the error-injection
//! control bus `I_ERR_INJ_C` one-hot per entity (independent control, a
//! stated requirement) and the injection data bus `I_ERR_INJ_D` shared.
//! Parent modules tie both ports to zero, so real silicon behaviour is
//! unchanged (the selectors remain as spare gates — the paper's happy ECO
//! side effect).

use crate::checkpoint::{extract, ExtractError, Inventory};
use std::error::Error;
use std::fmt;
use veridic_netlist::{Conn, Design, Expr, Module, NetId, PortDir};

/// Port name of the injection control bus (Figure 6).
pub const EC_PORT: &str = "I_ERR_INJ_C";
/// Port name of the shared injection data bus (Figure 6).
pub const ED_PORT: &str = "I_ERR_INJ_D";

/// Transform failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// Checkpoint extraction failed.
    Extract(ExtractError),
    /// The module already has injection ports.
    AlreadyTransformed(String),
    /// The module has no injectable entities.
    NoEntities(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Extract(e) => write!(f, "{e}"),
            TransformError::AlreadyTransformed(m) => {
                write!(f, "module {m} already has {EC_PORT}/{ED_PORT} ports")
            }
            TransformError::NoEntities(m) => write!(f, "module {m} has no injectable entities"),
        }
    }
}

impl Error for TransformError {}

impl From<ExtractError> for TransformError {
    fn from(e: ExtractError) -> Self {
        TransformError::Extract(e)
    }
}

/// Result of making one module verifiable.
#[derive(Clone, Debug)]
pub struct VerifiableModule {
    /// The transformed module.
    pub module: Module,
    /// The checkpoint inventory (recomputed on the transformed module).
    pub inventory: Inventory,
    /// `I_ERR_INJ_C` net.
    pub ec_net: NetId,
    /// `I_ERR_INJ_D` net.
    pub ed_net: NetId,
    /// Number of independently controllable entities (EC width).
    pub entity_count: usize,
    /// ED bus width (widest entity).
    pub ed_width: u32,
}

/// Applies the Verifiable-RTL transform to a leaf module.
///
/// # Errors
///
/// Returns [`TransformError`] if the module has no checkpoint inventory,
/// no entities, or was already transformed.
pub fn make_verifiable(m: &Module) -> Result<VerifiableModule, TransformError> {
    if m.find_net(EC_PORT).is_some() || m.find_net(ED_PORT).is_some() {
        return Err(TransformError::AlreadyTransformed(m.name.clone()));
    }
    let inv = extract(m)?;
    if inv.entities.is_empty() {
        return Err(TransformError::NoEntities(m.name.clone()));
    }
    let mut out = m.clone();
    let n = inv.entities.len();
    let ed_width = inv.max_entity_width();
    let ec = out.add_port(EC_PORT, PortDir::Input, n as u32);
    let ed = out.add_port(ED_PORT, PortDir::Input, ed_width);
    out.net_mut(ec).attrs.insert("checkpoint.kind".into(), "control".into());
    out.net_mut(ec).attrs.insert("inject.role".into(), "ec".into());
    out.net_mut(ed).attrs.insert("checkpoint.kind".into(), "control".into());
    out.net_mut(ed).attrs.insert("inject.role".into(), "ed".into());
    for (i, ent) in inv.entities.iter().enumerate() {
        let w = ent.width;
        let reg_idx = out
            .regs
            .iter()
            .position(|r| r.q == ent.net)
            .expect("entity register exists (validated by extract)"); // lint: allow
        let old_next = out.regs[reg_idx].next;
        // A 1-bit control bus is referenced as a scalar (Figure 6 style).
        let ec_bit = if n == 1 { out.sig(ec) } else { out.sig_bit(ec, i as u32) };
        let ed_sig = out.sig(ed);
        let ed_slice = if w == ed_width {
            ed_sig
        } else {
            out.arena.add(Expr::Slice(ed_sig, w - 1, 0))
        };
        // The one line per entity: `if (EC[i]) q <= ED;`
        let injected = out.arena.add(Expr::Mux { cond: ec_bit, then_: ed_slice, else_: old_next });
        out.regs[reg_idx].next = injected;
        out.net_mut(ent.net)
            .attrs
            .insert("inject.index".into(), i.to_string());
    }
    out.attrs.insert("verifiable".into(), "true".to_string());
    let inventory = extract(&out)?;
    Ok(VerifiableModule {
        module: out,
        inventory,
        ec_net: ec,
        ed_net: ed,
        entity_count: n,
        ed_width,
    })
}

/// Ties off the injection ports of a transformed child inside a parent
/// module (the wrapper-side half of Figure 6: `.I_ERR_INJ_C(2'b00)`).
pub fn tie_off_in_parent(parent: &mut Module, instance_name: &str, ec_width: u32, ed_width: u32) {
    let zero_ec = parent.lit(ec_width, 0);
    let zero_ed = parent.lit(ed_width, 0);
    let inst = parent
        .instances
        .iter_mut()
        .find(|i| i.name == instance_name)
        .unwrap_or_else(|| panic!("no instance {instance_name} in {}", parent.name));
    inst.conns.insert(EC_PORT.to_string(), Conn::In(zero_ec));
    inst.conns.insert(ED_PORT.to_string(), Conn::In(zero_ed));
}

/// Transforms every named leaf of a design and ties the new ports off in
/// all instantiating parents. Returns the per-leaf transform results.
///
/// # Errors
///
/// Returns the first [`TransformError`] encountered.
pub fn transform_design(
    design: &mut Design,
    leaf_names: &[String],
) -> Result<Vec<VerifiableModule>, TransformError> {
    let mut results = Vec::new();
    for name in leaf_names {
        let m = design
            .module(name)
            .unwrap_or_else(|| panic!("design has no module {name}"))
            .clone();
        let vm = make_verifiable(&m)?;
        design.add_module(vm.module.clone());
        results.push(vm);
    }
    // Tie off in every parent instance.
    let parents: Vec<String> = design
        .modules()
        .filter(|m| m.instances.iter().any(|i| leaf_names.contains(&i.module)))
        .map(|m| m.name.clone())
        .collect();
    for pname in parents {
        let mut parent = design.module(&pname).expect("parent exists").clone(); // lint: allow
        let fixes: Vec<(String, u32, u32)> = parent
            .instances
            .iter()
            .filter(|i| leaf_names.contains(&i.module))
            .map(|i| {
                let vm = results
                    .iter()
                    .find(|vm| vm.module.name == i.module)
                    .expect("transform result recorded"); // lint: allow
                (i.name.clone(), vm.entity_count as u32, vm.ed_width)
            })
            .collect();
        for (iname, ecw, edw) in fixes {
            tie_off_in_parent(&mut parent, &iname, ecw, edw);
        }
        design.add_module(parent);
    }
    Ok(results)
}

/// A verifiability lint finding (paper §4.1 requirements).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Module name.
    pub module: String,
    /// Requirement violated.
    pub message: String,
}

/// Checks the Verifiable-RTL requirements on a transformed module:
/// a well-defined injection method per entity, controlled independently
/// per entity (one EC bit each), with the shared ED bus wide enough.
pub fn lint_verifiable(vm: &VerifiableModule) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let m = &vm.module;
    let mut seen = std::collections::BTreeSet::new();
    for ent in &vm.inventory.entities {
        match m.net(ent.net).attrs.get("inject.index") {
            None => findings.push(LintFinding {
                module: m.name.clone(),
                message: format!("entity {} has no injection method", ent.name),
            }),
            Some(i) => {
                if !seen.insert(i.clone()) {
                    findings.push(LintFinding {
                        module: m.name.clone(),
                        message: format!(
                            "entity {} shares EC bit {i} — injection must be independent per entity",
                            ent.name
                        ),
                    });
                }
            }
        }
        if ent.width > vm.ed_width {
            findings.push(LintFinding {
                module: m.name.clone(),
                message: format!("ED bus narrower than entity {}", ent.name),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_chipgen::{build_leaf, build_plans, Chip, ChipConfig, Scale};

    fn small_plan() -> veridic_chipgen::LeafPlan {
        build_plans(Scale::Small).into_iter().next().unwrap()
    }

    #[test]
    fn transform_adds_ports_and_selectors() {
        let m = build_leaf(&small_plan(), None);
        let base_regs = m.regs.len();
        let vm = make_verifiable(&m).unwrap();
        assert!(vm.module.find_port(EC_PORT).is_some());
        assert!(vm.module.find_port(ED_PORT).is_some());
        assert_eq!(vm.module.regs.len(), base_regs, "no new state, just selectors");
        assert_eq!(vm.entity_count, vm.inventory.entities.len());
        assert!(vm.module.validate().is_ok());
        assert!(lint_verifiable(&vm).is_empty());
    }

    #[test]
    fn double_transform_rejected() {
        let m = build_leaf(&small_plan(), None);
        let vm = make_verifiable(&m).unwrap();
        assert!(matches!(
            make_verifiable(&vm.module),
            Err(TransformError::AlreadyTransformed(_))
        ));
    }

    #[test]
    fn injection_actually_injects() {
        use veridic_sim::Simulator;
        use veridic_netlist::Value;
        let m = build_leaf(&small_plan(), None);
        let vm = make_verifiable(&m).unwrap();
        let tm = &vm.module;
        let mut sim = Simulator::new(tm).unwrap();
        // Drive clean inputs; inject an even-parity (illegal) value into
        // entity 0 and watch HE rise the next cycle.
        for p in tm.inputs().map(|p| (p.net, p.name.clone())).collect::<Vec<_>>() {
            let w = tm.net_width(p.0);
            let kind = tm.net(p.0).attrs.get("checkpoint.kind").cloned().unwrap_or_default();
            let v = if kind == "input_group" {
                let mut v = Value::zero(w);
                v.set_bit(0, true); // odd parity
                v
            } else {
                Value::zero(w)
            };
            sim.poke_net(p.0, v).unwrap();
        }
        sim.settle();
        assert!(sim.peek("HE").unwrap().is_zero(), "clean before injection");
        // Pulse EC[0] with an even-parity ED.
        let ecw = tm.net_width(vm.ec_net);
        sim.poke(EC_PORT, Value::from_u64(ecw, 1)).unwrap();
        sim.poke(ED_PORT, Value::from_u64(vm.ed_width, 0b0011)).unwrap();
        sim.step();
        sim.poke(EC_PORT, Value::zero(ecw)).unwrap();
        sim.settle();
        assert!(
            !sim.peek("HE").unwrap().is_zero(),
            "illegal injected value must be detected the next cycle"
        );
    }

    #[test]
    fn chip_transform_ties_off_parents() {
        let mut chip = Chip::generate(&ChipConfig { scale: Scale::Small, with_bugs: false });
        let names: Vec<String> = chip.modules().iter().map(|m| m.name().to_string()).collect();
        let results = transform_design(chip.design_mut(), &names).unwrap();
        assert_eq!(results.len(), names.len());
        let top = chip.design().module("chip_top").unwrap();
        for inst in &top.instances {
            assert!(inst.conns.contains_key(EC_PORT), "{} tied off", inst.name);
            assert!(inst.conns.contains_key(ED_PORT), "{} tied off", inst.name);
        }
        // Flattened silicon behaviour: with EC tied to zero the chip
        // validates and flattens fine.
        let flat = chip.design().flatten().unwrap();
        assert!(flat.validate().is_ok());
    }

    #[test]
    fn figure6_shape_in_emitted_verilog() {
        // The emitted Verilog of a transformed module contains the
        // Figure-6 idiom: a selector on the injection control bit.
        let m = build_leaf(&small_plan(), None);
        let vm = make_verifiable(&m).unwrap();
        let src = veridic_verilog::emit_module(&vm.module, None);
        assert!(src.contains(EC_PORT), "{src}");
        assert!(src.contains(ED_PORT));
        assert!(src.contains(&format!("{EC_PORT}[0]")));
    }
}
