//! # veridic
//!
//! A formal verification methodology for checking **data integrity** —
//! a from-scratch Rust reproduction of Umezawa & Shimizu (DATE 2004/05),
//! complete with every substrate the methodology stands on:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | RTL IR | [`netlist`] | word-level synthesizable netlists |
//! | Frontend | [`verilog`] | Verilog subset parser/elaborator/emitter |
//! | Properties | [`psl`] | PSL safety subset → monitor circuits |
//! | Bit level | [`aig`] | And-Inverter Graphs, COI, replay |
//! | Engines | [`bdd`], [`sat`], [`mc`] | ROBDD/POBDD UMC, CDCL, BMC, k-induction |
//! | Baseline | [`sim`] | cycle simulator + constrained-random stimulus |
//! | Evaluation | [`chipgen`] | the synthetic server chip (Table 2 census, 7 bugs) |
//! | Methodology | [`core`] | Verifiable RTL, stereotype vunits, partitioning, campaign |
//! | Service | [`campaign`] | checkpoints, crash-recoverable daemon, adaptive scheduler |
//!
//! ## Quickstart
//!
//! ```
//! use veridic::prelude::*;
//!
//! // 1. A leaf module with parity-protected state (from the generator).
//! let plan = &build_plans(Scale::Small)[0];
//! let module = build_leaf(plan, None);
//!
//! // 2. Make it Verifiable (Fig. 6) and derive the stereotype vunits.
//! let vm = make_verifiable(&module)?;
//! let vunits = generate_all(&vm)?;
//!
//! // 3. Model check one of them.
//! let (_gen, compiled) = &vunits[0];
//! let lowered = compiled.module.to_aig()?;
//! let mut aig = lowered.aig.clone();
//! for (label, net) in &compiled.asserts {
//!     aig.add_bad(label.clone(), lowered.bit(*net, 0));
//! }
//! for (label, net) in &compiled.assumes {
//!     aig.add_constraint(label.clone(), !lowered.bit(*net, 0));
//! }
//! let result = check(&aig, &CheckOptions::default());
//! assert!(result.verdict.is_proved());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use veridic_aig as aig;
pub use veridic_bdd as bdd;
pub use veridic_campaign as campaign;
pub use veridic_chipgen as chipgen;
pub use veridic_core as core;
pub use veridic_mc as mc;
pub use veridic_netlist as netlist;
pub use veridic_psl as psl;
pub use veridic_sat as sat;
pub use veridic_sim as sim;
pub use veridic_verilog as verilog;

/// The working set of the methodology: one import for examples and
/// downstream tools.
pub mod prelude {
    pub use veridic_aig::analyze::{
        analyze, fold_constants, ternary_sweep, ternary_sweep_constrained, ConstantNet,
        ConstrainedSweep, DesignReport, FoldResult, StuckLatch, SweepResult, Ternary,
    };
    pub use veridic_aig::structure::{
        affinity_clusters, force_order, latch_affinity_clusters, Condensation, ForceOrder,
        LatchGraph,
    };
    pub use veridic_aig::Aig;
    pub use veridic_campaign::{
        maybe_run_worker, AdaptiveScheduler, CampaignDir, CampaignSpec, CheckpointFile, CodecError,
        DaemonError, JobState, PersistedState, RunOutcome, StatusSummary,
    };
    pub use veridic_chipgen::{
        build_leaf, build_order_stress, build_plans, observe_symptom, BugId, Category, Chip,
        ChipConfig, LeafPlan, PropertyType, Scale, SpecCompliant, SpecialKind,
    };
    pub use veridic_core::checkpoint::{extract, Inventory};
    pub use veridic_core::flow::{
        run_campaign, run_campaign_with_portfolio, CampaignConfig, CampaignReport,
    };
    pub use veridic_core::impact::{
        area_report, category_increase, eco_replay, module_area, render_table4, CellCosts,
        TimingReport,
    };
    pub use veridic_core::partition::{
        cut_at, decomposition_is_acyclic, demo_chain_module, partition_output_integrity,
        run_partition, run_partition_with_affinity, run_partition_with_portfolio,
        run_partition_with_workers, PartitionWorkerStats,
    };
    pub use veridic_core::stereotype::{
        edetect_vunit, generate_all, integrity_vunit, other_vunit, soundness_vunit,
    };
    pub use veridic_core::verifiable::{
        make_verifiable, transform_design, VerifiableModule, EC_PORT, ED_PORT,
    };
    pub use veridic_mc::{
        check, check_one, pobdd_reach, BadCoiStats, BddWorkerStats, Budget, CancelToken,
        CheckOptions, CheckOptionsBuilder, CheckResult, CheckStats, Engine, EngineCheckpoint,
        EngineCtx, EngineEvent, EngineId, EngineOutcome, EventOutcome, EventResources, Portfolio,
        PortfolioOutcome, PreanalysisStats, ReachCheckpoint, RunCheckpoint, Verdict, PREANALYSIS,
    };
    pub use veridic_netlist::{Design, Expr, Module, NetId, PortDir, Value};
    pub use veridic_psl::{compile_vunit, parse_psl};
    pub use veridic_sim::{detection_latency, Simulator, Stimulus, UniformRandom, VcdWriter};
    pub use veridic_verilog::{elaborate, emit_design, emit_module, parse};
}
