//! Verilog emission: netlist IR → synthesizable Verilog source.
//!
//! Used to export generated chips, to produce the paper's Figure-6
//! "Verifiable RTL" listing, and for parse→elaborate→emit round-trip
//! testing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use veridic_netlist::{Conn, Design, Expr, ExprId, Module, NetId, PortDir};

/// Emits a whole design, top module last (children first, so the output
/// file is self-contained and parses in one pass).
pub fn emit_design(design: &Design) -> String {
    let mut names: Vec<&str> = design.modules().map(|m| m.name.as_str()).collect();
    // Children before parents: leaves first by repeated filtering.
    names.sort(); // deterministic base order
    let mut emitted: Vec<&str> = Vec::new();
    while emitted.len() < names.len() {
        let mut progressed = false;
        for &n in &names {
            if emitted.contains(&n) {
                continue;
            }
            let m = design.module(n).expect("listed module exists");
            let ready = m
                .instances
                .iter()
                .all(|i| emitted.contains(&i.module.as_str()) || design.module(&i.module).is_none());
            if ready {
                emitted.push(n);
                progressed = true;
            }
        }
        assert!(progressed, "recursive hierarchy in emit_design");
    }
    let mut out = String::new();
    for n in emitted {
        out.push_str(&emit_module(design.module(n).unwrap(), Some(design)));
        out.push('\n');
    }
    out
}

/// Emits one module. `design` (if given) is consulted for child clock and
/// reset ports when printing instances.
pub fn emit_module(m: &Module, design: Option<&Design>) -> String {
    Emitter::new(m, design).run()
}

struct Emitter<'a> {
    m: &'a Module,
    design: Option<&'a Design>,
    aux: Vec<String>,
    aux_count: usize,
    rendered: BTreeMap<ExprId, String>,
}

impl<'a> Emitter<'a> {
    fn new(m: &'a Module, design: Option<&'a Design>) -> Self {
        Emitter { m, design, aux: Vec::new(), aux_count: 0, rendered: BTreeMap::new() }
    }

    fn clock_name(&self) -> String {
        self.m.attrs.get("clock").cloned().unwrap_or_else(|| "CK".to_string())
    }

    fn reset_name(&self) -> String {
        self.m.attrs.get("reset").cloned().unwrap_or_else(|| "RESET".to_string())
    }

    fn needs_clock(&self) -> bool {
        if !self.m.regs.is_empty() {
            return true;
        }
        if let Some(d) = self.design {
            self.m.instances.iter().any(|i| {
                d.module(&i.module)
                    .map(|c| !c.regs.is_empty() || module_needs_clock_rec(c, d))
                    .unwrap_or(false)
            })
        } else {
            false
        }
    }

    fn run(mut self) -> String {
        let mut body = String::new();
        // Internal net declarations (ports are declared in the header).
        let port_nets: Vec<NetId> = self.m.ports.iter().map(|p| p.net).collect();
        let reg_nets: Vec<NetId> = self.m.regs.iter().map(|r| r.q).collect();
        for (i, net) in self.m.nets.iter().enumerate() {
            let id = NetId(i as u32);
            if port_nets.contains(&id) {
                continue;
            }
            let kw = if reg_nets.contains(&id) { "reg " } else { "wire" };
            let range = range_str(net.width);
            let _ = writeln!(body, "  {kw} {range}{};", net.name);
        }
        // Continuous assigns.
        let mut assigns = String::new();
        for (net, expr) in &self.m.assigns {
            if reg_nets.contains(net) {
                continue; // register next-state handled in always blocks
            }
            let rhs = self.render(*expr);
            let _ = writeln!(assigns, "  assign {} = {};", self.m.net(*net).name, rhs);
        }
        // Always blocks, one per register.
        let ck = self.clock_name();
        let rst = self.reset_name();
        let mut always = String::new();
        for r in &self.m.regs {
            let name = self.m.net(r.q).name.clone();
            let next = self.render(r.next);
            let _ = writeln!(always, "  always @(posedge {ck} or posedge {rst})");
            let _ = writeln!(always, "    if ({rst}) {name} <= {};", r.reset_value);
            let _ = writeln!(always, "    else {name} <= {next};");
        }
        // Instances.
        let mut insts = String::new();
        for inst in &self.m.instances {
            let _ = writeln!(insts, "  {} {} (", inst.module, inst.name);
            let mut lines = Vec::new();
            // Child clock/reset wiring.
            if let Some(d) = self.design {
                if let Some(child) = d.module(&inst.module) {
                    if !child.regs.is_empty() || module_needs_clock_rec(child, d) {
                        let cck = child.attrs.get("clock").cloned().unwrap_or_else(|| "CK".into());
                        let crst =
                            child.attrs.get("reset").cloned().unwrap_or_else(|| "RESET".into());
                        lines.push(format!("    .{cck}({ck})"));
                        lines.push(format!("    .{crst}({rst})"));
                    }
                }
            }
            for (port, conn) in &inst.conns {
                let rhs = match conn {
                    Conn::In(e) => self.render(*e),
                    Conn::Out(n) => self.m.net(*n).name.clone(),
                };
                lines.push(format!("    .{port}({rhs})"));
            }
            let _ = writeln!(insts, "{}", lines.join(",\n"));
            let _ = writeln!(insts, "  );");
        }
        // Header.
        let mut head = String::new();
        let _ = writeln!(head, "module {} (", self.m.name);
        let mut port_lines = Vec::new();
        if self.needs_clock() {
            port_lines.push(format!("  input  {ck}"));
            port_lines.push(format!("  input  {rst}"));
        }
        for p in &self.m.ports {
            let dir = match p.dir {
                PortDir::Input => "input ",
                PortDir::Output => "output",
            };
            let range = range_str(self.m.net_width(p.net));
            port_lines.push(format!("  {dir} {range}{}", p.name));
        }
        let _ = writeln!(head, "{}", port_lines.join(",\n"));
        let _ = writeln!(head, ");");

        let mut out = head;
        out.push_str(&body);
        for a in &self.aux {
            out.push_str(a);
        }
        out.push_str(&assigns);
        out.push_str(&always);
        out.push_str(&insts);
        out.push_str("endmodule\n");
        out
    }

    /// Renders an expression, introducing auxiliary wires where Verilog
    /// syntax requires an identifier (slices of computed values).
    fn render(&mut self, e: ExprId) -> String {
        if let Some(s) = self.rendered.get(&e) {
            return s.clone();
        }
        let arena = &self.m.arena;
        let s = match arena.node(e).clone() {
            Expr::Const(v) => format!("{v}"),
            Expr::Net(n) => self.m.net(n).name.clone(),
            Expr::Not(a) => format!("~{}", self.paren(a)),
            Expr::And(a, b) => format!("({} & {})", self.render(a), self.render(b)),
            Expr::Or(a, b) => format!("({} | {})", self.render(a), self.render(b)),
            Expr::Xor(a, b) => format!("({} ^ {})", self.render(a), self.render(b)),
            Expr::RedAnd(a) => format!("&{}", self.paren(a)),
            Expr::RedOr(a) => format!("|{}", self.paren(a)),
            Expr::RedXor(a) => format!("^{}", self.paren(a)),
            Expr::Add(a, b) => format!("({} + {})", self.render(a), self.render(b)),
            Expr::Sub(a, b) => format!("({} - {})", self.render(a), self.render(b)),
            Expr::Mul(a, b) => format!("({} * {})", self.render(a), self.render(b)),
            Expr::Eq(a, b) => format!("({} == {})", self.render(a), self.render(b)),
            Expr::Ne(a, b) => format!("({} != {})", self.render(a), self.render(b)),
            Expr::Ult(a, b) => format!("({} < {})", self.render(a), self.render(b)),
            Expr::Ule(a, b) => format!("({} <= {})", self.render(a), self.render(b)),
            Expr::Shl(a, n) => format!("({} << {n})", self.render(a)),
            Expr::Shr(a, n) => format!("({} >> {n})", self.render(a)),
            Expr::Mux { cond, then_, else_ } => format!(
                "({} ? {} : {})",
                self.render(cond),
                self.render(then_),
                self.render(else_)
            ),
            Expr::Concat(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| self.render(*p)).collect();
                format!("{{{}}}", inner.join(", "))
            }
            Expr::Repeat(n, a) => format!("{{{}{{{}}}}}", n, self.render(a)),
            Expr::Slice(a, hi, lo) => {
                let base = match arena.node(a) {
                    Expr::Net(n) => self.m.net(*n).name.clone(),
                    _ => {
                        // Verilog cannot select from an expression: create
                        // an auxiliary wire.
                        let w = arena.width(a);
                        let name = format!("_veridic_t{}", self.aux_count);
                        self.aux_count += 1;
                        let rhs = self.render(a);
                        self.aux.push(format!(
                            "  wire {}{name};\n  assign {name} = {rhs};\n",
                            range_str(w)
                        ));
                        name
                    }
                };
                if hi == lo {
                    format!("{base}[{hi}]")
                } else {
                    format!("{base}[{hi}:{lo}]")
                }
            }
        };
        self.rendered.insert(e, s.clone());
        s
    }

    /// Renders with parens for unary operand positions.
    fn paren(&mut self, e: ExprId) -> String {
        let s = self.render(e);
        if s.starts_with('(')
            || s.starts_with('{')
            || !s.contains(|c: char| " +-*&|^<>?~!".contains(c))
        {
            s
        } else {
            format!("({s})")
        }
    }
}

fn module_needs_clock_rec(m: &Module, d: &Design) -> bool {
    if !m.regs.is_empty() {
        return true;
    }
    m.instances.iter().any(|i| {
        d.module(&i.module)
            .map(|c| module_needs_clock_rec(c, d))
            .unwrap_or(false)
    })
}

fn range_str(width: u32) -> String {
    if width == 1 {
        String::new()
    } else {
        format!("[{}:0] ", width - 1)
    }
}
