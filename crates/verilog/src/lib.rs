//! # veridic-verilog
//!
//! Verilog frontend and backend for the veridic RTL IR: a lexer and
//! recursive-descent parser for a synthesizable subset (the idioms of the
//! paper's Figure 6 "Verifiable RTL"), an elaborator producing
//! [`veridic_netlist::Design`]s, and a pretty-printer that emits
//! synthesizable Verilog back out.
//!
//! ```
//! use veridic_verilog::{parse, elaborate};
//!
//! let src = r#"
//! module leaf (input CK, input RESET, input [3:0] d, output [3:0] q);
//!   reg [3:0] state;
//!   always @(posedge CK or posedge RESET)
//!     if (RESET) state <= 4'b0000;
//!     else state <= d;
//!   assign q = state;
//! endmodule
//! "#;
//! let ast = parse(src)?;
//! let design = elaborate(&ast, "leaf")?;
//! assert_eq!(design.module("leaf").unwrap().regs.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod elab;
mod emit;
mod parser;
mod token;

pub use ast::{
    AlwaysBlock, AlwaysKind, AstExpr, Dir, InstanceDecl, ModuleDecl, NetDecl, NetKind, PortDecl,
    SourceFile, Stmt, Target,
};
pub use elab::{elaborate, ElabError};
pub use emit::{emit_design, emit_module};
pub use parser::{parse, ParseError};
pub use token::{lex, LexError, Tok, Token};

#[cfg(test)]
mod tests {
    use super::*;
    use veridic_netlist::Value;

    /// Figure 6 of the paper, lightly adapted to the supported subset.
    const FIGURE6: &str = r#"
module B (
  input CK,
  input RESET,
  input [1:0] I_ERR_INJ_C,
  input [3:0] I_ERR_INJ_D,
  input [3:0] ns,
  input [3:0] cnt_next,
  output [3:0] cs_out,
  output [3:0] cnt_out
);
  reg [3:0] cs;
  reg [3:0] cnt;
  always @(posedge CK or posedge RESET)
    if (RESET) cs <= 4'b1_000;
    else if (I_ERR_INJ_C[0]) cs <= I_ERR_INJ_D;
    else cs <= ns;
  always @(posedge CK or posedge RESET)
    if (RESET) cnt <= 4'b1_000;
    else if (I_ERR_INJ_C[1]) cnt <= I_ERR_INJ_D;
    else cnt <= cnt_next;
  assign cs_out = cs;
  assign cnt_out = cnt;
endmodule

module A (
  input CK,
  input RESET,
  input [3:0] ns,
  input [3:0] cnt_next,
  output [3:0] cs_out,
  output [3:0] cnt_out
);
  B B_in_A (
    .CK(CK),
    .RESET(RESET),
    .I_ERR_INJ_C(2'b00),
    .I_ERR_INJ_D(4'b0000),
    .ns(ns),
    .cnt_next(cnt_next),
    .cs_out(cs_out),
    .cnt_out(cnt_out)
  );
endmodule
"#;

    #[test]
    fn figure6_elaborates() {
        let ast = parse(FIGURE6).unwrap();
        let d = elaborate(&ast, "A").unwrap();
        let b = d.module("B").unwrap();
        assert_eq!(b.regs.len(), 2);
        assert_eq!(b.regs[0].reset_value, Value::from_u64(4, 0b1000));
        // CK/RESET are implicit: not IR ports.
        assert!(b.find_port("CK").is_none());
        assert_eq!(b.inputs().count(), 4);
        let a = d.module("A").unwrap();
        assert_eq!(a.instances.len(), 1);
        // Error injection tie-off: EC tied to zero constant.
        let inst = &a.instances[0];
        match inst.conns.get("I_ERR_INJ_C") {
            Some(veridic_netlist::Conn::In(e)) => {
                match a.arena.node(*e) {
                    veridic_netlist::Expr::Const(v) => assert!(v.is_zero()),
                    other => panic!("expected constant tie-off, got {other:?}"),
                }
            }
            other => panic!("missing tie-off: {other:?}"),
        }
    }

    #[test]
    fn figure6_flattens_and_lowers() {
        let ast = parse(FIGURE6).unwrap();
        let d = elaborate(&ast, "A").unwrap();
        let flat = d.flatten().unwrap();
        flat.validate().unwrap();
        let lowered = flat.to_aig().unwrap();
        assert_eq!(lowered.aig.num_latches(), 8);
        // Reset values: both regs init to 0b1000.
        let inits: Vec<bool> = lowered.aig.latches().iter().map(|l| l.init).collect();
        assert_eq!(inits, vec![false, false, false, true, false, false, false, true]);
    }

    /// Emitting and re-parsing preserves module structure and semantics.
    #[test]
    fn roundtrip_emit_parse() {
        let ast = parse(FIGURE6).unwrap();
        let d = elaborate(&ast, "A").unwrap();
        let src2 = emit_design(&d);
        let ast2 = parse(&src2).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{src2}"));
        let d2 = elaborate(&ast2, "A").unwrap();
        let b1 = d.module("B").unwrap();
        let b2 = d2.module("B").unwrap();
        assert_eq!(b1.regs.len(), b2.regs.len());
        assert_eq!(b1.ports.len(), b2.ports.len());
        // Semantics: identical AIG simulation on a fixed input sequence.
        let f1 = d.flatten().unwrap().to_aig().unwrap();
        let f2 = d2.flatten().unwrap().to_aig().unwrap();
        assert_eq!(f1.aig.num_inputs(), f2.aig.num_inputs());
        let seq: Vec<Vec<bool>> = (0..8)
            .map(|k| (0..f1.aig.num_inputs()).map(|i| (k + i) % 3 == 0).collect())
            .collect();
        let r1 = f1.aig.simulate(&seq);
        let r2 = f2.aig.simulate(&seq);
        for (c1, c2) in r1.iter().zip(&r2) {
            assert_eq!(c1.outputs, c2.outputs);
        }
    }

    #[test]
    fn comb_always_with_case() {
        let src = r#"
module dec (input [1:0] s, output reg [3:0] y);
  always @(*)
    case (s)
      2'b00: y = 4'b0001;
      2'b01: y = 4'b0010;
      2'b10: y = 4'b0100;
      default: y = 4'b1000;
    endcase
endmodule
"#;
        let d = elaborate(&parse(src).unwrap(), "dec").unwrap();
        let m = d.module("dec").unwrap();
        m.validate().unwrap();
        let lowered = m.to_aig().unwrap();
        // Exhaustive check of the decoder truth table.
        for s in 0..4u64 {
            let rep = lowered.aig.simulate(&[
                (0..2).map(|i| s >> i & 1 == 1).collect::<Vec<bool>>()
            ]);
            let y: u64 = rep[0]
                .outputs
                .iter()
                .enumerate()
                .map(|(i, b)| (*b as u64) << i)
                .sum();
            assert_eq!(y, 1 << s, "decode of {s}");
        }
    }

    #[test]
    fn incomplete_comb_assignment_rejected() {
        let src = r#"
module bad (input c, input [3:0] a, output reg [3:0] y);
  always @(*)
    if (c) y = a;
endmodule
"#;
        let err = elaborate(&parse(src).unwrap(), "bad").unwrap_err();
        assert!(err.message.contains("latch"), "got: {}", err.message);
    }

    #[test]
    fn blocking_in_clocked_rejected() {
        let src = r#"
module bad (input CK, input RESET, input [3:0] a, output [3:0] q);
  reg [3:0] r;
  always @(posedge CK or posedge RESET)
    if (RESET) r <= 4'b0000;
    else r = a;
  assign q = r;
endmodule
"#;
        let err = elaborate(&parse(src).unwrap(), "bad").unwrap_err();
        assert!(err.message.contains("non-blocking"), "got: {}", err.message);
    }

    #[test]
    fn nonblocking_reads_old_values() {
        // Classic swap: a <= b; b <= a; must exchange, not duplicate.
        let src = r#"
module swap (input CK, input RESET, output [1:0] o);
  reg a, b;
  always @(posedge CK or posedge RESET)
    if (RESET) begin a <= 1'b0; b <= 1'b1; end
    else begin a <= b; b <= a; end
  assign o = {a, b};
endmodule
"#;
        let d = elaborate(&parse(src).unwrap(), "swap").unwrap();
        let lowered = d.module("swap").unwrap().to_aig().unwrap();
        let rep = lowered.aig.simulate(&vec![vec![]; 3]);
        // o = {a,b}: bit1 = a, bit0 = b. Cycle 0: a=0 b=1. Cycle 1: a=1 b=0.
        assert_eq!(rep[0].outputs, vec![true, false]);
        assert_eq!(rep[1].outputs, vec![false, true]);
        assert_eq!(rep[2].outputs, vec![true, false]);
    }

    #[test]
    fn parameters_fold_into_widths() {
        let src = r#"
module p (input [7:0] a, output [7:0] y);
  localparam W = 8, HALF = W / 2;
  assign y = a << HALF;
endmodule
"#;
        let d = elaborate(&parse(src).unwrap(), "p").unwrap();
        let m = d.module("p").unwrap();
        m.validate().unwrap();
        let lowered = m.to_aig().unwrap();
        let rep = lowered.aig.simulate(&[(0..8).map(|i| i == 0).collect::<Vec<bool>>()]);
        let y: u64 = rep[0].outputs.iter().enumerate().map(|(i, b)| (*b as u64) << i).sum();
        assert_eq!(y, 1 << 4);
    }

    #[test]
    fn slice_target_read_modify_write() {
        let src = r#"
module s (input CK, input RESET, input [3:0] d, output [7:0] q);
  reg [7:0] r;
  always @(posedge CK or posedge RESET)
    if (RESET) r <= 8'h00;
    else begin
      r[3:0] <= d;
      r[7] <= 1'b1;
    end
  assign q = r;
endmodule
"#;
        let d = elaborate(&parse(src).unwrap(), "s").unwrap();
        let m = d.module("s").unwrap();
        m.validate().unwrap();
        let lowered = m.to_aig().unwrap();
        // Drive d = 0b0101 for one cycle; q next cycle = 0b1000_0101
        // (bits 6:4 keep old value 0).
        let rep = lowered.aig.simulate(&[
            vec![true, false, true, false],
            vec![false, false, false, false],
        ]);
        let q1: u64 = rep[1].outputs.iter().enumerate().map(|(i, b)| (*b as u64) << i).sum();
        assert_eq!(q1, 0b1000_0101);
    }
}
