//! Elaboration: Verilog AST → `veridic-netlist` IR.
//!
//! The elaborator performs constant folding of parameters, width inference
//! for unsized literals, symbolic execution of always blocks (producing
//! mux trees for `if`/`case`), asynchronous-reset extraction in the
//! paper's Figure-6 idiom, and hierarchy resolution to a
//! [`veridic_netlist::Design`].
//!
//! Restrictions of the supported subset (checked, not silently
//! mis-compiled): declared ranges must end at bit 0 (`[w-1:0]`), shift
//! amounts and part-select bounds must be constants, clocked blocks use
//! non-blocking assignments only, and combinational blocks must fully
//! assign their targets on every path.

use crate::ast::*;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use veridic_netlist::{Conn, Design, Expr, ExprId, Instance, Module, NetId, PortDir, Value};

/// Elaboration errors, with the offending module for context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElabError {
    /// Module being elaborated.
    pub module: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error in module {}: {}", self.module, self.message)
    }
}

impl Error for ElabError {}

/// Elaborates a parsed source file into a [`Design`] rooted at `top`.
///
/// # Errors
///
/// Returns an [`ElabError`] on width mismatches, unsupported constructs,
/// undeclared names, incomplete combinational assignment, or non-constant
/// reset values.
pub fn elaborate(sf: &SourceFile, top: &str) -> Result<Design, ElabError> {
    let mut design = Design::new(top);
    // Port widths are needed before bodies (for instance connections), so
    // compute them in a first pass.
    // Clock/reset names are design-global (single clock domain): any port
    // with one of these names is implicit in the IR, including on wrapper
    // modules that merely pass CK/RESET through to children.
    let mut clocks = std::collections::BTreeSet::new();
    let mut resets = std::collections::BTreeSet::new();
    for md in &sf.modules {
        for ab in &md.always {
            if let AlwaysKind::Clocked { clock, reset } = &ab.kind {
                clocks.insert(clock.clone());
                if let Some(r) = reset {
                    resets.insert(r.clone());
                }
            }
        }
    }
    let globals = Globals { clocks, resets };
    let mut headers: BTreeMap<String, Header> = BTreeMap::new();
    for md in &sf.modules {
        headers.insert(md.name.clone(), module_header(md, &globals)?);
    }
    for md in &sf.modules {
        let m = ModuleElab::new(md, &headers, &globals)?.run()?;
        design.add_module(m);
    }
    Ok(design)
}

/// Design-wide clock and reset signal names.
#[derive(Clone, Debug, Default)]
struct Globals {
    clocks: std::collections::BTreeSet<String>,
    resets: std::collections::BTreeSet<String>,
}

impl Globals {
    fn is_implicit(&self, name: &str) -> bool {
        self.clocks.contains(name) || self.resets.contains(name)
    }
}

/// Pre-computed interface of a module: ports plus implicit clock/reset.
#[derive(Clone, Debug)]
struct Header {
    ports: Vec<(String, PortDir, u32)>,
    clock: Option<String>,
    reset: Option<String>,
}

/// Computes the port list and implicit clock/reset of a module declaration.
fn module_header(md: &ModuleDecl, globals: &Globals) -> Result<Header, ElabError> {
    let err = |m: &str| ElabError { module: md.name.clone(), message: m.to_string() };
    let params = fold_params(md)?;
    let mut clock = None;
    let mut reset = None;
    for ab in &md.always {
        if let AlwaysKind::Clocked { clock: c, reset: r } = &ab.kind {
            clock.get_or_insert_with(|| c.clone());
            if let Some(r) = r {
                reset.get_or_insert_with(|| r.clone());
            }
        }
    }
    let mut out = Vec::new();
    for p in &md.ports {
        if globals.is_implicit(&p.name) {
            continue;
        }
        let (dir, width) = match p.dir {
            Some(d) => {
                let w = match &p.range {
                    None => 1,
                    Some((msb, lsb)) => range_width(md, &params, msb, lsb)?,
                };
                (conv_dir(d), w)
            }
            None => {
                // Non-ANSI: find the body declaration.
                let mut found = None;
                for nd in &md.nets {
                    if let NetKind::PortDir(d) = nd.kind {
                        if nd.names.contains(&p.name) {
                            let w = match &nd.range {
                                None => 1,
                                Some((msb, lsb)) => range_width(md, &params, msb, lsb)?,
                            };
                            found = Some((conv_dir(d), w));
                        }
                    }
                }
                found.ok_or_else(|| err(&format!("port {} has no direction declaration", p.name)))?
            }
        };
        out.push((p.name.clone(), dir, width));
    }
    Ok(Header { ports: out, clock, reset })
}

fn conv_dir(d: Dir) -> PortDir {
    match d {
        Dir::Input => PortDir::Input,
        Dir::Output => PortDir::Output,
    }
}

/// Evaluates the module's parameters to constants.
fn fold_params(md: &ModuleDecl) -> Result<BTreeMap<String, u64>, ElabError> {
    let mut params = BTreeMap::new();
    for (name, e) in &md.params {
        let v = const_eval(md, &params, e)?;
        params.insert(name.clone(), v);
    }
    Ok(params)
}

fn range_width(
    md: &ModuleDecl,
    params: &BTreeMap<String, u64>,
    msb: &AstExpr,
    lsb: &AstExpr,
) -> Result<u32, ElabError> {
    let err = |m: String| ElabError { module: md.name.clone(), message: m };
    let msb = const_eval(md, params, msb)?;
    let lsb = const_eval(md, params, lsb)?;
    if lsb != 0 {
        return Err(err(format!("range [{}:{}]: only [w-1:0] ranges are supported", msb, lsb)));
    }
    Ok((msb + 1) as u32)
}

/// Constant expression evaluation (parameters and integer arithmetic).
fn const_eval(
    md: &ModuleDecl,
    params: &BTreeMap<String, u64>,
    e: &AstExpr,
) -> Result<u64, ElabError> {
    let err = |m: String| ElabError { module: md.name.clone(), message: m };
    Ok(match e {
        AstExpr::Number(n) => *n,
        AstExpr::Sized(_, v) => *v,
        AstExpr::Ident(name) => *params
            .get(name)
            .ok_or_else(|| err(format!("'{name}' is not a constant parameter")))?,
        AstExpr::Unary("~", a) => !const_eval(md, params, a)?,
        AstExpr::Binary(op, a, b) => {
            let a = const_eval(md, params, a)?;
            let b = const_eval(md, params, b)?;
            match *op {
                "+" => a.wrapping_add(b),
                "-" => a.wrapping_sub(b),
                "*" => a.wrapping_mul(b),
                "/" => a.checked_div(b).ok_or_else(|| err("division by zero".into()))?,
                "<<" => a << b,
                ">>" => a >> b,
                _ => return Err(err(format!("operator '{op}' not allowed in constants"))),
            }
        }
        other => return Err(err(format!("expression {other:?} is not constant"))),
    })
}

struct ModuleElab<'a> {
    md: &'a ModuleDecl,
    headers: &'a BTreeMap<String, Header>,
    globals: &'a Globals,
    params: BTreeMap<String, u64>,
    m: Module,
    nets: BTreeMap<String, NetId>,
    clock: Option<String>,
    reset: Option<String>,
}

/// Symbolic-execution environment: target name → current expression.
type Env = BTreeMap<String, ExprId>;

impl<'a> ModuleElab<'a> {
    fn new(
        md: &'a ModuleDecl,
        headers: &'a BTreeMap<String, Header>,
        globals: &'a Globals,
    ) -> Result<Self, ElabError> {
        let params = fold_params(md)?;
        Ok(ModuleElab {
            md,
            headers,
            globals,
            params,
            m: Module::new(md.name.clone()),
            nets: BTreeMap::new(),
            clock: None,
            reset: None,
        })
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, ElabError> {
        Err(ElabError { module: self.md.name.clone(), message: m.into() })
    }

    fn run(mut self) -> Result<Module, ElabError> {
        // Identify clock/reset names first: they become implicit.
        for ab in &self.md.always {
            if let AlwaysKind::Clocked { clock, reset } = &ab.kind {
                match &self.clock {
                    None => self.clock = Some(clock.clone()),
                    Some(c) if c == clock => {}
                    Some(c) => {
                        return self.err(format!("multiple clocks: {c} and {clock} (single clock domain only)"))
                    }
                }
                if let Some(r) = reset {
                    match &self.reset {
                        None => self.reset = Some(r.clone()),
                        Some(r0) if r0 == r => {}
                        Some(r0) => {
                            return self.err(format!("multiple resets: {r0} and {r}"))
                        }
                    }
                }
            }
        }
        if let Some(c) = self.clock.clone().or_else(|| self.globals.clocks.iter().next().cloned()) {
            self.m.attrs.insert("clock".into(), c);
        }
        if let Some(r) = self.reset.clone().or_else(|| self.globals.resets.iter().next().cloned()) {
            self.m.attrs.insert("reset".into(), r);
        }
        // Declare ports (clock/reset are implicit in the IR and were
        // already removed from the header).
        let header = self.headers[&self.md.name].clone();
        for (name, dir, width) in &header.ports {
            let id = self.m.add_port(name.clone(), *dir, *width);
            self.nets.insert(name.clone(), id);
        }
        // Declare internal nets.
        for nd in &self.md.nets {
            if matches!(nd.kind, NetKind::PortDir(_)) {
                continue; // already declared via header
            }
            let width = match &nd.range {
                None => 1,
                Some((msb, lsb)) => range_width(self.md, &self.params, msb, lsb)?,
            };
            for name in &nd.names {
                if self.is_clock_or_reset(name) || self.nets.contains_key(name) {
                    continue;
                }
                let id = self.m.add_net(name.clone(), width);
                self.nets.insert(name.clone(), id);
            }
        }
        // Continuous assignments.
        let assigns = self.md.assigns.clone();
        for (t, e) in &assigns {
            let (net, width) = self.whole_target(t)?;
            let expr = self.expr(e, Some(width), &Env::new())?;
            if self.m.arena.width(expr) != width {
                return self.err(format!(
                    "assign to {}: width {} vs {}",
                    self.m.net(net).name,
                    width,
                    self.m.arena.width(expr)
                ));
            }
            self.m.assign(net, expr);
        }
        // Always blocks.
        let always = self.md.always.clone();
        for ab in &always {
            match &ab.kind {
                AlwaysKind::Clocked { .. } => self.clocked_block(&ab.body)?,
                AlwaysKind::Comb => self.comb_block(&ab.body)?,
            }
        }
        // Instances.
        let instances = self.md.instances.clone();
        for inst in &instances {
            self.instance(inst)?;
        }
        Ok(self.m)
    }

    fn is_clock_or_reset(&self, name: &str) -> bool {
        self.clock.as_deref() == Some(name)
            || self.reset.as_deref() == Some(name)
            || self.globals.is_implicit(name)
    }

    fn net_of(&self, name: &str) -> Result<NetId, ElabError> {
        self.nets
            .get(name)
            .copied()
            .ok_or_else(|| ElabError {
                module: self.md.name.clone(),
                message: format!("undeclared identifier '{name}'"),
            })
    }

    fn whole_target(&mut self, t: &Target) -> Result<(NetId, u32), ElabError> {
        match t {
            Target::Ident(name) => {
                let net = self.net_of(name)?;
                Ok((net, self.m.net_width(net)))
            }
            _ => self.err("continuous assignment targets must be whole nets"),
        }
    }

    /// Elaborates a clocked always block. Expected (Figure 6) shape:
    /// optional leading `if (RESET) <constant assigns> else <logic>`, and
    /// non-blocking assignments throughout.
    fn clocked_block(&mut self, body: &Stmt) -> Result<(), ElabError> {
        // Split the reset arm if the top is `if (RESET) ...`.
        let (reset_stmt, logic_stmt): (Option<&Stmt>, &Stmt) = match body {
            Stmt::If(AstExpr::Ident(c), t, Some(e)) if self.reset.as_deref() == Some(c) => {
                (Some(t), e)
            }
            Stmt::If(AstExpr::Ident(c), _, None) if self.reset.as_deref() == Some(c) => {
                return self.err("reset-only always block has no next-state logic");
            }
            other => (None, other),
        };
        // Targets assigned by the logic.
        let mut targets = Vec::new();
        collect_targets(logic_stmt, &mut targets);
        if let Some(r) = reset_stmt {
            let mut rt = Vec::new();
            collect_targets(r, &mut rt);
            for t in &rt {
                if !targets.contains(t) {
                    targets.push(t.clone());
                }
            }
        }
        // Initial env: every reg holds its own value.
        let mut env = Env::new();
        for name in &targets {
            let net = self.net_of(name)?;
            let e = self.m.sig(net);
            env.insert(name.clone(), e);
        }
        let env = self.exec(logic_stmt, env, /*blocking=*/ false)?;
        // Reset values.
        let mut reset_vals: BTreeMap<String, Value> = BTreeMap::new();
        if let Some(rs) = reset_stmt {
            let mut renv = Env::new();
            let renv_out = self.exec(rs, std::mem::take(&mut renv), false)?;
            for (name, expr) in renv_out {
                match self.m.arena.node(expr) {
                    Expr::Const(v) => {
                        reset_vals.insert(name, v.clone());
                    }
                    _ => return self.err(format!("reset value of '{name}' is not a constant")),
                }
            }
        }
        for name in &targets {
            let net = self.net_of(name)?;
            let w = self.m.net_width(net);
            let next = env[name];
            let rv = reset_vals
                .get(name)
                .cloned()
                .unwrap_or_else(|| Value::zero(w));
            if rv.width() != w {
                return self.err(format!(
                    "reset value width mismatch on '{name}': {} vs {}",
                    rv.width(),
                    w
                ));
            }
            self.m.add_reg(net, next, rv);
        }
        Ok(())
    }

    /// Elaborates a combinational always block into continuous assigns.
    fn comb_block(&mut self, body: &Stmt) -> Result<(), ElabError> {
        let env = self.exec(body, Env::new(), /*blocking=*/ true)?;
        for (name, expr) in env {
            let net = self.net_of(&name)?;
            self.m.assign(net, expr);
        }
        Ok(())
    }

    /// Symbolic execution of a statement. `env` maps names already
    /// assigned in this block to their current expression.
    fn exec(&mut self, s: &Stmt, mut env: Env, blocking: bool) -> Result<Env, ElabError> {
        match s {
            Stmt::Block(stmts) => {
                for st in stmts {
                    env = self.exec(st, env, blocking)?;
                }
                Ok(env)
            }
            Stmt::NonBlocking(t, e) | Stmt::Blocking(t, e) => {
                let ok = matches!(s, Stmt::NonBlocking(..)) != blocking;
                if !ok {
                    return self.err(if blocking {
                        "combinational blocks must use blocking assignments (=)"
                    } else {
                        "clocked blocks must use non-blocking assignments (<=)"
                    });
                }
                self.exec_assign(t, e, &mut env, blocking)?;
                Ok(env)
            }
            Stmt::If(c, t, e) => {
                // Non-blocking semantics: conditions read the pre-block
                // (register) values, not the accumulated next-state.
                let read = if blocking { env.clone() } else { Env::new() };
                let cond = self.expr_bool(c, &read)?;
                let env_t = self.exec(t, env.clone(), blocking)?;
                let env_e = match e {
                    Some(e) => self.exec(e, env.clone(), blocking)?,
                    None => env.clone(),
                };
                self.merge(cond, env_t, env_e, &env)
            }
            Stmt::Case { sel, items, default } => {
                // Lower to an if-else chain, last item innermost.
                let read = if blocking { env.clone() } else { Env::new() };
                let base_env = match default {
                    Some(d) => self.exec(d, env.clone(), blocking)?,
                    None => env.clone(),
                };
                let mut acc = base_env;
                for (labels, body) in items.iter().rev() {
                    let sel_e = self.expr(sel, None, &read)?;
                    let sel_w = self.m.arena.width(sel_e);
                    let mut cond = None;
                    for l in labels {
                        let lv = self.expr(l, Some(sel_w), &read)?;
                        let eq = self.m.arena.add(Expr::Eq(sel_e, lv));
                        cond = Some(match cond {
                            None => eq,
                            Some(c) => self.m.arena.add(Expr::Or(c, eq)),
                        });
                    }
                    let cond = cond.ok_or_else(|| ElabError {
                        module: self.md.name.clone(),
                        message: "case item with no labels".into(),
                    })?;
                    let env_t = self.exec(body, env.clone(), blocking)?;
                    acc = self.merge(cond, env_t, acc, &env)?;
                }
                Ok(acc)
            }
        }
    }

    fn exec_assign(
        &mut self,
        t: &Target,
        e: &AstExpr,
        env: &mut Env,
        blocking: bool,
    ) -> Result<(), ElabError> {
        match t {
            Target::Ident(name) => {
                let net = self.net_of(name)?;
                let w = self.m.net_width(net);
                let read = if blocking { env.clone() } else { Env::new() };
                let val = self.expr(e, Some(w), &read)?;
                if self.m.arena.width(val) != w {
                    return self.err(format!(
                        "assignment to '{name}': width {} vs {}",
                        w,
                        self.m.arena.width(val)
                    ));
                }
                env.insert(name.clone(), val);
                Ok(())
            }
            Target::Slice(name, msb, lsb) => {
                // Read-modify-write on the current value.
                let net = self.net_of(name)?;
                let w = self.m.net_width(net);
                let msb = const_eval(self.md, &self.params, msb)? as u32;
                let lsb = const_eval(self.md, &self.params, lsb)? as u32;
                if msb >= w || lsb > msb {
                    return self.err(format!("slice [{msb}:{lsb}] out of range for '{name}'"));
                }
                let cur = match env.get(name) {
                    Some(e) => *e,
                    None => {
                        if blocking {
                            return self.err(format!(
                                "partial assignment to '{name}' before any full assignment"
                            ));
                        }
                        self.m.sig(net)
                    }
                };
                let read = if blocking { env.clone() } else { Env::new() };
                let val = self.expr(e, Some(msb - lsb + 1), &read)?;
                let mut parts: Vec<ExprId> = Vec::new(); // MSB first
                if msb + 1 < w {
                    parts.push(self.m.arena.add(Expr::Slice(cur, w - 1, msb + 1)));
                }
                parts.push(val);
                if lsb > 0 {
                    parts.push(self.m.arena.add(Expr::Slice(cur, lsb - 1, 0)));
                }
                let merged = if parts.len() == 1 {
                    parts[0]
                } else {
                    self.m.arena.add(Expr::Concat(parts))
                };
                env.insert(name.clone(), merged);
                Ok(())
            }
            Target::Concat(parts) => {
                // {a, b} <= e  →  split e by the part widths, MSB first.
                let widths: Vec<u32> = parts
                    .iter()
                    .map(|p| match p {
                        Target::Ident(n) => {
                            let net = self.net_of(n)?;
                            Ok(self.m.net_width(net))
                        }
                        _ => self.err("nested selects in concat targets are not supported"),
                    })
                    .collect::<Result<_, _>>()?;
                let total: u32 = widths.iter().sum();
                let read = if blocking { env.clone() } else { Env::new() };
                let val = self.expr(e, Some(total), &read)?;
                if self.m.arena.width(val) != total {
                    return self.err(format!(
                        "concat target width {total} vs expression {}",
                        self.m.arena.width(val)
                    ));
                }
                let mut hi = total;
                for (p, w) in parts.iter().zip(&widths) {
                    let slice = self.m.arena.add(Expr::Slice(val, hi - 1, hi - w));
                    self.exec_assign_simple(p, slice, env)?;
                    hi -= w;
                }
                Ok(())
            }
        }
    }

    fn exec_assign_simple(
        &mut self,
        t: &Target,
        val: ExprId,
        env: &mut Env,
    ) -> Result<(), ElabError> {
        match t {
            Target::Ident(name) => {
                env.insert(name.clone(), val);
                Ok(())
            }
            _ => self.err("unsupported nested target"),
        }
    }

    /// Merges two branch environments under `cond` (mux per differing key).
    fn merge(
        &mut self,
        cond: ExprId,
        env_t: Env,
        env_e: Env,
        base: &Env,
    ) -> Result<Env, ElabError> {
        let mut out = Env::new();
        let keys: std::collections::BTreeSet<&String> =
            env_t.keys().chain(env_e.keys()).collect();
        for k in keys {
            let t = env_t.get(k).or_else(|| base.get(k));
            let e = env_e.get(k).or_else(|| base.get(k));
            let v = match (t, e) {
                (Some(&t), Some(&e)) => {
                    if t == e {
                        t
                    } else {
                        self.m.arena.add(Expr::Mux { cond, then_: t, else_: e })
                    }
                }
                _ => {
                    return self.err(format!(
                        "'{k}' is not assigned on all paths (would infer a latch)"
                    ))
                }
            };
            out.insert(k.clone(), v);
        }
        Ok(out)
    }

    fn instance(&mut self, inst: &InstanceDecl) -> Result<(), ElabError> {
        let header = self
            .headers
            .get(&inst.module)
            .ok_or_else(|| ElabError {
                module: self.md.name.clone(),
                message: format!("unknown module '{}'", inst.module),
            })?
            .clone();
        let mut conns = BTreeMap::new();
        for (port, expr) in &inst.conns {
            let Some((_, dir, width)) = header.ports.iter().find(|(n, _, _)| n == port) else {
                // Clock/reset ports of the child are implicit in the IR:
                // connections to them are dropped.
                if header.clock.as_deref() == Some(port)
                    || header.reset.as_deref() == Some(port)
                    || self.globals.is_implicit(port)
                {
                    continue;
                }
                return self.err(format!("module {} has no port '{port}'", inst.module));
            };
            let Some(expr) = expr else {
                if *dir == PortDir::Input {
                    return self.err(format!("input port '{port}' left unconnected"));
                }
                continue;
            };
            match dir {
                PortDir::Input => {
                    let e = self.expr(expr, Some(*width), &Env::new())?;
                    conns.insert(port.clone(), Conn::In(e));
                }
                PortDir::Output => match expr {
                    AstExpr::Ident(name) => {
                        let net = self.net_of(name)?;
                        conns.insert(port.clone(), Conn::Out(net));
                    }
                    _ => {
                        return self.err(format!(
                            "output port '{port}' must connect to a plain net"
                        ))
                    }
                },
            }
        }
        self.m.add_instance(Instance {
            module: inst.module.clone(),
            name: inst.name.clone(),
            conns,
        });
        Ok(())
    }

    /// Elaborates an expression to a 1-bit condition.
    fn expr_bool(&mut self, e: &AstExpr, env: &Env) -> Result<ExprId, ElabError> {
        let x = self.expr(e, None, env)?;
        Ok(if self.m.arena.width(x) == 1 {
            x
        } else {
            self.m.arena.add(Expr::RedOr(x))
        })
    }

    /// Elaborates an expression. `ctx` is the width imposed by the
    /// surrounding context, used to size unsized literals.
    fn expr(&mut self, e: &AstExpr, ctx: Option<u32>, env: &Env) -> Result<ExprId, ElabError> {
        Ok(match e {
            AstExpr::Ident(name) => {
                if let Some(v) = env.get(name) {
                    *v
                } else if let Some(&c) = self.params.get(name) {
                    let w = ctx.unwrap_or(32);
                    self.m.arena.add(Expr::Const(Value::from_u64(w, c)))
                } else {
                    let net = self.net_of(name)?;
                    self.m.sig(net)
                }
            }
            AstExpr::Number(n) => {
                let w = ctx.ok_or_else(|| ElabError {
                    module: self.md.name.clone(),
                    message: format!("cannot infer width of unsized literal {n}"),
                })?;
                if w < 64 && n >> w != 0 {
                    return self.err(format!("literal {n} does not fit in {w} bits"));
                }
                self.m.arena.add(Expr::Const(Value::from_u64(w, *n)))
            }
            AstExpr::Sized(w, v) => self.m.arena.add(Expr::Const(Value::from_u64(*w, *v))),
            AstExpr::Unary(op, a) => {
                match *op {
                    "~" => {
                        let x = self.expr(a, ctx, env)?;
                        self.m.arena.add(Expr::Not(x))
                    }
                    "!" => {
                        let x = self.expr(a, None, env)?;
                        let r = self.m.arena.add(Expr::RedOr(x));
                        self.m.arena.add(Expr::Not(r))
                    }
                    "&" => {
                        let x = self.expr(a, None, env)?;
                        self.m.arena.add(Expr::RedAnd(x))
                    }
                    "|" => {
                        let x = self.expr(a, None, env)?;
                        self.m.arena.add(Expr::RedOr(x))
                    }
                    "^" => {
                        let x = self.expr(a, None, env)?;
                        self.m.arena.add(Expr::RedXor(x))
                    }
                    "-" => {
                        let x = self.expr(a, ctx, env)?;
                        let w = self.m.arena.width(x);
                        let z = self.m.arena.add(Expr::Const(Value::zero(w)));
                        self.m.arena.add(Expr::Sub(z, x))
                    }
                    other => return self.err(format!("unsupported unary operator '{other}'")),
                }
            }
            AstExpr::Binary(op, a, b) => self.binary(op, a, b, ctx, env)?,
            AstExpr::Ternary(c, t, f) => {
                let cond = self.expr_bool(c, env)?;
                let (t, f) = self.same_width_pair(t, f, ctx, env)?;
                self.m.arena.add(Expr::Mux { cond, then_: t, else_: f })
            }
            AstExpr::Concat(parts) => {
                let ps: Vec<ExprId> = parts
                    .iter()
                    .map(|p| self.expr(p, None, env))
                    .collect::<Result<_, _>>()?;
                self.m.arena.add(Expr::Concat(ps))
            }
            AstExpr::Repeat(n, inner) => {
                let n = const_eval(self.md, &self.params, n)? as u32;
                let x = self.expr(inner, None, env)?;
                self.m.arena.add(Expr::Repeat(n, x))
            }
            AstExpr::Index(base, idx) => {
                let x = self.expr(base, None, env)?;
                let i = const_eval(self.md, &self.params, idx)? as u32;
                let w = self.m.arena.width(x);
                if i >= w {
                    return self.err(format!("bit index {i} out of range (width {w})"));
                }
                self.m.arena.add(Expr::Slice(x, i, i))
            }
            AstExpr::Range(base, msb, lsb) => {
                let x = self.expr(base, None, env)?;
                let msb = const_eval(self.md, &self.params, msb)? as u32;
                let lsb = const_eval(self.md, &self.params, lsb)? as u32;
                let w = self.m.arena.width(x);
                if msb >= w || lsb > msb {
                    return self.err(format!("part select [{msb}:{lsb}] out of range (width {w})"));
                }
                self.m.arena.add(Expr::Slice(x, msb, lsb))
            }
        })
    }

    /// Elaborates two operands to a common width (sizes the unsized one
    /// from the sized one, or from `ctx`).
    fn same_width_pair(
        &mut self,
        a: &AstExpr,
        b: &AstExpr,
        ctx: Option<u32>,
        env: &Env,
    ) -> Result<(ExprId, ExprId), ElabError> {
        let a_unsized = matches!(a, AstExpr::Number(_));
        let b_unsized = matches!(b, AstExpr::Number(_));
        match (a_unsized, b_unsized) {
            (false, false) | (true, true) => {
                let ea = self.expr(a, ctx, env)?;
                let eb = self.expr(b, ctx.or(Some(self.m.arena.width(ea))), env)?;
                Ok((ea, eb))
            }
            (false, true) => {
                let ea = self.expr(a, ctx, env)?;
                let w = self.m.arena.width(ea);
                let eb = self.expr(b, Some(w), env)?;
                Ok((ea, eb))
            }
            (true, false) => {
                let eb = self.expr(b, ctx, env)?;
                let w = self.m.arena.width(eb);
                let ea = self.expr(a, Some(w), env)?;
                Ok((ea, eb))
            }
        }
    }

    fn binary(
        &mut self,
        op: &str,
        a: &AstExpr,
        b: &AstExpr,
        ctx: Option<u32>,
        env: &Env,
    ) -> Result<ExprId, ElabError> {
        match op {
            "&&" | "||" => {
                let ea = self.expr_bool(a, env)?;
                let eb = self.expr_bool(b, env)?;
                Ok(self.m.arena.add(if op == "&&" {
                    Expr::And(ea, eb)
                } else {
                    Expr::Or(ea, eb)
                }))
            }
            "<<" | ">>" => {
                let ea = self.expr(a, ctx, env)?;
                let n = const_eval(self.md, &self.params, b)? as u32;
                Ok(self.m.arena.add(if op == "<<" {
                    Expr::Shl(ea, n)
                } else {
                    Expr::Shr(ea, n)
                }))
            }
            "==" | "!=" | "<" | "<=" | ">" | ">=" => {
                let (ea, eb) = self.same_width_pair(a, b, None, env)?;
                Ok(self.m.arena.add(match op {
                    "==" => Expr::Eq(ea, eb),
                    "!=" => Expr::Ne(ea, eb),
                    "<" => Expr::Ult(ea, eb),
                    "<=" => Expr::Ule(ea, eb),
                    ">" => Expr::Ult(eb, ea),
                    ">=" => Expr::Ule(eb, ea),
                    _ => unreachable!(),
                }))
            }
            "&" | "|" | "^" | "+" | "-" | "*" => {
                let (ea, eb) = self.same_width_pair(a, b, ctx, env)?;
                Ok(self.m.arena.add(match op {
                    "&" => Expr::And(ea, eb),
                    "|" => Expr::Or(ea, eb),
                    "^" => Expr::Xor(ea, eb),
                    "+" => Expr::Add(ea, eb),
                    "-" => Expr::Sub(ea, eb),
                    "*" => Expr::Mul(ea, eb),
                    _ => unreachable!(),
                }))
            }
            other => self.err(format!("unsupported binary operator '{other}'")),
        }
    }
}

fn collect_targets(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_targets(s, out)),
        Stmt::If(_, t, e) => {
            collect_targets(t, out);
            if let Some(e) = e {
                collect_targets(e, out);
            }
        }
        Stmt::Case { items, default, .. } => {
            for (_, b) in items {
                collect_targets(b, out);
            }
            if let Some(d) = default {
                collect_targets(d, out);
            }
        }
        Stmt::NonBlocking(t, _) | Stmt::Blocking(t, _) => collect_target(t, out),
    }
}

fn collect_target(t: &Target, out: &mut Vec<String>) {
    match t {
        Target::Ident(n) | Target::Slice(n, _, _) => {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        Target::Concat(parts) => parts.iter().for_each(|p| collect_target(p, out)),
    }
}
