//! Recursive-descent parser for the supported Verilog subset.

use crate::ast::*;
use crate::token::{lex, LexError, Tok, Token};
use std::error::Error;
use std::fmt;

/// Parser errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, line: e.line }
    }
}

/// Parses a Verilog source file.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on any lexical or syntactic
/// problem.
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    Ok(SourceFile { modules })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: msg.into(), line: self.line() })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected '{p}', found '{other}'")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected '{kw}', found '{other}'")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    fn module(&mut self) -> Result<ModuleDecl, ParseError> {
        self.expect_kw("module")?;
        let name = self.ident()?;
        let mut m = ModuleDecl {
            name,
            ports: Vec::new(),
            nets: Vec::new(),
            params: Vec::new(),
            assigns: Vec::new(),
            always: Vec::new(),
            instances: Vec::new(),
        };
        if self.eat_punct("(") && !self.eat_punct(")") {
            let mut last_dir: Option<Dir> = None;
            let mut last_range: Option<(AstExpr, AstExpr)> = None;
            loop {
                let dir = if self.eat_kw("input") {
                    Some(Dir::Input)
                } else if self.eat_kw("output") {
                    Some(Dir::Output)
                } else {
                    None
                };
                if dir.is_some() {
                    let _ = self.eat_kw("wire") || self.eat_kw("reg");
                    last_dir = dir;
                    last_range = if matches!(self.peek(), Tok::Punct("[")) {
                        Some(self.range()?)
                    } else {
                        None
                    };
                }
                let pname = self.ident()?;
                m.ports.push(PortDecl {
                    name: pname,
                    dir: last_dir,
                    range: if last_dir.is_some() { last_range.clone() } else { None },
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct(";")?;
        // Body items.
        loop {
            if self.eat_kw("endmodule") {
                break;
            }
            if self.at_eof() {
                return self.err("unexpected end of input inside module");
            }
            self.item(&mut m)?;
        }
        Ok(m)
    }

    fn range(&mut self) -> Result<(AstExpr, AstExpr), ParseError> {
        self.expect_punct("[")?;
        let msb = self.expr()?;
        self.expect_punct(":")?;
        let lsb = self.expr()?;
        self.expect_punct("]")?;
        Ok((msb, lsb))
    }

    fn item(&mut self, m: &mut ModuleDecl) -> Result<(), ParseError> {
        if self.eat_kw("input") {
            self.net_decl(m, NetKind::PortDir(Dir::Input))
        } else if self.eat_kw("output") {
            self.net_decl(m, NetKind::PortDir(Dir::Output))
        } else if self.eat_kw("wire") {
            self.net_decl(m, NetKind::Wire)
        } else if self.eat_kw("reg") {
            self.net_decl(m, NetKind::Reg)
        } else if self.eat_kw("parameter") || self.eat_kw("localparam") {
            loop {
                let name = self.ident()?;
                self.expect_punct("=")?;
                let e = self.expr()?;
                m.params.push((name, e));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
            Ok(())
        } else if self.eat_kw("assign") {
            let t = self.target()?;
            self.expect_punct("=")?;
            let e = self.expr()?;
            self.expect_punct(";")?;
            m.assigns.push((t, e));
            Ok(())
        } else if self.eat_kw("always") {
            let line = self.line();
            self.expect_punct("@")?;
            self.expect_punct("(")?;
            let kind = if self.eat_kw("posedge") {
                let clock = self.ident()?;
                let mut reset = None;
                if self.eat_kw("or") {
                    self.expect_kw("posedge")?;
                    reset = Some(self.ident()?);
                }
                AlwaysKind::Clocked { clock, reset }
            } else if self.eat_punct("*") {
                AlwaysKind::Comb
            } else {
                // Explicit sensitivity list — treated as combinational.
                loop {
                    let _ = self.ident()?;
                    if !self.eat_kw("or") && !self.eat_punct(",") {
                        break;
                    }
                }
                AlwaysKind::Comb
            };
            self.expect_punct(")")?;
            let body = self.stmt()?;
            m.always.push(AlwaysBlock { kind, body, line });
            Ok(())
        } else {
            // Module instantiation: `Name inst ( .p(e), ... );`
            let module = self.ident()?;
            let name = self.ident()?;
            self.expect_punct("(")?;
            let mut conns = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    self.expect_punct(".")?;
                    let port = self.ident()?;
                    self.expect_punct("(")?;
                    let e = if matches!(self.peek(), Tok::Punct(")")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_punct(")")?;
                    conns.push((port, e));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
            self.expect_punct(";")?;
            m.instances.push(InstanceDecl { module, name, conns });
            Ok(())
        }
    }

    fn net_decl(&mut self, m: &mut ModuleDecl, kind: NetKind) -> Result<(), ParseError> {
        // Optional `reg` after input/output body decls, e.g. `output reg [3:0] x;`
        if matches!(kind, NetKind::PortDir(_)) {
            let _ = self.eat_kw("wire") || self.eat_kw("reg");
        }
        let range = if matches!(self.peek(), Tok::Punct("[")) {
            Some(self.range()?)
        } else {
            None
        };
        let mut names = Vec::new();
        loop {
            names.push(self.ident()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        m.nets.push(NetDecl { kind, range, names });
        Ok(())
    }

    fn target(&mut self) -> Result<Target, ParseError> {
        if self.eat_punct("{") {
            let mut parts = Vec::new();
            loop {
                parts.push(self.target()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct("}")?;
            return Ok(Target::Concat(parts));
        }
        let name = self.ident()?;
        if self.eat_punct("[") {
            let a = self.expr()?;
            if self.eat_punct(":") {
                let b = self.expr()?;
                self.expect_punct("]")?;
                Ok(Target::Slice(name, a, b))
            } else {
                self.expect_punct("]")?;
                Ok(Target::Slice(name, a.clone(), a))
            }
        } else {
            Ok(Target::Ident(name))
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("begin") {
            let mut body = Vec::new();
            while !self.eat_kw("end") {
                if self.at_eof() {
                    return self.err("unexpected end of input inside begin/end");
                }
                body.push(self.stmt()?);
            }
            return Ok(Stmt::Block(body));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let t = Box::new(self.stmt()?);
            let e = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(c, t, e));
        }
        if self.eat_kw("case") || self.eat_kw("casez") {
            self.expect_punct("(")?;
            let sel = self.expr()?;
            self.expect_punct(")")?;
            let mut items = Vec::new();
            let mut default = None;
            loop {
                if self.eat_kw("endcase") {
                    break;
                }
                if self.eat_kw("default") {
                    let _ = self.eat_punct(":");
                    default = Some(Box::new(self.stmt()?));
                    continue;
                }
                let mut labels = vec![self.expr()?];
                while self.eat_punct(",") {
                    labels.push(self.expr()?);
                }
                self.expect_punct(":")?;
                let body = self.stmt()?;
                items.push((labels, body));
            }
            return Ok(Stmt::Case { sel, items, default });
        }
        // Assignment.
        let t = self.target()?;
        if self.eat_punct("<=") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::NonBlocking(t, e))
        } else if self.eat_punct("=") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::Blocking(t, e))
        } else {
            self.err("expected '<=' or '=' in assignment")
        }
    }

    /// Expression entry: ternary (lowest precedence).
    pub(crate) fn expr(&mut self) -> Result<AstExpr, ParseError> {
        let c = self.binary(0)?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let e = self.expr()?;
            Ok(AstExpr::Ternary(Box::new(c), Box::new(t), Box::new(e)))
        } else {
            Ok(c)
        }
    }

    /// Binary operator levels, loosest first.
    const LEVELS: &'static [&'static [&'static str]] = &[
        &["||"],
        &["&&"],
        &["|"],
        &["^"],
        &["&"],
        &["==", "!="],
        &["<", "<=", ">", ">="],
        &["<<", ">>"],
        &["+", "-"],
        &["*", "/", "%"],
    ];

    fn binary(&mut self, level: usize) -> Result<AstExpr, ParseError> {
        if level >= Self::LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let op = match self.peek() {
                Tok::Punct(p) => Self::LEVELS[level].iter().find(|q| *q == p).copied(),
                _ => None,
            };
            match op {
                Some(op) => {
                    self.bump();
                    let rhs = self.binary(level + 1)?;
                    lhs = AstExpr::Binary(op, Box::new(lhs), Box::new(rhs));
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<AstExpr, ParseError> {
        for op in ["~", "!", "&", "|", "^", "-"] {
            if matches!(self.peek(), Tok::Punct(p) if *p == op) {
                self.bump();
                let e = self.unary()?;
                return Ok(AstExpr::Unary(match op {
                    "~" => "~",
                    "!" => "!",
                    "&" => "&",
                    "|" => "|",
                    "^" => "^",
                    "-" => "-",
                    _ => unreachable!(),
                }, Box::new(e)));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<AstExpr, ParseError> {
        let mut e = self.primary()?;
        while self.eat_punct("[") {
            let a = self.expr()?;
            if self.eat_punct(":") {
                let b = self.expr()?;
                self.expect_punct("]")?;
                e = AstExpr::Range(Box::new(e), Box::new(a), Box::new(b));
            } else {
                self.expect_punct("]")?;
                e = AstExpr::Index(Box::new(e), Box::new(a));
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(AstExpr::Ident(s))
            }
            Tok::Number(n) => {
                self.bump();
                Ok(AstExpr::Number(n))
            }
            Tok::Sized(w, v) => {
                self.bump();
                Ok(AstExpr::Sized(w, v))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("{") => {
                self.bump();
                let first = self.expr()?;
                // Replication `{n{e}}`?
                if self.eat_punct("{") {
                    let inner = self.expr()?;
                    self.expect_punct("}")?;
                    self.expect_punct("}")?;
                    return Ok(AstExpr::Repeat(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat_punct(",") {
                    parts.push(self.expr()?);
                }
                self.expect_punct("}")?;
                Ok(AstExpr::Concat(parts))
            }
            other => self.err(format!("expected expression, found '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_module() {
        let sf = parse("module m; endmodule").unwrap();
        assert_eq!(sf.modules.len(), 1);
        assert_eq!(sf.modules[0].name, "m");
    }

    #[test]
    fn ansi_ports() {
        let sf = parse("module m (input [3:0] a, b, output reg [1:0] y); endmodule").unwrap();
        let m = &sf.modules[0];
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].dir, Some(Dir::Input));
        assert_eq!(m.ports[1].dir, Some(Dir::Input), "dir inherited");
        assert!(m.ports[1].range.is_some(), "range inherited");
        assert_eq!(m.ports[2].dir, Some(Dir::Output));
    }

    #[test]
    fn non_ansi_ports() {
        let src = "module m (a, y); input [3:0] a; output y; wire w; endmodule";
        let m = &parse(src).unwrap().modules[0];
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].dir, None);
        assert_eq!(m.nets.len(), 3);
        assert_eq!(m.nets[0].kind, NetKind::PortDir(Dir::Input));
    }

    #[test]
    fn assign_and_expr_precedence() {
        let src = "module m (input a, b, c, output y); assign y = a | b & c; endmodule";
        let m = &parse(src).unwrap().modules[0];
        // & binds tighter than |
        match &m.assigns[0].1 {
            AstExpr::Binary("|", _, rhs) => {
                assert!(matches!(**rhs, AstExpr::Binary("&", _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clocked_always_figure6_style() {
        let src = r#"
module B (input CK, input RESET, input [1:0] I_ERR_INJ_C, input [3:0] I_ERR_INJ_D);
  reg [3:0] cs, ns;
  always @(posedge CK or posedge RESET)
    if (RESET) cs <= 4'b1_000;
    else if (I_ERR_INJ_C[0]) cs <= I_ERR_INJ_D;
    else cs <= ns;
endmodule
"#;
        let m = &parse(src).unwrap().modules[0];
        assert_eq!(m.always.len(), 1);
        match &m.always[0].kind {
            AlwaysKind::Clocked { clock, reset } => {
                assert_eq!(clock, "CK");
                assert_eq!(reset.as_deref(), Some("RESET"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_statement() {
        let src = r#"
module m (input [1:0] s, output reg [3:0] y);
  always @(*)
    case (s)
      2'b00: y = 4'd1;
      2'b01, 2'b10: y = 4'd2;
      default: y = 4'd0;
    endcase
endmodule
"#;
        let m = &parse(src).unwrap().modules[0];
        match &m.always[0].body {
            Stmt::Case { items, default, .. } => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].0.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instance_with_tied_ports() {
        let src = r#"
module A (input CK);
  B u0 ( .CK(CK), .I_ERR_INJ_C(2'b00), .I_ERR_INJ_D(4'b0000), .unused() );
endmodule
"#;
        let m = &parse(src).unwrap().modules[0];
        assert_eq!(m.instances.len(), 1);
        let inst = &m.instances[0];
        assert_eq!(inst.module, "B");
        assert_eq!(inst.conns.len(), 4);
        assert!(inst.conns[3].1.is_none());
    }

    #[test]
    fn concat_and_replication() {
        let src = "module m (input [1:0] a, output [3:0] y); assign y = {a, {2{a[0]}}}; endmodule";
        let m = &parse(src).unwrap().modules[0];
        match &m.assigns[0].1 {
            AstExpr::Concat(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], AstExpr::Repeat(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse("module m;\n  assign ; \nendmodule").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn ternary_parses() {
        let src = "module m (input c, input [3:0] a, b, output [3:0] y); assign y = c ? a : b; endmodule";
        let m = &parse(src).unwrap().modules[0];
        assert!(matches!(m.assigns[0].1, AstExpr::Ternary(_, _, _)));
    }

    #[test]
    fn localparam_parses() {
        let src = "module m; localparam W = 4, D = 16; endmodule";
        let m = &parse(src).unwrap().modules[0];
        assert_eq!(m.params.len(), 2);
    }
}
