//! Abstract syntax tree for the supported Verilog subset.

/// A parsed source file: an ordered list of modules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<ModuleDecl>,
}

/// A `module ... endmodule` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleDecl {
    /// Module name.
    pub name: String,
    /// Ports in header order.
    pub ports: Vec<PortDecl>,
    /// Net declarations (`wire`/`reg` including non-ANSI port bodies).
    pub nets: Vec<NetDecl>,
    /// `localparam`/`parameter` constants.
    pub params: Vec<(String, AstExpr)>,
    /// Continuous assignments.
    pub assigns: Vec<(Target, AstExpr)>,
    /// Always blocks.
    pub always: Vec<AlwaysBlock>,
    /// Module instantiations.
    pub instances: Vec<InstanceDecl>,
}

/// Direction keyword of a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A port as written in the header (ANSI) or body (non-ANSI).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Direction, if declared in the header (ANSI style).
    pub dir: Option<Dir>,
    /// Range, if declared in the header.
    pub range: Option<(AstExpr, AstExpr)>,
}

/// Declared net kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `input`/`output` body declarations (non-ANSI ports).
    PortDir(Dir),
}

/// A `wire`/`reg`/body-port declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetDecl {
    /// Kind keyword.
    pub kind: NetKind,
    /// Declared `[msb:lsb]` range, if any (1-bit otherwise).
    pub range: Option<(AstExpr, AstExpr)>,
    /// Declared names.
    pub names: Vec<String>,
}

/// Assignment target: identifier with optional bit/part select, or concat.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Whole identifier.
    Ident(String),
    /// `x[i]` or `x[msb:lsb]` with constant bounds.
    Slice(String, AstExpr, AstExpr),
    /// `{a, b, c}` concatenation of targets (MSB first).
    Concat(Vec<Target>),
}

/// An `always` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlwaysBlock {
    /// Sensitivity.
    pub kind: AlwaysKind,
    /// Body statement.
    pub body: Stmt,
    /// Source line (diagnostics).
    pub line: u32,
}

/// Sensitivity list classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlwaysKind {
    /// `always @(posedge clk)` or `... or posedge rst)` — clocked.
    Clocked {
        /// Clock signal name.
        clock: String,
        /// Asynchronous reset signal name, if present.
        reset: Option<String>,
    },
    /// `always @(*)` or an explicit signal list — combinational.
    Comb,
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// `if (c) s [else s]`
    If(AstExpr, Box<Stmt>, Option<Box<Stmt>>),
    /// `case (sel) items [default] endcase`
    Case {
        /// Scrutinee.
        sel: AstExpr,
        /// `(labels, body)` arms.
        items: Vec<(Vec<AstExpr>, Stmt)>,
        /// `default:` arm.
        default: Option<Box<Stmt>>,
    },
    /// Non-blocking `q <= e;`
    NonBlocking(Target, AstExpr),
    /// Blocking `x = e;`
    Blocking(Target, AstExpr),
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstExpr {
    /// Identifier reference.
    Ident(String),
    /// Unsized number (width inferred from context).
    Number(u64),
    /// Sized literal `(width, value)`.
    Sized(u32, u64),
    /// Unary operator.
    Unary(&'static str, Box<AstExpr>),
    /// Binary operator.
    Binary(&'static str, Box<AstExpr>, Box<AstExpr>),
    /// `c ? t : e`
    Ternary(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
    /// `{a, b}` (MSB first).
    Concat(Vec<AstExpr>),
    /// `{n{e}}`
    Repeat(Box<AstExpr>, Box<AstExpr>),
    /// `x[i]`
    Index(Box<AstExpr>, Box<AstExpr>),
    /// `x[msb:lsb]`
    Range(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>),
}

/// A module instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceDecl {
    /// Instantiated module name.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Named connections `.port(expr)`; `None` expr means unconnected `.p()`.
    pub conns: Vec<(String, Option<AstExpr>)>,
}
