//! Lexer for the synthesizable Verilog subset.

use std::error::Error;
use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognised by the parser).
    Ident(String),
    /// Unsized decimal number.
    Number(u64),
    /// Sized literal `4'b1010` → (width, bits).
    Sized(u32, u64),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Sized(w, v) => write!(f, "{w}'d{v}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexer errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "->",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "#", "@", "=", "<", ">", "+",
    "-", "*", "/", "%", "&", "|", "^", "~", "!", "?",
];

/// Tokenises Verilog source.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    i += 2;
                    while i + 1 < bytes.len() {
                        if bytes[i] as char == '\n' {
                            line += 1;
                        }
                        if bytes[i] as char == '*' && bytes[i + 1] as char == '/' {
                            i += 2;
                            continue 'outer;
                        }
                        i += 1;
                    }
                    return Err(LexError { message: "unterminated block comment".into(), line });
                }
                _ => {}
            }
        }
        // Identifiers / keywords (also escaped identifiers `\foo `).
        if c.is_ascii_alphabetic() || c == '_' || c == '\\' {
            let start = if c == '\\' { i + 1 } else { i };
            i = start;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '$' {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Token { kind: Tok::Ident(src[start..i].to_string()), line });
            continue;
        }
        // Numbers: `123`, `4'b1010`, `8'hff`, `'b0` (32-bit default).
        if c.is_ascii_digit() || c == '\'' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] as char == '_') {
                i += 1;
            }
            let head: String = src[start..i].chars().filter(|c| *c != '_').collect();
            if i < bytes.len() && bytes[i] as char == '\'' {
                // Sized literal.
                let width: u32 = if head.is_empty() {
                    32
                } else {
                    head.parse().map_err(|_| LexError {
                        message: format!("bad literal width {head}"),
                        line,
                    })?
                };
                i += 1;
                if i >= bytes.len() {
                    return Err(LexError { message: "truncated sized literal".into(), line });
                }
                let base = (bytes[i] as char).to_ascii_lowercase();
                i += 1;
                let radix = match base {
                    'b' => 2,
                    'o' => 8,
                    'd' => 10,
                    'h' => 16,
                    _ => {
                        return Err(LexError {
                            message: format!("bad literal base '{base}'"),
                            line,
                        })
                    }
                };
                let dstart = i;
                while i < bytes.len() {
                    let ch = (bytes[i] as char).to_ascii_lowercase();
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let digits: String = src[dstart..i].chars().filter(|c| *c != '_').collect();
                if digits.is_empty() {
                    return Err(LexError { message: "sized literal missing digits".into(), line });
                }
                let value = u64::from_str_radix(&digits, radix).map_err(|_| LexError {
                    message: format!("bad digits '{digits}' for base {radix}"),
                    line,
                })?;
                if width < 64 && value >> width != 0 {
                    return Err(LexError {
                        message: format!("literal {value} does not fit in {width} bits"),
                        line,
                    });
                }
                out.push(Token { kind: Tok::Sized(width, value), line });
            } else {
                let value: u64 = head.parse().map_err(|_| LexError {
                    message: format!("bad number {head}"),
                    line,
                })?;
                out.push(Token { kind: Tok::Number(value), line });
            }
            continue;
        }
        // Punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token { kind: Tok::Punct(p), line });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError { message: format!("unexpected character '{c}'"), line });
    }
    out.push(Token { kind: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn identifiers_and_numbers() {
        assert_eq!(
            kinds("module foo_1 42"),
            vec![
                Tok::Ident("module".into()),
                Tok::Ident("foo_1".into()),
                Tok::Number(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn sized_literals() {
        assert_eq!(kinds("4'b1_000")[0], Tok::Sized(4, 0b1000));
        assert_eq!(kinds("8'hFF")[0], Tok::Sized(8, 255));
        assert_eq!(kinds("2'b00")[0], Tok::Sized(2, 0));
        assert_eq!(kinds("10'd512")[0], Tok::Sized(10, 512));
    }

    #[test]
    fn oversized_literal_rejected() {
        assert!(lex("3'b1010").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // comment\n b /* multi\n line */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multichar_punct_priority() {
        assert_eq!(
            kinds("a <= b << 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Number(2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unexpected_char_is_error() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }
}
