//! The seven seeded logic bugs of Table 3.
//!
//! Each bug is injected into one specific module of the generated chip;
//! the table below mirrors the paper's classification (which property
//! type finds the bug formally, and whether realistic simulation finds it
//! easily).

use crate::plan::{Category, LeafPlan, SpecialKind};
use std::fmt;

/// Bug identifiers B0..B6, matching Table 3 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugId {
    /// FSM parity not recomputed on a common transition (soundness; easy).
    B0,
    /// Reserved-field CSR write corrupts stored parity (soundness; hard —
    /// spec-compliant tests write zeros to reserved fields).
    B1,
    /// Counter parity wrong on wrap (soundness; easy).
    B2,
    /// Macro-interface checker gated by the macro's VALID pin, whose
    /// simulation model is wrong (error-detection ability; impossible in
    /// simulation).
    B3,
    /// Output mux path drops the parity correction (output integrity;
    /// easy — the path is commonly selected).
    B4,
    /// Address decoder: 1 of 91 decode cases computes parity without one
    /// data bit (output integrity; hard — needs the rare case and a data
    /// pattern).
    B5,
    /// The second bad decode case (output integrity; hard).
    B6,
}

impl BugId {
    /// All bugs in Table 3 order.
    pub const ALL: [BugId; 7] =
        [BugId::B0, BugId::B1, BugId::B2, BugId::B3, BugId::B4, BugId::B5, BugId::B6];

    /// The property type that detects this bug formally (paper Table 3).
    pub fn property_type(self) -> PropertyType {
        match self {
            BugId::B0 | BugId::B1 | BugId::B2 => PropertyType::Soundness,
            BugId::B3 => PropertyType::ErrorDetection,
            BugId::B4 | BugId::B5 | BugId::B6 => PropertyType::OutputIntegrity,
        }
    }

    /// Paper Table 3: can logic simulation find it easily?
    pub fn easy_in_simulation(self) -> bool {
        matches!(self, BugId::B0 | BugId::B2 | BugId::B4)
    }
}

impl fmt::Display for BugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The three stereotype property types plus "other" (paper §3 & Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PropertyType {
    /// P0: ability of error detection.
    ErrorDetection,
    /// P1: soundness of internal states.
    Soundness,
    /// P2: output data integrity.
    OutputIntegrity,
    /// P3: other properties (legal-state checks).
    Other,
}

impl fmt::Display for PropertyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PropertyType::ErrorDetection => "Ability of Error Detection",
            PropertyType::Soundness => "Soundness of Internal States",
            PropertyType::OutputIntegrity => "Output Data Integrity",
            PropertyType::Other => "Other Properties",
        };
        write!(f, "{s}")
    }
}

/// Determines which bug (if any) a module hosts in the buggy chip build.
///
/// Placement reproduces Table 2's bug column: category A hosts three
/// (B0 in the first generic module, B1 in the CSR file, B3 in the macro
/// interface), C one (B2, first module), D one (B4, first module) and E
/// two (B5+B6 — the paper found two independent decoder cases; we build
/// the decoder with both bad cases active via [`BugId::B5`] placement and
/// count both, see `crate::Chip::bugs`).
pub fn bug_for_module(plan: &LeafPlan, index_in_category: usize) -> Option<BugId> {
    match (plan.category, plan.special, index_in_category) {
        (Category::A, SpecialKind::Generic, 0) => Some(BugId::B0),
        (Category::A, SpecialKind::CsrFile, _) => Some(BugId::B1),
        (Category::A, SpecialKind::MacroInterface, _) => Some(BugId::B3),
        (Category::C, SpecialKind::Generic, 0) => Some(BugId::B2),
        (Category::D, SpecialKind::Generic, 0) => Some(BugId::B4),
        // The decoder hosts both B5 and B6; build_leaf handles them as two
        // independent bad cases when given either id (see chip assembly).
        (Category::E, SpecialKind::AddressDecoder, _) => Some(BugId::B5),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plans, Scale};

    #[test]
    fn table3_classification() {
        assert_eq!(BugId::B0.property_type(), PropertyType::Soundness);
        assert_eq!(BugId::B3.property_type(), PropertyType::ErrorDetection);
        assert_eq!(BugId::B5.property_type(), PropertyType::OutputIntegrity);
        let easy: Vec<BugId> = BugId::ALL.iter().copied().filter(|b| b.easy_in_simulation()).collect();
        assert_eq!(easy, vec![BugId::B0, BugId::B2, BugId::B4]);
    }

    #[test]
    fn bug_placement_matches_table2_census() {
        // Full scale: A=3 bugs, B=0, C=1, D=1, E=2 (B5+B6 in the decoder).
        let plans = build_plans(Scale::Full);
        let mut per_cat: std::collections::BTreeMap<Category, usize> = Default::default();
        let mut cat_index: std::collections::BTreeMap<Category, usize> = Default::default();
        for p in &plans {
            let i = *cat_index.entry(p.category).or_insert(0);
            if let Some(bug) = bug_for_module(p, i) {
                let n = if bug == BugId::B5 { 2 } else { 1 }; // decoder hosts B5+B6
                *per_cat.entry(p.category).or_insert(0) += n;
            }
            *cat_index.get_mut(&p.category).unwrap() += 1;
        }
        assert_eq!(per_cat.get(&Category::A), Some(&3));
        assert_eq!(per_cat.get(&Category::B), None);
        assert_eq!(per_cat.get(&Category::C), Some(&1));
        assert_eq!(per_cat.get(&Category::D), Some(&1));
        assert_eq!(per_cat.get(&Category::E), Some(&2));
    }
}
